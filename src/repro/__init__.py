"""repro — reproduction of "Semantic Query Optimization for Methods in
Object-Oriented Database Systems" (Aberer & Fischer, ICDE 1995).

The package provides:

* an in-memory object-oriented database substrate (:mod:`repro.datamodel`),
* the VQL query language front-end (:mod:`repro.vql`),
* the general and restricted query algebras (:mod:`repro.algebra`),
* a Volcano-style rule- and cost-based optimizer with schema-specific
  semantic rules derived from knowledge about methods
  (:mod:`repro.optimizer`),
* a physical algebra and executor (:mod:`repro.physical`),
* pluggable durable storage — write-ahead log, checkpoints, crash
  recovery (:mod:`repro.storage`, ``connect(durability="wal")``),
* ready-made workloads reproducing the paper's example schema
  (:mod:`repro.workloads`).

Quickstart (the unified statement API)::

    from repro import connect
    from repro.workloads import (
        generate_document_database, document_knowledge, motivating_query)

    db = generate_document_database(n_documents=100)
    connection = connect(db, knowledge=document_knowledge(db.schema))
    for paragraph in connection.execute(motivating_query().text):
        print(paragraph)
    connection.execute("INSERT INTO Document (title) VALUES (?)", ["new"])
"""

from repro.engine import open_service, open_session, run_query
from repro.errors import ReproError
from repro.service.service import QueryService
from repro.session import QueryResult, Session
from repro.api.connection import Connection, Cursor, connect
from repro.api.router import StatementResult
from repro.storage import FileStorageAdapter, MemoryAdapter, StorageAdapter

__version__ = "1.4.0"

__all__ = [
    "connect",
    "Connection",
    "Cursor",
    "StorageAdapter",
    "MemoryAdapter",
    "FileStorageAdapter",
    "open_session",
    "open_service",
    "run_query",
    "Session",
    "QueryService",
    "QueryResult",
    "StatementResult",
    "ReproError",
    "__version__",
]
