"""repro — reproduction of "Semantic Query Optimization for Methods in
Object-Oriented Database Systems" (Aberer & Fischer, ICDE 1995).

The package provides:

* an in-memory object-oriented database substrate (:mod:`repro.datamodel`),
* the VQL query language front-end (:mod:`repro.vql`),
* the general and restricted query algebras (:mod:`repro.algebra`),
* a Volcano-style rule- and cost-based optimizer with schema-specific
  semantic rules derived from knowledge about methods
  (:mod:`repro.optimizer`),
* a physical algebra and executor (:mod:`repro.physical`),
* ready-made workloads reproducing the paper's example schema
  (:mod:`repro.workloads`).

Quickstart::

    from repro import open_session
    from repro.workloads import (
        generate_document_database, document_knowledge, motivating_query)

    db = generate_document_database(n_documents=100)
    session = open_session(db, knowledge=document_knowledge(db.schema))
    result = session.execute(motivating_query().text)
    print(result.values)
"""

from repro.engine import open_service, open_session, run_query
from repro.errors import ReproError
from repro.service.service import QueryService
from repro.session import QueryResult, Session

__version__ = "1.1.0"

__all__ = [
    "open_session",
    "open_service",
    "run_query",
    "Session",
    "QueryService",
    "QueryResult",
    "ReproError",
    "__version__",
]
