"""The query workload used by examples, tests and benchmarks.

Every query of the paper's running example appears here, plus a few
additional queries exercising the remaining language features.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.documents import QUERY_TERM, TARGET_TITLE
from repro.workloads.schema_library import DEFAULT_LARGE_PARAGRAPH_THRESHOLD

__all__ = [
    "WorkloadQuery",
    "motivating_query",
    "contains_only_query",
    "title_only_query",
    "same_document_join_query",
    "large_paragraph_query",
    "dependent_range_query",
    "tuple_access_query",
    "document_workload",
]


@dataclass(frozen=True)
class WorkloadQuery:
    """A named query with a short description of what it exercises."""

    name: str
    text: str
    description: str = ""

    def __str__(self) -> str:
        return self.text


def motivating_query(term: str = QUERY_TERM,
                     title: str = TARGET_TITLE) -> WorkloadQuery:
    """The paper's query Q (Section 2.3): paragraphs containing *term* in the
    document titled *title*."""
    return WorkloadQuery(
        name="Q-motivating",
        text=(
            "ACCESS p FROM p IN Paragraph "
            f"WHERE p->contains_string('{term}') "
            f"AND (p->document()).title == '{title}'"),
        description="the worked example Q; optimizable to plan PQ using E1-E5")


def contains_only_query(term: str = QUERY_TERM) -> WorkloadQuery:
    """Selection by the external contains_string method only (E5 target)."""
    return WorkloadQuery(
        name="Q-contains",
        text=("ACCESS p FROM p IN Paragraph "
              f"WHERE p->contains_string('{term}')"),
        description="σ over an expensive external method; E5 rewrites it to "
                    "one retrieve_by_string call")


def title_only_query(title: str = TARGET_TITLE) -> WorkloadQuery:
    """Paragraphs of the document with the given title (E1-E4 targets)."""
    return WorkloadQuery(
        name="Q-title",
        text=("ACCESS p FROM p IN Paragraph "
              f"WHERE (p->document()).title == '{title}'"),
        description="path-method + title equality; E1-E4 rewrite it to an "
                    "index lookup followed by inverse-link navigation")


def same_document_join_query() -> WorkloadQuery:
    """Example 1 of the paper: a join through a parametrized method."""
    return WorkloadQuery(
        name="Q-same-document",
        text=("ACCESS [pn: p.number, qn: q.number] "
              "FROM p IN Paragraph, q IN Paragraph "
              "WHERE p->sameDocument(q)"),
        description="method call as join predicate; J1 turns it into an "
                    "attribute equi-join evaluable by hash join")


def large_paragraph_query(threshold: int = DEFAULT_LARGE_PARAGRAPH_THRESHOLD
                          ) -> WorkloadQuery:
    """The implication example of Section 4.2."""
    return WorkloadQuery(
        name="Q-large-paragraphs",
        text=("ACCESS p FROM p IN Paragraph "
              f"WHERE p->wordCount() > {threshold}"),
        description="expensive per-paragraph predicate; I1 adds the "
                    "precomputed largeParagraphs restriction")


def dependent_range_query(term: str = QUERY_TERM) -> WorkloadQuery:
    """Example 2 of the paper: a method in the FROM clause."""
    return WorkloadQuery(
        name="Q-dependent-range",
        text=("ACCESS d.title "
              "FROM d IN Document, p IN d->paragraphs() "
              f"WHERE p->contains_string('{term}')"),
        description="dependent range variable produced by a method call")


def tuple_access_query() -> WorkloadQuery:
    """Example 3 of the paper: methods in the ACCESS clause."""
    return WorkloadQuery(
        name="Q-tuple-access",
        text="ACCESS [doc: d.title, paras: d->paragraphs()] FROM d IN Document",
        description="tuple constructor and method call in the ACCESS clause")


def document_workload() -> list[WorkloadQuery]:
    """All document-schema queries, used by the expressive-power and
    optimizer-overhead experiments."""
    return [
        motivating_query(),
        contains_only_query(),
        title_only_query(),
        same_document_join_query(),
        large_paragraph_query(),
        dependent_range_query(),
        tuple_access_query(),
    ]
