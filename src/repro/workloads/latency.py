"""Simulated external-engine latency for method implementations.

The paper's externally implemented methods (IR engine calls, index-manager
lookups) run in separate engines; each invocation blocks the calling thread
for the engine's round-trip without consuming database CPU.  The in-process
reproduction evaluates those implementations inline, which hides exactly
the property that makes intra-query parallelism attractive.

:func:`simulate_method_latency` restores it: the selected method
implementations are wrapped with a ``time.sleep`` per call.  Sleeping
releases the GIL, so morsel-driven parallel operators overlap the simulated
round-trips — the wall-clock speedup measured by
``benchmarks/bench_exp10_parallel.py`` is the speedup a real external
engine would give.

Only use this on a schema you own (e.g. one freshly built by
:func:`repro.workloads.generate_document_database`); the wrapping mutates
the :class:`~repro.datamodel.schema.MethodDef` objects in place.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

from repro.datamodel.schema import MethodKind, Schema

__all__ = ["simulate_method_latency"]


def _with_latency(implementation: Callable[..., Any],
                  seconds: float) -> Callable[..., Any]:
    def slowed(ctx, receiver, *args):
        time.sleep(seconds)
        return implementation(ctx, receiver, *args)

    slowed.__name__ = getattr(implementation, "__name__", "slowed")
    return slowed


def simulate_method_latency(schema: Schema,
                            latencies: Mapping[str, float]) -> int:
    """Wrap method implementations of *schema* with simulated latency.

    *latencies* maps method names to per-call seconds; every instance or
    class method of any class whose name appears in the mapping (and that
    has an implementation) is wrapped.  Returns the number of methods
    wrapped.  Wrap **before** opening sessions or services: compiled plans
    pre-resolve implementations, so later wrapping does not affect them.

    Wrapped methods are re-kinded as EXTERNAL: a method with engine-call
    latency *is* an externally implemented method, and the optimizer's
    parallel rules only consider external methods worth offloading to
    worker threads (internal methods are inline CPU — GIL-serialized).
    """
    wrapped = 0
    for class_def in schema.classes.values():
        for table in (class_def.instance_methods, class_def.class_methods):
            for name, method in table.items():
                seconds = latencies.get(name, 0.0)
                if seconds > 0 and method.implementation is not None:
                    method.implementation = _with_latency(
                        method.implementation, seconds)
                    method.kind = MethodKind.EXTERNAL
                    wrapped += 1
    return wrapped
