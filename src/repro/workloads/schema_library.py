"""The paper's example schema (documents) and its semantic knowledge.

The classes, properties and methods follow Section 2.1 of the paper
verbatim; the semantic knowledge follows Section 2.3 (equivalences E1-E5),
Section 4.2 (the wordCount/largeParagraphs implication) and Example 1
(the ``sameDocument`` join predicate).

Method cost annotations encode the paper's observation that methods are not
uniform-cost: internally encoded path methods are cheap, externally
implemented IR and index operations are expensive per call (but the bulk
variants are cheap per result).
"""

from __future__ import annotations

from repro.datamodel.methods import (
    collect_over_property,
    index_lookup_method,
    path_method,
    python_method,
    same_path_target_method,
    text_contains_method,
    text_retrieve_method,
)
from repro.datamodel.schema import (
    ClassDef,
    InverseLink,
    MethodDef,
    MethodKind,
    PropertyDef,
    Schema,
)
from repro.datamodel.types import BOOL, INT, STRING, object_type, set_of
from repro.optimizer.knowledge import (
    ConditionEquivalence,
    ConditionImplication,
    ExpressionEquivalence,
    QueryMethodEquivalence,
    SchemaKnowledge,
)

__all__ = [
    "document_schema",
    "document_knowledge",
    "DEFAULT_LARGE_PARAGRAPH_THRESHOLD",
    "METHOD_COSTS",
]

#: word-count threshold above which a paragraph is considered "large"
#: (the paper uses 500; the synthetic workload uses a smaller threshold so
#: that databases stay small — the shape of the experiment is unaffected)
DEFAULT_LARGE_PARAGRAPH_THRESHOLD = 40

#: per-call cost annotations (abstract units) used by the optimizer's cost
#: model; externally implemented methods are far more expensive per call
METHOD_COSTS = {
    "document": 1.0,            # internal path method
    "paragraphs": 3.0,          # internal, touches all sections
    "sameDocument": 3.0,        # internal, two document() calls
    "wordCount": 8.0,           # internal but scans the content string
    "contains_string": 25.0,    # external IR call per paragraph
    "retrieve_by_string": 30.0,  # external IR call, one per query
    "select_by_index": 5.0,     # external index lookup, one per query
}


def _word_count_impl(ctx, receiver):
    """Implementation of ``Paragraph.wordCount()``: number of word tokens."""
    content = ctx.value(receiver, "content")
    if content is None:
        return 0
    return len(str(content).split())


def document_schema() -> Schema:
    """Build the Document/Section/Paragraph schema of Section 2.1."""
    schema = Schema("documents")

    document = ClassDef("Document", description="a structured document")
    document.add_property(PropertyDef("title", STRING))
    document.add_property(PropertyDef("author", STRING))
    document.add_property(PropertyDef(
        "sections", set_of(object_type("Section")), target_class="Section"))
    document.add_property(PropertyDef(
        "largeParagraphs", set_of(object_type("Paragraph")),
        target_class="Paragraph", derived=True,
        description="paragraphs of this document whose wordCount exceeds the "
                    "large-paragraph threshold (maintained by the loader)"))
    document.add_method(MethodDef(
        name="paragraphs",
        return_type=set_of(object_type("Paragraph")),
        kind=MethodKind.INTERNAL,
        implementation=collect_over_property("sections", "paragraphs"),
        cost_per_call=METHOD_COSTS["paragraphs"],
        description="all paragraphs of the document"))
    document.add_method(MethodDef(
        name="select_by_index",
        params=(("t", STRING),),
        return_type=set_of(object_type("Document")),
        kind=MethodKind.EXTERNAL,
        class_level=True,
        implementation=index_lookup_method("Document", "title"),
        cost_per_call=METHOD_COSTS["select_by_index"],
        result_cardinality_hint=2,
        description="documents with the given title, via a user-defined index"))
    schema.add_class(document)

    section = ClassDef("Section", description="a section of a document")
    section.add_property(PropertyDef("number", INT))
    section.add_property(PropertyDef("title", STRING))
    section.add_property(PropertyDef(
        "document", object_type("Document"), target_class="Document"))
    section.add_property(PropertyDef(
        "paragraphs", set_of(object_type("Paragraph")), target_class="Paragraph"))
    schema.add_class(section)

    paragraph = ClassDef("Paragraph", description="a paragraph of a section")
    paragraph.add_property(PropertyDef("number", INT))
    paragraph.add_property(PropertyDef(
        "section", object_type("Section"), target_class="Section"))
    paragraph.add_property(PropertyDef("content", STRING))
    paragraph.add_method(MethodDef(
        name="document",
        return_type=object_type("Document"),
        kind=MethodKind.INTERNAL,
        implementation=path_method("section", "document"),
        cost_per_call=METHOD_COSTS["document"],
        description="RETURN section.document"))
    paragraph.add_method(MethodDef(
        name="contains_string",
        params=(("s", STRING),),
        return_type=BOOL,
        kind=MethodKind.EXTERNAL,
        implementation=text_contains_method("Paragraph", "content"),
        cost_per_call=METHOD_COSTS["contains_string"],
        description="does the paragraph content contain the string?"))
    paragraph.add_method(MethodDef(
        name="sameDocument",
        params=(("p", object_type("Paragraph")),),
        return_type=BOOL,
        kind=MethodKind.INTERNAL,
        implementation=same_path_target_method("document"),
        cost_per_call=METHOD_COSTS["sameDocument"],
        description="RETURN (SELF->document() == p->document())"))
    paragraph.add_method(MethodDef(
        name="wordCount",
        return_type=INT,
        kind=MethodKind.INTERNAL,
        implementation=python_method(_word_count_impl, name="wordCount"),
        cost_per_call=METHOD_COSTS["wordCount"],
        description="number of words in the paragraph content"))
    paragraph.add_method(MethodDef(
        name="retrieve_by_string",
        params=(("s", STRING),),
        return_type=set_of(object_type("Paragraph")),
        kind=MethodKind.EXTERNAL,
        class_level=True,
        implementation=text_retrieve_method("Paragraph", "content"),
        cost_per_call=METHOD_COSTS["retrieve_by_string"],
        result_cardinality_hint=25,
        description="all paragraphs containing the string, via the IR engine"))
    schema.add_class(paragraph)

    schema.add_inverse_link(InverseLink(
        source_class="Section", source_property="document",
        target_class="Document", target_property="sections",
        source_cardinality="one", target_cardinality="many"))
    schema.add_inverse_link(InverseLink(
        source_class="Paragraph", source_property="section",
        target_class="Section", target_property="paragraphs",
        source_cardinality="one", target_cardinality="many"))

    schema.validate()
    return schema


def document_knowledge(schema: Schema,
                       large_threshold: int = DEFAULT_LARGE_PARAGRAPH_THRESHOLD,
                       ) -> SchemaKnowledge:
    """The schema-specific semantic knowledge of Sections 2.3 and 4.2.

    E1  p->document()              ≡  p.section.document
    E2  d.title == s               ⇔  d IS-IN Document->select_by_index(s)
    E3  p.section.document IS-IN D ⇔  p.section IS-IN D.sections
    E4  p.section IS-IN S          ⇔  p IS-IN S.paragraphs
    E5  σ[p->contains_string(s)](Paragraph) ≡ Paragraph->retrieve_by_string(s)
    I1  p->wordCount() > T  ⇒  p IS-IN p->document().largeParagraphs
    J1  p->sameDocument(q)  ⇔  p->document() == q->document()

    E3 and E4 are derived automatically from the schema's inverse links, as
    the paper suggests.
    """
    knowledge = SchemaKnowledge(schema)

    knowledge.add(ExpressionEquivalence(
        class_name="Paragraph", variable="p",
        left="p->document()", right="p.section.document",
        name="E1-path-method"))

    knowledge.add(ConditionEquivalence(
        class_name="Document", variable="d",
        left="d.title == s",
        right="d IS-IN Document->select_by_index(s)",
        name="E2-title-index"))

    # E3 and E4 come from the inverse links declared in the schema.
    knowledge.derive_from_inverse_links()

    knowledge.add(QueryMethodEquivalence(
        query="ACCESS p FROM p IN Paragraph WHERE p->contains_string(s)",
        method_call="Paragraph->retrieve_by_string(s)",
        name="E5-retrieve-by-string"))

    knowledge.add(ConditionImplication(
        class_name="Paragraph", variable="p",
        antecedent=f"p->wordCount() > {large_threshold}",
        consequent="p IS-IN p->document().largeParagraphs",
        name="I1-large-paragraphs"))

    knowledge.add(ConditionEquivalence(
        class_name="Paragraph", variable="p",
        left="p->sameDocument(q)",
        right="p->document() == q->document()",
        name="J1-same-document",
        parameter_classes={"q": "Paragraph"}))

    return knowledge
