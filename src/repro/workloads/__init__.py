"""Workloads: the paper's document schema, a second (university) schema,
synthetic data generators and the query workload."""

from repro.workloads.documents import (
    QUERY_TERM,
    TARGET_TITLE,
    DocumentWorkloadConfig,
    generate_document_database,
)
from repro.workloads.latency import simulate_method_latency
from repro.workloads.queries import (
    WorkloadQuery,
    contains_only_query,
    dependent_range_query,
    document_workload,
    large_paragraph_query,
    motivating_query,
    same_document_join_query,
    title_only_query,
    tuple_access_query,
)
from repro.workloads.schema_library import (
    DEFAULT_LARGE_PARAGRAPH_THRESHOLD,
    METHOD_COSTS,
    document_knowledge,
    document_schema,
)
from repro.workloads.university import (
    generate_university_database,
    university_knowledge,
    university_schema,
)

__all__ = [
    "QUERY_TERM",
    "TARGET_TITLE",
    "DocumentWorkloadConfig",
    "generate_document_database",
    "simulate_method_latency",
    "WorkloadQuery",
    "motivating_query",
    "contains_only_query",
    "title_only_query",
    "same_document_join_query",
    "large_paragraph_query",
    "dependent_range_query",
    "tuple_access_query",
    "document_workload",
    "DEFAULT_LARGE_PARAGRAPH_THRESHOLD",
    "METHOD_COSTS",
    "document_schema",
    "document_knowledge",
    "university_schema",
    "university_knowledge",
    "generate_university_database",
]
