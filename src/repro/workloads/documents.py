"""Synthetic document database generator.

The paper evaluates its worked example on "a given typical database" of
documents; this generator produces a parameterised, reproducible stand-in:

* ``n_documents`` documents, each with a configurable number of sections and
  paragraphs per section;
* paragraph contents drawn from a Zipf-like vocabulary, with two controlled
  terms: the query term (default ``"Implementation"``) appears in a known
  fraction of paragraphs and the target title (default
  ``"Query Optimization"``) is given to a known number of documents —
  together they determine the selectivities of the motivating query;
* a fraction of paragraphs is made long so that the
  ``wordCount``/``largeParagraphs`` implication experiment has matches;
* the ``Document.title`` hash index and the ``Paragraph.content`` text index
  (the substrates of ``select_by_index`` and ``retrieve_by_string``) are
  created, and ``Document.largeParagraphs`` is populated consistently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datamodel.database import Database
from repro.errors import WorkloadError
from repro.workloads.schema_library import (
    DEFAULT_LARGE_PARAGRAPH_THRESHOLD,
    document_schema,
)

__all__ = ["DocumentWorkloadConfig", "generate_document_database"]

#: the string searched for by the motivating query (Section 2.3)
QUERY_TERM = "Implementation"
#: the document title used by the motivating query
TARGET_TITLE = "Query Optimization"


@dataclass
class DocumentWorkloadConfig:
    """Parameters of the synthetic document database."""

    n_documents: int = 50
    sections_per_document: int = 4
    paragraphs_per_section: int = 5
    words_per_paragraph: int = 18
    vocabulary_size: int = 500
    #: fraction of paragraphs containing the query term
    query_term_fraction: float = 0.05
    #: number of documents carrying the target title
    target_title_documents: int = 1
    #: guaranteed number of query-term paragraphs inside each target document
    #: (so the motivating query never comes back empty)
    target_matches: int = 2
    #: fraction of paragraphs made "large" (long content)
    large_paragraph_fraction: float = 0.03
    large_paragraph_threshold: int = DEFAULT_LARGE_PARAGRAPH_THRESHOLD
    seed: int = 42
    query_term: str = QUERY_TERM
    target_title: str = TARGET_TITLE

    def validate(self) -> None:
        if self.n_documents <= 0:
            raise WorkloadError("n_documents must be positive")
        if not 0 <= self.query_term_fraction <= 1:
            raise WorkloadError("query_term_fraction must be in [0, 1]")
        if not 0 <= self.large_paragraph_fraction <= 1:
            raise WorkloadError("large_paragraph_fraction must be in [0, 1]")
        if self.target_title_documents > self.n_documents:
            raise WorkloadError(
                "target_title_documents cannot exceed n_documents")

    @property
    def n_paragraphs(self) -> int:
        return (self.n_documents * self.sections_per_document
                * self.paragraphs_per_section)


def _zipf_vocabulary(rng: random.Random, size: int) -> list[str]:
    """A vocabulary of synthetic words (word0001 ... wordNNNN)."""
    del rng  # deterministic by construction
    return [f"word{i:04d}" for i in range(1, size + 1)]


def _pick_words(rng: random.Random, vocabulary: list[str], count: int) -> list[str]:
    """Pick words with a Zipf-like skew (low indexes are more frequent)."""
    words = []
    size = len(vocabulary)
    for _ in range(count):
        # inverse-CDF style skew: squaring a uniform sample favours low ranks
        rank = int((rng.random() ** 2) * size)
        words.append(vocabulary[min(rank, size - 1)])
    return words


def generate_document_database(config: DocumentWorkloadConfig | None = None,
                               **overrides) -> Database:
    """Generate a document database according to *config*.

    Keyword overrides are applied on top of the (default) config, so tests
    can write ``generate_document_database(n_documents=10)``.
    """
    if config is None:
        config = DocumentWorkloadConfig()
    if overrides:
        config = DocumentWorkloadConfig(**{**config.__dict__, **overrides})
    config.validate()

    rng = random.Random(config.seed)
    schema = document_schema()
    database = Database(schema, name=f"documents[{config.n_documents}]")
    vocabulary = _zipf_vocabulary(rng, config.vocabulary_size)

    # Decide up front which paragraphs carry the query term / are large, so
    # the fractions are exact rather than stochastic.
    total_paragraphs = config.n_paragraphs
    term_count = max(1, round(total_paragraphs * config.query_term_fraction)) \
        if config.query_term_fraction > 0 else 0
    large_count = max(1, round(total_paragraphs * config.large_paragraph_fraction)) \
        if config.large_paragraph_fraction > 0 else 0
    indexes = list(range(total_paragraphs))
    rng.shuffle(indexes)
    term_paragraphs = set(indexes[:term_count])
    rng.shuffle(indexes)
    large_paragraphs_set = set(indexes[:large_count])

    paragraph_counter = 0
    title_assignments = set(rng.sample(range(config.n_documents),
                                       config.target_title_documents))

    for doc_index in range(config.n_documents):
        is_target = doc_index in title_assignments
        forced_matches_left = config.target_matches if is_target else 0
        if is_target:
            title = config.target_title
        else:
            topic = rng.choice(vocabulary)
            title = f"Report {doc_index:04d} on {topic}"
        author = f"Author {rng.randint(1, max(2, config.n_documents // 5))}"
        doc_oid = database.create("Document", title=title, author=author,
                                  sections=set(), largeParagraphs=set())

        section_oids = set()
        doc_large_paragraphs = set()
        for sec_index in range(config.sections_per_document):
            sec_oid = database.create(
                "Section",
                number=sec_index + 1,
                title=f"Section {sec_index + 1} of {title}",
                document=doc_oid,
                paragraphs=set())
            section_oids.add(sec_oid)

            paragraph_oids = set()
            for par_index in range(config.paragraphs_per_section):
                word_count = config.words_per_paragraph
                if paragraph_counter in large_paragraphs_set:
                    word_count = config.large_paragraph_threshold + rng.randint(5, 25)
                words = _pick_words(rng, vocabulary, word_count)
                force_match = forced_matches_left > 0
                if force_match:
                    forced_matches_left -= 1
                if paragraph_counter in term_paragraphs or force_match:
                    position = rng.randrange(len(words) + 1)
                    words.insert(position, config.query_term)
                content = " ".join(words)
                par_oid = database.create(
                    "Paragraph",
                    number=par_index + 1,
                    section=sec_oid,
                    content=content)
                paragraph_oids.add(par_oid)
                if len(content.split()) > config.large_paragraph_threshold:
                    doc_large_paragraphs.add(par_oid)
                paragraph_counter += 1

            database.set_value(sec_oid, "paragraphs", paragraph_oids)

        database.set_value(doc_oid, "sections", section_oids)
        database.set_value(doc_oid, "largeParagraphs", doc_large_paragraphs)

    # External substrates: the user-defined title index and the IR engine.
    database.create_hash_index("Document", "title")
    database.create_text_index("Paragraph", "content")
    database.reset_statistics()
    return database
