"""A second application schema (university) for generality tests.

The paper argues its techniques are schema-independent: the optimizer
generator produces an individual optimizer for *any* schema from its
knowledge.  This module provides a second, structurally different schema —
students, courses and departments — with its own path methods, inverse links,
index-backed class method and query↔method equivalence, so tests and examples
can demonstrate the machinery outside the document domain.
"""

from __future__ import annotations

import random

from repro.datamodel.database import Database
from repro.datamodel.methods import (
    collect_over_property,
    index_lookup_method,
    path_method,
    python_method,
)
from repro.datamodel.schema import (
    ClassDef,
    InverseLink,
    MethodDef,
    MethodKind,
    PropertyDef,
    Schema,
)
from repro.datamodel.types import BOOL, INT, REAL, STRING, object_type, set_of
from repro.optimizer.knowledge import (
    ConditionImplication,
    ExpressionEquivalence,
    QueryMethodEquivalence,
    SchemaKnowledge,
)

__all__ = [
    "university_schema",
    "university_knowledge",
    "generate_university_database",
]

HONOURS_GPA = 3.5


def _is_honours_impl(ctx, receiver):
    """Implementation of ``Student.isHonours()``: gpa above the threshold."""
    gpa = ctx.value(receiver, "gpa")
    return gpa is not None and gpa >= HONOURS_GPA


def university_schema() -> Schema:
    """Departments, students and courses with path methods and inverse links."""
    schema = Schema("university")

    department = ClassDef("Department")
    department.add_property(PropertyDef("name", STRING))
    department.add_property(PropertyDef(
        "students", set_of(object_type("Student")), target_class="Student"))
    department.add_property(PropertyDef(
        "courses", set_of(object_type("Course")), target_class="Course"))
    department.add_property(PropertyDef(
        "honoursStudents", set_of(object_type("Student")),
        target_class="Student", derived=True))
    department.add_method(MethodDef(
        name="find_by_name",
        params=(("n", STRING),),
        return_type=set_of(object_type("Department")),
        kind=MethodKind.EXTERNAL,
        class_level=True,
        implementation=index_lookup_method("Department", "name"),
        cost_per_call=4.0,
        result_cardinality_hint=1,
        description="departments with the given name, via an index"))
    department.add_method(MethodDef(
        name="enrolledStudents",
        return_type=set_of(object_type("Student")),
        kind=MethodKind.INTERNAL,
        implementation=collect_over_property("courses", "participants"),
        cost_per_call=3.0,
        description="students participating in any course of the department"))
    schema.add_class(department)

    course = ClassDef("Course")
    course.add_property(PropertyDef("title", STRING))
    course.add_property(PropertyDef("credits", INT))
    course.add_property(PropertyDef(
        "department", object_type("Department"), target_class="Department"))
    course.add_property(PropertyDef(
        "participants", set_of(object_type("Student")), target_class="Student"))
    schema.add_class(course)

    student = ClassDef("Student")
    student.add_property(PropertyDef("name", STRING))
    student.add_property(PropertyDef("gpa", REAL))
    student.add_property(PropertyDef(
        "department", object_type("Department"), target_class="Department"))
    student.add_property(PropertyDef(
        "courses", set_of(object_type("Course")), target_class="Course"))
    student.add_method(MethodDef(
        name="departmentName",
        return_type=STRING,
        kind=MethodKind.INTERNAL,
        implementation=path_method("department", "name"),
        cost_per_call=1.0,
        description="RETURN department.name"))
    student.add_method(MethodDef(
        name="isHonours",
        return_type=BOOL,
        kind=MethodKind.INTERNAL,
        implementation=python_method(_is_honours_impl, name="isHonours"),
        cost_per_call=6.0,
        description="gpa above the honours threshold"))
    schema.add_class(student)

    schema.add_inverse_link(InverseLink(
        source_class="Student", source_property="department",
        target_class="Department", target_property="students",
        source_cardinality="one", target_cardinality="many"))
    schema.add_inverse_link(InverseLink(
        source_class="Course", source_property="department",
        target_class="Department", target_property="courses",
        source_cardinality="one", target_cardinality="many"))

    schema.validate()
    return schema


def university_knowledge(schema: Schema) -> SchemaKnowledge:
    """Semantic knowledge for the university schema."""
    knowledge = SchemaKnowledge(schema)
    knowledge.add(ExpressionEquivalence(
        class_name="Student", variable="s",
        left="s->departmentName()", right="s.department.name",
        name="U1-department-name"))
    knowledge.derive_from_inverse_links()
    knowledge.add(ConditionImplication(
        class_name="Student", variable="s",
        antecedent=f"s.gpa >= {HONOURS_GPA}",
        consequent="s IS-IN s.department.honoursStudents",
        name="U2-honours-precomputed"))
    knowledge.add(QueryMethodEquivalence(
        query="ACCESS d FROM d IN Department WHERE d.name == n",
        method_call="Department->find_by_name(n)",
        name="U3-find-by-name"))
    return knowledge


def generate_university_database(n_departments: int = 5,
                                 students_per_department: int = 40,
                                 courses_per_department: int = 8,
                                 courses_per_student: int = 3,
                                 seed: int = 7) -> Database:
    """Generate a small university database with consistent inverse links."""
    rng = random.Random(seed)
    schema = university_schema()
    database = Database(schema, name=f"university[{n_departments}]")

    subjects = ["Databases", "Systems", "Theory", "Graphics", "Networks",
                "Logic", "Compilers", "Statistics"]

    for dep_index in range(n_departments):
        dep_name = f"Department of {subjects[dep_index % len(subjects)]} {dep_index}"
        dep_oid = database.create("Department", name=dep_name,
                                  students=set(), courses=set(),
                                  honoursStudents=set())

        course_oids = []
        for course_index in range(courses_per_department):
            course_oid = database.create(
                "Course",
                title=f"{subjects[course_index % len(subjects)]} {course_index + 101}",
                credits=rng.choice([3, 4, 6]),
                department=dep_oid,
                participants=set())
            course_oids.append(course_oid)

        student_oids = set()
        honours = set()
        for student_index in range(students_per_department):
            gpa = round(rng.uniform(1.0, 4.0), 2)
            chosen = rng.sample(course_oids,
                                min(courses_per_student, len(course_oids)))
            student_oid = database.create(
                "Student",
                name=f"Student {dep_index}-{student_index}",
                gpa=gpa,
                department=dep_oid,
                courses=set(chosen))
            student_oids.add(student_oid)
            if gpa >= HONOURS_GPA:
                honours.add(student_oid)
            for course_oid in chosen:
                participants = database.value(course_oid, "participants")
                database.set_value(course_oid, "participants",
                                   participants | {student_oid})

        database.set_value(dep_oid, "students", student_oids)
        database.set_value(dep_oid, "courses", set(course_oids))
        database.set_value(dep_oid, "honoursStudents", honours)

    database.create_hash_index("Department", "name")
    database.reset_statistics()
    return database
