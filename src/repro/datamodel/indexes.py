"""User-defined indexes.

The paper's ``Document→select_by_index(t)`` method encapsulates a lookup in a
user-defined index on ``Document.title``.  This module provides the index
structures those external methods are implemented with:

* :class:`HashIndex` — exact-match index on one property,
* :class:`SortedIndex` — ordered index supporting range queries (used by the
  ``wordCount``/``largeParagraphs`` implication experiment),
* :class:`IndexRegistry` — per-database registry keyed by (class, property).

Indexes are maintained eagerly by the database on object creation and on
property updates.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Iterable, Iterator, Optional

from repro.datamodel.oid import OID
from repro.errors import IndexError_

__all__ = ["HashIndex", "SortedIndex", "IndexRegistry"]


class HashIndex:
    """Exact-match index mapping a property value to the set of OIDs."""

    kind = "hash"

    def __init__(self, class_name: str, property_name: str):
        self.class_name = class_name
        self.property_name = property_name
        self._entries: dict[Any, set[OID]] = defaultdict(set)
        self.lookup_count = 0

    # -- maintenance ----------------------------------------------------
    def insert(self, key: Any, oid: OID) -> None:
        self._entries[self._normalize(key)].add(oid)

    def remove(self, key: Any, oid: OID) -> None:
        normalized = self._normalize(key)
        bucket = self._entries.get(normalized)
        if not bucket or oid not in bucket:
            raise IndexError_(
                f"cannot remove {oid} from index "
                f"{self.class_name}.{self.property_name}: entry missing")
        bucket.discard(oid)
        if not bucket:
            del self._entries[normalized]

    def update(self, old_key: Any, new_key: Any, oid: OID) -> None:
        self.remove(old_key, oid)
        self.insert(new_key, oid)

    # -- queries --------------------------------------------------------
    def lookup(self, key: Any) -> set[OID]:
        """Return the OIDs whose indexed property equals *key*."""
        self.lookup_count += 1
        return set(self._entries.get(self._normalize(key), set()))

    def keys(self) -> Iterator[Any]:
        return iter(self._entries.keys())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())

    def distinct_keys(self) -> int:
        return len(self._entries)

    @staticmethod
    def _normalize(key: Any) -> Any:
        # Lists/sets cannot be dictionary keys; index them by frozen copies.
        if isinstance(key, list):
            return tuple(key)
        if isinstance(key, set):
            return frozenset(key)
        return key

    def __str__(self) -> str:
        return f"HashIndex({self.class_name}.{self.property_name}, {len(self)} entries)"


class SortedIndex:
    """Ordered index supporting equality and range lookups.

    Implemented as a sorted list of ``(key, OID)`` pairs; sufficient for the
    moderate database sizes the benchmarks use while keeping the lookup
    pattern (logarithmic positioning + contiguous scan) realistic.
    """

    kind = "sorted"

    def __init__(self, class_name: str, property_name: str):
        self.class_name = class_name
        self.property_name = property_name
        self._keys: list[Any] = []
        self._oids: list[OID] = []
        self.lookup_count = 0

    # -- maintenance ----------------------------------------------------
    def insert(self, key: Any, oid: OID) -> None:
        position = bisect.bisect_left(self._keys, key)
        # Skip forward over equal keys to keep insertion stable.
        while position < len(self._keys) and self._keys[position] == key and \
                self._oids[position] < oid:
            position += 1
        self._keys.insert(position, key)
        self._oids.insert(position, oid)

    def remove(self, key: Any, oid: OID) -> None:
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key:
            if self._oids[position] == oid:
                del self._keys[position]
                del self._oids[position]
                return
            position += 1
        raise IndexError_(
            f"cannot remove {oid} from index "
            f"{self.class_name}.{self.property_name}: entry missing")

    def update(self, old_key: Any, new_key: Any, oid: OID) -> None:
        self.remove(old_key, oid)
        self.insert(new_key, oid)

    # -- queries --------------------------------------------------------
    def lookup(self, key: Any) -> set[OID]:
        self.lookup_count += 1
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return set(self._oids[lo:hi])

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True) -> set[OID]:
        """Return OIDs whose key falls into ``[low, high]`` (open-ended when
        a bound is ``None``)."""
        self.lookup_count += 1
        if low is None:
            lo = 0
        else:
            lo = (bisect.bisect_left(self._keys, low) if include_low
                  else bisect.bisect_right(self._keys, low))
        if high is None:
            hi = len(self._keys)
        else:
            hi = (bisect.bisect_right(self._keys, high) if include_high
                  else bisect.bisect_left(self._keys, high))
        return set(self._oids[lo:hi])

    def __len__(self) -> int:
        return len(self._keys)

    def min_key(self) -> Optional[Any]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[Any]:
        return self._keys[-1] if self._keys else None

    def __str__(self) -> str:
        return f"SortedIndex({self.class_name}.{self.property_name}, {len(self)} entries)"


class IndexRegistry:
    """All indexes of one database, keyed by ``(class_name, property_name)``."""

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, str], HashIndex | SortedIndex] = {}

    def create_hash_index(self, class_name: str, property_name: str) -> HashIndex:
        return self._register(HashIndex(class_name, property_name))

    def create_sorted_index(self, class_name: str, property_name: str) -> SortedIndex:
        return self._register(SortedIndex(class_name, property_name))

    def _register(self, index: HashIndex | SortedIndex) -> Any:
        key = (index.class_name, index.property_name)
        if key in self._indexes:
            raise IndexError_(f"index on {key[0]}.{key[1]} already exists")
        self._indexes[key] = index
        return index

    def drop(self, class_name: str, property_name: str) -> HashIndex | SortedIndex:
        """Remove and return the index on ``class_name.property_name``."""
        key = (class_name, property_name)
        index = self._indexes.pop(key, None)
        if index is None:
            raise IndexError_(f"no index on {key[0]}.{key[1]} to drop")
        return index

    def get(self, class_name: str, property_name: str) -> Optional[HashIndex | SortedIndex]:
        return self._indexes.get((class_name, property_name))

    def has(self, class_name: str, property_name: str) -> bool:
        return (class_name, property_name) in self._indexes

    def for_class(self, class_name: str) -> list[HashIndex | SortedIndex]:
        return [index for (cls, _), index in self._indexes.items()
                if cls == class_name]

    def all(self) -> Iterable[HashIndex | SortedIndex]:
        return list(self._indexes.values())

    def notify_insert(self, class_name: str, property_name: str,
                      key: Any, oid: OID) -> None:
        index = self.get(class_name, property_name)
        if index is not None:
            index.insert(key, oid)

    def notify_update(self, class_name: str, property_name: str,
                      old_key: Any, new_key: Any, oid: OID) -> None:
        index = self.get(class_name, property_name)
        if index is not None:
            index.update(old_key, new_key, oid)

    def notify_remove(self, class_name: str, property_name: str,
                      key: Any, oid: OID) -> None:
        index = self.get(class_name, property_name)
        if index is not None:
            index.remove(key, oid)

    def __len__(self) -> int:
        return len(self._indexes)
