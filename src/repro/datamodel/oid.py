"""Object identifiers.

Every object stored in the database is identified by an :class:`OID`, a pair
of the class name the object was created in and a monotonically increasing
serial number allocated by the database.  OIDs are immutable, hashable and
totally ordered so they can be used in sets, as dictionary/index keys, and
sorted for deterministic output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class OID:
    """Immutable object identifier ``class_name:serial``."""

    class_name: str
    serial: int

    def __str__(self) -> str:
        return f"{self.class_name}:{self.serial}"

    def __repr__(self) -> str:
        return f"OID({self.class_name!r}, {self.serial})"


class OIDAllocator:
    """Allocates serial numbers per class.

    The allocator is deterministic: serials start at 1 per class and increase
    by one for every created object, which keeps generated databases and
    therefore test expectations and benchmark workloads reproducible.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}

    def allocate(self, class_name: str) -> OID:
        """Return a fresh OID for *class_name*."""
        serial = self._counters.get(class_name, 0) + 1
        self._counters[class_name] = serial
        return OID(class_name, serial)

    def allocate_many(self, class_name: str, count: int) -> Iterator[OID]:
        """Yield *count* fresh OIDs for *class_name*."""
        for _ in range(count):
            yield self.allocate(class_name)

    def release_last(self, class_name: str, serial: int) -> None:
        """Retract *serial* if it was the most recent allocation.

        Used when a commit scope aborts after creating objects: undoing the
        creations in reverse order returns the counters to their pre-scope
        values, keeping serials dense and deterministic.  A serial that is
        no longer the latest (which cannot happen under the single-writer
        gate) is left alone rather than corrupting the counter.
        """
        if self._counters.get(class_name) == serial:
            self._counters[class_name] = serial - 1

    def last_serial(self, class_name: str) -> int:
        """The most recently allocated serial for *class_name* (0 if none)."""
        return self._counters.get(class_name, 0)

    def counters(self) -> dict[str, int]:
        """A copy of every per-class counter (checkpoint serialization)."""
        return dict(self._counters)

    def restore(self, counters: dict[str, int]) -> None:
        """Reinstate counters from a checkpoint.

        Counters only ever move forward: a restored value below the
        current one (objects already recovered) is ignored, so replayed
        creations keep their dense, deterministic serials.
        """
        for class_name, serial in counters.items():
            if serial > self._counters.get(class_name, 0):
                self._counters[class_name] = serial

    def reset(self) -> None:
        """Forget all allocations (used when a database is cleared)."""
        self._counters.clear()
