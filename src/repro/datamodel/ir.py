"""External information-retrieval engine.

The paper's schema uses two externally implemented methods backed by an IR
component:

* ``Paragraph.contains_string(s)`` — per-paragraph substring test, expensive
  because it scans the paragraph content on every call;
* ``Paragraph→retrieve_by_string(s)`` — bulk retrieval of all paragraphs
  containing ``s``, cheap because it consults an inverted index.

Equivalence E5 states that the selection over ``contains_string`` is
semantically equivalent to one ``retrieve_by_string`` call, which is exactly
the asymmetry this module makes measurable: both operations are implemented
here with explicit cost accounting so the benchmarks can report how much
work each plan performed.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.datamodel.oid import OID

__all__ = ["TextDocument", "InvertedTextIndex", "tokenize"]

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Split *text* into lowercase word tokens (letters and digits)."""
    return [token.lower() for token in _TOKEN_RE.findall(text)]


@dataclass
class TextDocument:
    """One indexed text: the owning OID and its raw content.

    The lowercase form of the content is precomputed at indexing time so
    that the per-call substring tests do not re-lower the content on every
    ``contains_string`` probe (the cost accounting still charges the scan).
    """

    oid: OID
    content: str
    tokens: tuple[str, ...] = field(default_factory=tuple)
    content_lower: str = ""

    def __post_init__(self) -> None:
        if not self.content_lower:
            self.content_lower = self.content.lower()

    @classmethod
    def from_content(cls, oid: OID, content: str) -> "TextDocument":
        return cls(oid=oid, content=content, tokens=tuple(tokenize(content)))


class InvertedTextIndex:
    """Word-level inverted index with per-call cost accounting.

    ``scan_contains`` models the *external per-object* method
    (``contains_string``): it charges cost proportional to the content length
    of the probed object.  ``retrieve`` models the *bulk external* method
    (``retrieve_by_string``): it charges a fixed query cost plus a small cost
    per posting touched.
    """

    #: abstract cost units charged per character scanned by contains_string
    SCAN_COST_PER_CHAR = 0.01
    #: abstract cost units charged per retrieve_by_string call
    RETRIEVE_BASE_COST = 5.0
    #: abstract cost units charged per posting examined during retrieval
    RETRIEVE_COST_PER_POSTING = 0.05

    def __init__(self) -> None:
        self._postings: dict[str, set[OID]] = defaultdict(set)
        self._documents: dict[OID, TextDocument] = {}
        # externally observable work counters
        self.contains_calls = 0
        self.retrieve_calls = 0
        self.chars_scanned = 0
        self.postings_touched = 0
        self.cost_units = 0.0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def index_text(self, oid: OID, content: str) -> None:
        """(Re)index *content* under *oid*."""
        if oid in self._documents:
            self.remove(oid)
        document = TextDocument.from_content(oid, content)
        self._documents[oid] = document
        for token in set(document.tokens):
            self._postings[token].add(oid)

    def remove(self, oid: OID) -> None:
        document = self._documents.pop(oid, None)
        if document is None:
            return
        for token in set(document.tokens):
            bucket = self._postings.get(token)
            if bucket is not None:
                bucket.discard(oid)
                if not bucket:
                    del self._postings[token]

    # ------------------------------------------------------------------
    # the two external operations
    # ------------------------------------------------------------------
    def scan_contains(self, oid: OID, needle: str) -> bool:
        """Per-object substring test (models ``contains_string``)."""
        self.contains_calls += 1
        document = self._documents.get(oid)
        if document is None:
            return False
        self.chars_scanned += len(document.content)
        self.cost_units += len(document.content) * self.SCAN_COST_PER_CHAR
        return needle.lower() in document.content_lower

    def retrieve(self, needle: str) -> set[OID]:
        """Bulk retrieval of OIDs containing *needle* (exact substring
        semantics, like ``contains_string``).

        Each needle token selects the postings of every vocabulary word that
        *contains* the token (so partial-word needles are covered); the
        candidate sets are intersected and finally verified against the raw
        content.  This keeps the result identical to a full scan — which is
        what the paper's equivalence E5 asserts — while charging only
        index-proportional cost.
        """
        self.retrieve_calls += 1
        self.cost_units += self.RETRIEVE_BASE_COST
        words = tokenize(needle)
        if not words:
            candidates: set[OID] = set(self._documents)
        else:
            candidate_sets: list[set[OID]] = []
            for word in words:
                # collect postings of every vocabulary word containing the
                # token (the token itself included) so that partial-word
                # needles are never missed
                per_word: set[OID] = set()
                for vocabulary_word, postings in self._postings.items():
                    if word in vocabulary_word:
                        per_word |= postings
                candidate_sets.append(per_word)
                self.postings_touched += len(per_word)
                self.cost_units += len(per_word) * self.RETRIEVE_COST_PER_POSTING
            candidates = set.intersection(*candidate_sets) if candidate_sets else set()
        result: set[OID] = set()
        needle_lower = needle.lower()
        for oid in candidates:
            if needle_lower in self._documents[oid].content_lower:
                result.add(oid)
        return result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def document_count(self) -> int:
        return len(self._documents)

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def posting_list_size(self, word: str) -> int:
        return len(self._postings.get(word.lower(), set()))

    def document_frequency(self, words: Iterable[str]) -> dict[str, int]:
        return {word: self.posting_list_size(word) for word in words}

    def reset_counters(self) -> None:
        self.contains_calls = 0
        self.retrieve_calls = 0
        self.chars_scanned = 0
        self.postings_touched = 0
        self.cost_units = 0.0

    def counters(self) -> dict[str, float]:
        return {
            "contains_calls": self.contains_calls,
            "retrieve_calls": self.retrieve_calls,
            "chars_scanned": self.chars_scanned,
            "postings_touched": self.postings_touched,
            "cost_units": self.cost_units,
        }
