"""Shared index-DDL dispatch.

Index DDL used to be spelled out as five near-identical pass-through
methods on every layer that exposes it (``Database``, ``QueryService``, the
statement API's ``Connection``).  This module is the single place that maps
an index *kind* to the database primitive, so the layers above reduce to
one generic ``create_index``/``drop_index`` pair each (the legacy
per-kind method names survive as thin aliases).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datamodel.database import Database

__all__ = ["INDEX_KINDS", "create_index", "drop_index"]

#: index kinds understood by ``CREATE [HASH|SORTED|TEXT] INDEX``
INDEX_KINDS = ("hash", "sorted", "text")


def create_index(database: "Database", kind: str, class_name: str,
                 prop: str) -> Any:
    """Create an index of *kind* on ``class_name.prop`` and backfill it."""
    if kind == "hash":
        return database.create_hash_index(class_name, prop)
    if kind == "sorted":
        return database.create_sorted_index(class_name, prop)
    if kind == "text":
        return database.create_text_index(class_name, prop)
    raise SchemaError(
        f"unknown index kind {kind!r} (expected one of {INDEX_KINDS})")


def drop_index(database: "Database", class_name: str, prop: str,
               text: bool = False) -> None:
    """Drop the (text) index on ``class_name.prop``."""
    if text:
        database.drop_text_index(class_name, prop)
    else:
        database.drop_index(class_name, prop)
