"""Schema layer: classes, properties and method signatures.

A VML class has two facets (see Section 2.1 of the paper):

* the **own type** (``OWNTYPE``) describing the class object itself, which
  may define class-level methods such as ``Document→select_by_index``;
* the **instance type** (``INSTTYPE``) describing the instances, with typed
  properties and instance methods such as ``Paragraph→document()``.

The schema also records inverse-link declarations and optional method
annotations (cost per call, result cardinality) that the optimizer's cost
model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.datamodel.types import ANY, VMLType
from repro.errors import MethodResolutionError, SchemaError

__all__ = [
    "MethodKind",
    "PropertyDef",
    "MethodDef",
    "InverseLink",
    "ClassDef",
    "Schema",
]


class MethodKind:
    """Enumeration of method implementation kinds (plain strings by design
    so that schema definitions remain serializable and easy to inspect)."""

    INTERNAL = "internal"          # encoded against the data model (e.g. path methods)
    EXTERNAL = "external"          # implemented outside the database (IR engine, index)
    PROPERTY_ACCESS = "property"   # system-generated default accessor
    ALL = (INTERNAL, EXTERNAL, PROPERTY_ACCESS)


@dataclass
class PropertyDef:
    """A typed property of the instances of a class."""

    name: str
    vml_type: VMLType
    #: when this property stores OIDs (or a set of OIDs), the target class
    target_class: Optional[str] = None
    #: derived properties are maintained by the database (e.g. largeParagraphs)
    derived: bool = False
    description: str = ""

    def is_reference(self) -> bool:
        """True when the property stores OIDs of another class."""
        return self.target_class is not None

    def __str__(self) -> str:
        return f"{self.name}: {self.vml_type}"


@dataclass
class MethodDef:
    """Signature and implementation of a method.

    ``implementation`` is a callable ``(ctx, receiver, *args)`` where ``ctx``
    is an :class:`~repro.datamodel.database.InvocationContext` giving access
    to the database, and ``receiver`` is an OID for instance methods or the
    class name for class-level (OWNTYPE) methods.
    """

    name: str
    params: tuple[tuple[str, VMLType], ...] = ()
    return_type: VMLType = ANY
    kind: str = MethodKind.INTERNAL
    implementation: Optional[Callable[..., Any]] = None
    #: class-level (OWNTYPE) method when True, instance (INSTTYPE) otherwise
    class_level: bool = False
    #: abstract cost units charged per invocation (cost-model input)
    cost_per_call: float = 1.0
    #: expected cardinality of a set-valued result, if known
    result_cardinality_hint: Optional[float] = None
    description: str = ""

    @property
    def arity(self) -> int:
        return len(self.params)

    def is_external(self) -> bool:
        return self.kind == MethodKind.EXTERNAL

    def signature(self) -> str:
        params = ", ".join(f"{name}: {typ}" for name, typ in self.params)
        return f"{self.name}({params}): {self.return_type}"

    def __str__(self) -> str:
        prefix = "OWN " if self.class_level else ""
        return f"{prefix}{self.signature()} [{self.kind}]"


@dataclass(frozen=True)
class InverseLink:
    """Declares that two reference properties are inverses of each other.

    ``Section.document`` and ``Document.sections`` form an inverse link: a
    section *s* belongs to document *d* exactly when *s* appears in
    ``d.sections``.  The optimizer derives condition-equivalence rules from
    these declarations (Section 4.2, "Equivalent conditions").
    """

    source_class: str
    source_property: str
    target_class: str
    target_property: str
    #: cardinality of the source side: "one" (single OID) or "many" (set)
    source_cardinality: str = "one"
    #: cardinality of the target side
    target_cardinality: str = "many"

    def reversed(self) -> "InverseLink":
        return InverseLink(
            source_class=self.target_class,
            source_property=self.target_property,
            target_class=self.source_class,
            target_property=self.source_property,
            source_cardinality=self.target_cardinality,
            target_cardinality=self.source_cardinality,
        )


@dataclass
class ClassDef:
    """Definition of a class: properties, methods, and its place in the
    inheritance lattice (single inheritance is sufficient for the paper)."""

    name: str
    properties: dict[str, PropertyDef] = field(default_factory=dict)
    instance_methods: dict[str, MethodDef] = field(default_factory=dict)
    class_methods: dict[str, MethodDef] = field(default_factory=dict)
    superclass: Optional[str] = None
    description: str = ""

    def add_property(self, prop: PropertyDef) -> "ClassDef":
        if prop.name in self.properties:
            raise SchemaError(
                f"duplicate property {prop.name!r} in class {self.name!r}")
        self.properties[prop.name] = prop
        return self

    def add_method(self, method: MethodDef) -> "ClassDef":
        table = self.class_methods if method.class_level else self.instance_methods
        if method.name in table:
            raise SchemaError(
                f"duplicate method {method.name!r} in class {self.name!r}")
        table[method.name] = method
        return self

    def property_names(self) -> list[str]:
        return list(self.properties)

    def __str__(self) -> str:
        return f"CLASS {self.name}"


class Schema:
    """A collection of class definitions plus cross-class declarations."""

    def __init__(self, name: str = "schema"):
        self.name = name
        self._classes: dict[str, ClassDef] = {}
        self._inverse_links: list[InverseLink] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_class(self, class_def: ClassDef) -> ClassDef:
        if class_def.name in self._classes:
            raise SchemaError(f"duplicate class {class_def.name!r}")
        self._classes[class_def.name] = class_def
        return class_def

    def define_class(self, name: str, superclass: str | None = None,
                     description: str = "") -> ClassDef:
        """Create, register and return an empty class definition."""
        return self.add_class(ClassDef(name=name, superclass=superclass,
                                       description=description))

    def add_inverse_link(self, link: InverseLink) -> InverseLink:
        self._validate_link(link)
        self._inverse_links.append(link)
        return link

    def _validate_link(self, link: InverseLink) -> None:
        for cls, prop in ((link.source_class, link.source_property),
                          (link.target_class, link.target_property)):
            class_def = self._classes.get(cls)
            if class_def is None:
                raise SchemaError(f"inverse link refers to unknown class {cls!r}")
            if prop not in class_def.properties:
                raise SchemaError(
                    f"inverse link refers to unknown property {cls}.{prop}")

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def classes(self) -> Mapping[str, ClassDef]:
        return dict(self._classes)

    @property
    def inverse_links(self) -> Sequence[InverseLink]:
        return tuple(self._inverse_links)

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def get_class(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def class_names(self) -> list[str]:
        return list(self._classes)

    def _class_chain(self, name: str) -> Iterable[ClassDef]:
        """Yield the class and its superclasses, most specific first."""
        current: Optional[str] = name
        seen: set[str] = set()
        while current is not None:
            if current in seen:
                raise SchemaError(f"inheritance cycle involving {current!r}")
            seen.add(current)
            class_def = self.get_class(current)
            yield class_def
            current = class_def.superclass

    def resolve_property(self, class_name: str, prop: str) -> PropertyDef:
        """Resolve *prop* on *class_name*, walking up the inheritance chain."""
        for class_def in self._class_chain(class_name):
            if prop in class_def.properties:
                return class_def.properties[prop]
        raise SchemaError(f"class {class_name!r} has no property {prop!r}")

    def has_property(self, class_name: str, prop: str) -> bool:
        try:
            self.resolve_property(class_name, prop)
            return True
        except SchemaError:
            return False

    def resolve_instance_method(self, class_name: str, method: str) -> MethodDef:
        for class_def in self._class_chain(class_name):
            if method in class_def.instance_methods:
                return class_def.instance_methods[method]
        raise MethodResolutionError(
            f"class {class_name!r} has no instance method {method!r}")

    def resolve_class_method(self, class_name: str, method: str) -> MethodDef:
        for class_def in self._class_chain(class_name):
            if method in class_def.class_methods:
                return class_def.class_methods[method]
        raise MethodResolutionError(
            f"class {class_name!r} has no class method {method!r}")

    def has_instance_method(self, class_name: str, method: str) -> bool:
        try:
            self.resolve_instance_method(class_name, method)
            return True
        except MethodResolutionError:
            return False

    def has_class_method(self, class_name: str, method: str) -> bool:
        try:
            self.resolve_class_method(class_name, method)
            return True
        except MethodResolutionError:
            return False

    def find_inverse(self, class_name: str, prop: str) -> Optional[InverseLink]:
        """Return the inverse link whose source side is ``class_name.prop``."""
        for link in self._inverse_links:
            if link.source_class == class_name and link.source_property == prop:
                return link
            rev = link.reversed()
            if rev.source_class == class_name and rev.source_property == prop:
                return rev
        return None

    # ------------------------------------------------------------------
    # validation / introspection
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity of the whole schema.

        Every reference property and every typed object parameter/return must
        name a class that exists, and superclasses must exist.
        """
        for class_def in self._classes.values():
            if class_def.superclass is not None and class_def.superclass not in self._classes:
                raise SchemaError(
                    f"class {class_def.name!r} inherits from unknown class "
                    f"{class_def.superclass!r}")
            for prop in class_def.properties.values():
                if prop.target_class is not None and prop.target_class not in self._classes:
                    raise SchemaError(
                        f"property {class_def.name}.{prop.name} refers to "
                        f"unknown class {prop.target_class!r}")
        for link in self._inverse_links:
            self._validate_link(link)

    def describe(self) -> str:
        """Human-readable schema dump used by examples and the README."""
        lines: list[str] = [f"SCHEMA {self.name}"]
        for class_def in self._classes.values():
            lines.append(f"  CLASS {class_def.name}" +
                         (f" ISA {class_def.superclass}" if class_def.superclass else ""))
            for prop in class_def.properties.values():
                lines.append(f"    PROPERTY {prop}")
            for method in class_def.class_methods.values():
                lines.append(f"    OWN METHOD {method.signature()}")
            for method in class_def.instance_methods.values():
                lines.append(f"    METHOD {method.signature()}")
        for link in self._inverse_links:
            lines.append(
                f"  INVERSE {link.source_class}.{link.source_property} <-> "
                f"{link.target_class}.{link.target_property}")
        return "\n".join(lines)
