"""Work counters and optimizer statistics for the database layer.

Two families of statistics live here:

* :class:`DatabaseStatistics` — mutable *work counters* (property reads,
  method invocations, index lookups, abstract cost units).  Logical work is
  deterministic and therefore the primary quantity checked by tests;
  wall-clock time is reported by pytest-benchmark.

* the **optimizer statistics catalog** — per-class/per-property data
  distributions (:class:`ClassStatistics`, :class:`PropertyStatistics`,
  :class:`EquiDepthHistogram`) and per-method *measured* latencies
  (:class:`MethodStatistics`), collected by the ``ANALYZE`` statement and
  held in a :class:`StatisticsCatalog` owned by the database.  The cost
  model (:mod:`repro.optimizer.cost`) derives selectivities and method
  costs from this catalog instead of guessing flat defaults; the catalog is
  maintained *incrementally* under the database's
  :class:`~repro.datamodel.database.VersionClock`: the mutation paths note
  per-class churn so stale statistics stop being served, and ``ANALYZE``
  bumps the clock's ``stats`` counter so cached plans re-optimize.
"""

from __future__ import annotations

import bisect
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datamodel.database import Database


@dataclass
class DatabaseStatistics:
    """Mutable counters describing the work performed by a database."""

    property_reads: int = 0
    property_writes: int = 0
    objects_created: int = 0
    objects_deleted: int = 0
    method_calls: Counter = field(default_factory=Counter)
    external_method_calls: Counter = field(default_factory=Counter)
    class_method_calls: Counter = field(default_factory=Counter)
    index_lookups: int = 0
    extension_scans: int = 0
    method_cost_units: float = 0.0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_property_read(self) -> None:
        self.property_reads += 1

    def record_property_write(self) -> None:
        self.property_writes += 1

    def record_object_created(self) -> None:
        self.objects_created += 1

    def record_object_deleted(self) -> None:
        self.objects_deleted += 1

    def record_method_call(self, class_name: str, method_name: str,
                           external: bool, class_level: bool,
                           cost: float) -> None:
        key = f"{class_name}.{method_name}"
        self.method_calls[key] += 1
        if external:
            self.external_method_calls[key] += 1
        if class_level:
            self.class_method_calls[key] += 1
        self.method_cost_units += cost

    def record_index_lookup(self) -> None:
        self.index_lookups += 1

    def record_extension_scan(self) -> None:
        self.extension_scans += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def total_method_calls(self) -> int:
        return sum(self.method_calls.values())

    def total_external_calls(self) -> int:
        return sum(self.external_method_calls.values())

    def calls_of(self, class_name: str, method_name: str) -> int:
        return self.method_calls.get(f"{class_name}.{method_name}", 0)

    def snapshot(self) -> Mapping[str, float]:
        """A flat, copyable view used by the benchmark harness."""
        return {
            "property_reads": self.property_reads,
            "property_writes": self.property_writes,
            "objects_created": self.objects_created,
            "objects_deleted": self.objects_deleted,
            "method_calls": self.total_method_calls(),
            "external_method_calls": self.total_external_calls(),
            "index_lookups": self.index_lookups,
            "extension_scans": self.extension_scans,
            "method_cost_units": self.method_cost_units,
        }

    def reset(self) -> None:
        self.property_reads = 0
        self.property_writes = 0
        self.objects_created = 0
        self.objects_deleted = 0
        self.method_calls.clear()
        self.external_method_calls.clear()
        self.class_method_calls.clear()
        self.index_lookups = 0
        self.extension_scans = 0
        self.method_cost_units = 0.0

    def diff(self, earlier: Mapping[str, float]) -> dict[str, float]:
        """Difference between the current snapshot and an *earlier* one."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}


# ----------------------------------------------------------------------
# optimizer statistics: histograms, per-property and per-method stats
# ----------------------------------------------------------------------

#: abstract cost units one property read is charged by the cost model
#: (mirrors ``CostModel.PROPERTY_ACCESS_COST``); method latency measured by
#: ANALYZE is calibrated against the measured property-read latency so that
#: ``calibrated cost = (method seconds / read seconds) × this constant``
PROPERTY_READ_COST_UNITS = 0.2

#: types equi-depth histograms are built over (mutually orderable scalars)
_ORDERABLE = (int, float, str)


def _hashable(value: Any) -> Any:
    """A hashable stand-in for *value* (for distinct counting)."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over the non-null values of one property.

    ``boundaries`` has ``len(counts) + 1`` entries; bucket *i* covers the
    half-open interval ``[boundaries[i], boundaries[i+1])`` (the last bucket
    is closed).  Equi-depth means every bucket holds roughly the same number
    of rows, so heavily skewed distributions get fine boundaries exactly
    where the mass sits.
    """

    boundaries: tuple
    counts: tuple[int, ...]
    total: int

    @classmethod
    def build(cls, values: list, buckets: int = 16
              ) -> Optional["EquiDepthHistogram"]:
        """Build a histogram, or None when the values are not orderable."""
        orderable = [v for v in values
                     if isinstance(v, _ORDERABLE) and not isinstance(v, bool)]
        if len(orderable) < 2 or len({type(v) is str for v in orderable}) > 1:
            return None
        ordered = sorted(orderable)
        total = len(ordered)
        buckets = max(1, min(buckets, total))
        boundaries = [ordered[0]]
        counts = []
        consumed = 0
        for i in range(1, buckets + 1):
            upto = round(i * total / buckets)
            if upto <= consumed:
                continue
            counts.append(upto - consumed)
            boundaries.append(ordered[upto - 1])
            consumed = upto
        return cls(boundaries=tuple(boundaries), counts=tuple(counts),
                   total=total)

    def fraction_leq(self, value: Any) -> float:
        """Fraction of rows with value ``<=`` *value* (interpolated)."""
        boundaries = self.boundaries
        try:
            if value < boundaries[0]:
                return 0.0
            if value >= boundaries[-1]:
                return 1.0
        except TypeError:
            return 0.5
        bucket = max(bisect.bisect_right(boundaries, value) - 1, 0)
        below = sum(self.counts[:bucket]) / self.total
        low, high = boundaries[bucket], boundaries[bucket + 1]
        if isinstance(value, (int, float)) and isinstance(low, (int, float)) \
                and high != low:
            within = (value - low) / (high - low)
        else:
            within = 0.5
        return min(below + max(min(within, 1.0), 0.0)
                   * self.counts[bucket] / self.total, 1.0)

    def selectivity_cmp(self, op: str, value: Any) -> float:
        """Selectivity of ``property OP value`` for ``<``/``<=``/``>``/``>=``."""
        leq = self.fraction_leq(value)
        if op in ("<", "<="):
            return leq
        return max(1.0 - leq, 0.0)

    def selectivity_range(self, low: Any = None, high: Any = None) -> float:
        """Fraction of rows falling into ``[low, high]`` (open-ended bounds
        when None); boundary inclusiveness is below histogram resolution."""
        upper = 1.0 if high is None else self.fraction_leq(high)
        lower = 0.0 if low is None else self.fraction_leq(low)
        return max(upper - lower, 0.0)


@dataclass(frozen=True)
class PropertyStatistics:
    """Measured distribution of one property over one class extension."""

    name: str
    #: rows sampled (including nulls) and the non-null subset
    row_count: int
    non_null: int
    distinct: int
    null_fraction: float
    min_value: Any = None
    max_value: Any = None
    histogram: Optional[EquiDepthHistogram] = None
    #: the most frequent values and their counts (captures heavy skew that
    #: the uniform 1/distinct assumption misses)
    most_common: tuple[tuple[Any, int], ...] = ()
    #: average elements per row for set-valued properties, else None
    avg_fanout: Optional[float] = None

    def selectivity_eq(self, value: Any) -> float:
        """Estimated fraction of rows with ``property == value``."""
        if self.row_count <= 0:
            return 0.0
        if value is None:
            return self.null_fraction
        key = _hashable(value)
        mcv_total = 0
        for candidate, count in self.most_common:
            if candidate == key:
                return count / self.row_count
            mcv_total += count
        if self.min_value is not None and self.max_value is not None:
            try:
                if value < self.min_value or value > self.max_value:
                    return 0.5 / self.row_count
            except TypeError:
                pass
        remaining_rows = max(self.non_null - mcv_total, 0)
        remaining_distinct = max(self.distinct - len(self.most_common), 1)
        return remaining_rows / remaining_distinct / max(self.row_count, 1)

    def selectivity_unknown_eq(self) -> float:
        """Equality selectivity when the comparison value is unknown (bind
        parameters): the average bucket under uniform value choice."""
        if self.row_count <= 0 or self.distinct <= 0:
            return 0.0
        return self.non_null / self.distinct / max(self.row_count, 1)

    def selectivity_cmp(self, op: str, value: Any) -> Optional[float]:
        """Histogram selectivity of a range comparison, or None without a
        histogram (caller falls back to the documented default)."""
        if self.histogram is None:
            return None
        non_null_fraction = 1.0 - self.null_fraction
        return self.histogram.selectivity_cmp(op, value) * non_null_fraction

    def selectivity_range(self, low: Any = None, high: Any = None
                          ) -> Optional[float]:
        """Histogram selectivity of ``low <= property <= high``, or None."""
        if self.histogram is None:
            return None
        non_null_fraction = 1.0 - self.null_fraction
        return self.histogram.selectivity_range(low, high) * non_null_fraction


@dataclass
class CorrectionRecord:
    """One feedback correction learned from a measured execution.

    The adaptive re-optimization loop (see ``QueryService``) compares each
    operator's estimated output cardinality with the profiled actual; when
    the divergence exceeds its threshold, the *observed* selectivity is
    recorded here so the next planning pass uses measured numbers instead of
    the model's derivation.  ``key`` identifies the join class-pair or the
    normalized per-class predicate the correction applies to."""

    kind: str  # "join" | "predicate"
    key: tuple
    observed: float
    estimated: float
    updates: int = 1


@dataclass(frozen=True)
class MethodStatistics:
    """Measured latency (and result fan-out) of one zero-argument method."""

    name: str
    qualified_name: str
    samples: int
    avg_seconds: float
    #: abstract cost units per call, calibrated against the measured
    #: property-read latency (comparable to ``MethodDef.cost_per_call``)
    cost_units: float
    #: average result-set size for set-returning methods, else None
    avg_result_cardinality: Optional[float] = None


@dataclass
class ClassStatistics:
    """Statistics of one class extension as of one ANALYZE run."""

    class_name: str
    #: deep extension size (instances of the class and its subclasses)
    row_count: int
    #: the data version the statistics were collected at
    data_version: int
    properties: dict[str, PropertyStatistics] = field(default_factory=dict)

    def property_statistics(self, prop: str) -> Optional[PropertyStatistics]:
        return self.properties.get(prop)


class StatisticsCatalog:
    """All optimizer statistics of one database.

    The catalog is populated by :meth:`analyze` (the ``ANALYZE`` statement)
    and consulted by the cost model.  Between ANALYZE runs it is maintained
    incrementally: the database's mutation paths call :meth:`note_mutation`
    (a cheap per-class counter), and :meth:`fresh` stops serving a class's
    statistics once churn since collection exceeds ``staleness_fraction`` of
    the rows it was collected over — the cost model then falls back to its
    documented defaults instead of trusting stale histograms.
    """

    #: corrections are only re-recorded when the new observation differs
    #: from the stored one by more than this ratio (prevents a plan that is
    #: already corrected from oscillating on measurement noise)
    MATERIAL_CHANGE_RATIO = 1.25
    #: bound on stored corrections per kind (feedback is an override cache,
    #: not an unbounded log)
    MAX_CORRECTIONS = 256

    def __init__(self, staleness_fraction: float = 0.25):
        self.staleness_fraction = staleness_fraction
        self._classes: dict[str, ClassStatistics] = {}
        self._methods: dict[str, MethodStatistics] = {}
        self._mutations: Counter = Counter()
        #: feedback corrections from the adaptive re-optimization loop;
        #: keyed by join class-pair / normalized predicate identity
        self._join_corrections: dict[tuple, CorrectionRecord] = {}
        self._predicate_corrections: dict[tuple, CorrectionRecord] = {}
        #: measured seconds of one property read (method-cost calibration
        #: baseline); 0.0 until the first timed ANALYZE
        self.property_read_seconds: float = 0.0
        #: bumped once per ANALYZE run (mirrored into ``VersionClock.stats``)
        self.version = 0

    # ------------------------------------------------------------------
    # incremental maintenance (hot paths: keep these trivial)
    # ------------------------------------------------------------------
    def note_mutation(self, class_name: str, count: int = 1) -> None:
        """Record *count* creates/updates/deletes against *class_name*."""
        self._mutations[class_name] += count

    def mutations_since_analyze(self, class_name: str) -> int:
        return self._mutations.get(class_name, 0)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def class_statistics(self, class_name: str) -> Optional[ClassStatistics]:
        """The collected statistics for *class_name*, fresh or stale."""
        return self._classes.get(class_name)

    def fresh(self, class_name: str) -> Optional[ClassStatistics]:
        """The statistics for *class_name*, or None when absent or stale."""
        stats = self._classes.get(class_name)
        if stats is None:
            return None
        churn = self._mutations.get(class_name, 0)
        if churn > max(self.staleness_fraction * max(stats.row_count, 1), 1):
            return None
        return stats

    # ------------------------------------------------------------------
    # feedback corrections (adaptive re-optimization)
    # ------------------------------------------------------------------
    @staticmethod
    def _clamp_selectivity(value: float) -> Optional[float]:
        """Clamp an observed selectivity into ``(0, 1]``; None when the
        observation is not a usable number."""
        try:
            value = float(value)
        except (TypeError, ValueError):
            return None
        if value != value or value <= 0.0:  # NaN or degenerate
            return None
        return min(value, 1.0)

    def _record_correction(self, store: dict, kind: str, key: tuple,
                           observed: float, estimated: float) -> bool:
        """Record an observed selectivity; True when it materially changed
        the stored value (callers only invalidate plans on material change)."""
        observed = self._clamp_selectivity(observed)
        if observed is None:
            return False
        previous = store.get(key)
        if previous is not None:
            ratio = (max(previous.observed, observed)
                     / max(min(previous.observed, observed), 1e-12))
            if ratio <= self.MATERIAL_CHANGE_RATIO:
                previous.updates += 1
                return False
        if previous is None and len(store) >= self.MAX_CORRECTIONS:
            return False
        updates = previous.updates + 1 if previous is not None else 1
        store[key] = CorrectionRecord(kind=kind, key=key, observed=observed,
                                      estimated=estimated, updates=updates)
        return True

    def record_join_correction(self, key: tuple, observed: float,
                               estimated: float) -> bool:
        """Record the measured selectivity of one join class-pair."""
        return self._record_correction(self._join_corrections, "join", key,
                                       observed, estimated)

    def record_predicate_correction(self, key: tuple, observed: float,
                                    estimated: float) -> bool:
        """Record the measured selectivity of one per-class predicate."""
        return self._record_correction(self._predicate_corrections,
                                       "predicate", key, observed, estimated)

    def join_correction(self, key: tuple) -> Optional[float]:
        record = self._join_corrections.get(key)
        return record.observed if record is not None else None

    def predicate_correction(self, key: tuple) -> Optional[float]:
        record = self._predicate_corrections.get(key)
        return record.observed if record is not None else None

    def correction_count(self) -> int:
        return len(self._join_corrections) + len(self._predicate_corrections)

    def corrections(self) -> list[CorrectionRecord]:
        """All stored corrections (joins first), for EXPLAIN and tests."""
        return (sorted(self._join_corrections.values(),
                       key=lambda r: str(r.key))
                + sorted(self._predicate_corrections.values(),
                         key=lambda r: str(r.key)))

    def clear_corrections(self) -> None:
        self._join_corrections.clear()
        self._predicate_corrections.clear()

    def method_statistics(self, method_name: str) -> Optional[MethodStatistics]:
        """Measured statistics for *method_name* (bare name, like the cost
        model's schema-wide method resolution)."""
        return self._methods.get(method_name)

    def analyzed_classes(self) -> list[str]:
        return list(self._classes)

    def __len__(self) -> int:
        return len(self._classes)

    # ------------------------------------------------------------------
    # collection (the ANALYZE statement)
    # ------------------------------------------------------------------
    def analyze(self, database: "Database",
                class_name: Optional[str] = None,
                histogram_buckets: int = 16,
                sample_limit: int = 20_000,
                most_common: int = 5,
                method_samples: int = 5,
                time_methods: bool = True) -> list[ClassStatistics]:
        """Collect statistics for *class_name* (or every class).

        Property values are read straight off the stored objects — ANALYZE
        is metadata collection, so it does not charge the work counters
        query executions are measured by (the extension scans it performs
        are charged, like any scan).  Zero-argument methods are additionally
        *timed* on a small sample of receivers to calibrate their per-call
        cost against measured property-read latency.
        """
        names = ([class_name] if class_name is not None
                 else database.schema.class_names())
        if time_methods:
            # Re-measure the calibration baseline once per ANALYZE run, so
            # a one-off load spike during an earlier run cannot skew every
            # later calibration.
            self.property_read_seconds = 0.0
        collected: list[ClassStatistics] = []
        for name in names:
            stats = self._collect_class(database, name, histogram_buckets,
                                        sample_limit, most_common)
            self._classes[name] = stats
            self._mutations[name] = 0
            collected.append(stats)
            if time_methods:
                self._calibrate_methods(database, name, method_samples)
        # Fresh ground truth supersedes feedback learned against the old
        # distributions: drop every correction that touches a re-analyzed
        # class so the next plan trusts the newly collected statistics.
        analyzed = set(names)
        for store in (self._join_corrections, self._predicate_corrections):
            for key in [k for k in store
                        if self._correction_classes(k) & analyzed]:
                del store[key]
        self.version += 1
        return collected

    @staticmethod
    def _correction_classes(key: tuple) -> set:
        """Class names referenced by a correction key.  Keys are uniformly
        tuples of ``(class_name, detail)`` pairs — join keys carry one pair
        per side, predicate keys a single pair."""
        return {part[0] for part in key
                if isinstance(part, tuple) and part}

    def _collect_class(self, database: "Database", class_name: str,
                       histogram_buckets: int, sample_limit: int,
                       most_common: int) -> ClassStatistics:
        oids = database.extension(class_name)
        sample = oids[:sample_limit]
        objects = [database.get(oid) for oid in sample]
        stats = ClassStatistics(class_name=class_name, row_count=len(oids),
                                data_version=database.versions.data)
        for prop in self._class_properties(database, class_name):
            values = [obj.get_or_none(prop) for obj in objects]
            stats.properties[prop] = self._collect_property(
                prop, values, histogram_buckets, most_common)
        return stats

    @staticmethod
    def _class_properties(database: "Database",
                          class_name: str) -> Iterable[str]:
        """Property names of *class_name* including inherited ones."""
        names: list[str] = []
        current: Optional[str] = class_name
        while current is not None:
            class_def = database.schema.get_class(current)
            names.extend(p for p in class_def.properties if p not in names)
            current = class_def.superclass
        return names

    @staticmethod
    def _collect_property(prop: str, values: list, histogram_buckets: int,
                          most_common: int) -> PropertyStatistics:
        row_count = len(values)
        non_null = [v for v in values if v is not None]
        null_fraction = (1.0 - len(non_null) / row_count) if row_count else 0.0

        fanouts = [len(v) for v in non_null
                   if isinstance(v, (set, frozenset, list, tuple))]
        avg_fanout = (sum(fanouts) / len(fanouts)) if fanouts else None

        frequencies = Counter(_hashable(v) for v in non_null)
        mcv = tuple((value, count)
                    for value, count in frequencies.most_common(most_common)
                    if count > 1)

        orderable = [v for v in non_null
                     if isinstance(v, _ORDERABLE) and not isinstance(v, bool)]
        histogram = None
        min_value = max_value = None
        if orderable and len({type(v) is str for v in orderable}) == 1:
            try:
                min_value, max_value = min(orderable), max(orderable)
            except TypeError:  # mixed incomparable scalars
                min_value = max_value = None
            else:
                histogram = EquiDepthHistogram.build(orderable,
                                                     histogram_buckets)

        return PropertyStatistics(
            name=prop, row_count=row_count, non_null=len(non_null),
            distinct=len(frequencies), null_fraction=null_fraction,
            min_value=min_value, max_value=max_value, histogram=histogram,
            most_common=mcv, avg_fanout=avg_fanout)

    # ------------------------------------------------------------------
    # method-cost calibration (timed sampling)
    # ------------------------------------------------------------------
    def _calibrate_methods(self, database: "Database", class_name: str,
                           method_samples: int) -> None:
        class_def = database.schema.get_class(class_name)
        receivers = database.extension(class_name, deep=False)[:method_samples]
        if not receivers:
            return
        self._measure_read_baseline(database, class_def, receivers)
        context = database.context
        for method in class_def.instance_methods.values():
            if method.implementation is None or method.arity != 0:
                continue  # cannot sample methods that need arguments
            elapsed = 0.0
            cardinalities: list[int] = []
            samples = 0
            for oid in receivers:
                started = time.perf_counter()
                try:
                    # Invoke the implementation directly: calibration must
                    # not pollute the database's work counters, which the
                    # benchmarks diff around measured query executions.
                    result = method.implementation(context, oid)
                except Exception:
                    continue  # a failing sample never poisons the catalog
                elapsed += time.perf_counter() - started
                samples += 1
                if isinstance(result, (set, frozenset, list, tuple)):
                    cardinalities.append(len(result))
            if samples == 0:
                continue
            avg_seconds = elapsed / samples
            unit = max(self.property_read_seconds, 1e-8)
            cost_units = max(avg_seconds / unit * PROPERTY_READ_COST_UNITS,
                             0.05)
            avg_card = (sum(cardinalities) / len(cardinalities)
                        if cardinalities else None)
            self._methods[method.name] = MethodStatistics(
                name=method.name,
                qualified_name=f"{class_name}.{method.name}",
                samples=samples, avg_seconds=avg_seconds,
                cost_units=cost_units, avg_result_cardinality=avg_card)

    def _measure_read_baseline(self, database: "Database", class_def,
                               receivers: list) -> None:
        """Time raw property reads once per ANALYZE as the cost unit."""
        if self.property_read_seconds > 0.0 or not class_def.properties:
            return
        prop = next(iter(class_def.properties))
        objects = [database.get(oid) for oid in receivers]
        rounds = max(1000 // max(len(objects), 1), 1)
        started = time.perf_counter()
        for _ in range(rounds):
            for obj in objects:
                obj.get_or_none(prop)
        reads = rounds * len(objects)
        self.property_read_seconds = max(
            (time.perf_counter() - started) / max(reads, 1), 1e-9)

    def describe(self) -> str:
        """Human-readable catalog summary (used by ANALYZE's result)."""
        lines = [f"StatisticsCatalog(v{self.version}, "
                 f"{len(self._classes)} classes, "
                 f"{len(self._methods)} timed methods, "
                 f"{self.correction_count()} corrections)"]
        for name, stats in sorted(self._classes.items()):
            churn = self._mutations.get(name, 0)
            lines.append(f"  {name}: rows={stats.row_count}, "
                         f"properties={len(stats.properties)}, "
                         f"churn={churn}")
        for record in self.corrections():
            lines.append(f"  correction[{record.kind}] {record.key}: "
                         f"estimated={record.estimated:.4g} -> "
                         f"observed={record.observed:.4g} "
                         f"(x{record.updates})")
        return "\n".join(lines)
