"""Work counters for the database layer.

Benchmark comparisons between plans are reported both in wall-clock time and
in *logical work*: number of property reads, method invocations (split into
internal and external), index lookups, and abstract cost units charged by
external engines.  Logical work is deterministic and therefore the primary
quantity checked by tests; wall-clock time is reported by pytest-benchmark.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping


@dataclass
class DatabaseStatistics:
    """Mutable counters describing the work performed by a database."""

    property_reads: int = 0
    property_writes: int = 0
    objects_created: int = 0
    objects_deleted: int = 0
    method_calls: Counter = field(default_factory=Counter)
    external_method_calls: Counter = field(default_factory=Counter)
    class_method_calls: Counter = field(default_factory=Counter)
    index_lookups: int = 0
    extension_scans: int = 0
    method_cost_units: float = 0.0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_property_read(self) -> None:
        self.property_reads += 1

    def record_property_write(self) -> None:
        self.property_writes += 1

    def record_object_created(self) -> None:
        self.objects_created += 1

    def record_object_deleted(self) -> None:
        self.objects_deleted += 1

    def record_method_call(self, class_name: str, method_name: str,
                           external: bool, class_level: bool,
                           cost: float) -> None:
        key = f"{class_name}.{method_name}"
        self.method_calls[key] += 1
        if external:
            self.external_method_calls[key] += 1
        if class_level:
            self.class_method_calls[key] += 1
        self.method_cost_units += cost

    def record_index_lookup(self) -> None:
        self.index_lookups += 1

    def record_extension_scan(self) -> None:
        self.extension_scans += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def total_method_calls(self) -> int:
        return sum(self.method_calls.values())

    def total_external_calls(self) -> int:
        return sum(self.external_method_calls.values())

    def calls_of(self, class_name: str, method_name: str) -> int:
        return self.method_calls.get(f"{class_name}.{method_name}", 0)

    def snapshot(self) -> Mapping[str, float]:
        """A flat, copyable view used by the benchmark harness."""
        return {
            "property_reads": self.property_reads,
            "property_writes": self.property_writes,
            "objects_created": self.objects_created,
            "objects_deleted": self.objects_deleted,
            "method_calls": self.total_method_calls(),
            "external_method_calls": self.total_external_calls(),
            "index_lookups": self.index_lookups,
            "extension_scans": self.extension_scans,
            "method_cost_units": self.method_cost_units,
        }

    def reset(self) -> None:
        self.property_reads = 0
        self.property_writes = 0
        self.objects_created = 0
        self.objects_deleted = 0
        self.method_calls.clear()
        self.external_method_calls.clear()
        self.class_method_calls.clear()
        self.index_lookups = 0
        self.extension_scans = 0
        self.method_cost_units = 0.0

    def diff(self, earlier: Mapping[str, float]) -> dict[str, float]:
        """Difference between the current snapshot and an *earlier* one."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}
