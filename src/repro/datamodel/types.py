"""VML-style type system.

The VODAK Modelling Language (VML) used in the paper provides primitive
built-in data types (STRING, INT, REAL, BOOL and typed object identifiers)
and the type constructors TUPLE, SET, ARRAY and DICTIONARY.  This module
implements those types as lightweight immutable descriptors together with
value validation and a small amount of type algebra (compatibility checks)
used by the VQL analyzer and the algebra translator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import TypeMismatchError

__all__ = [
    "VMLType",
    "PrimitiveType",
    "ObjectType",
    "SetType",
    "ArrayType",
    "TupleType",
    "DictionaryType",
    "AnyType",
    "STRING",
    "INT",
    "REAL",
    "BOOL",
    "OID_TYPE",
    "ANY",
    "set_of",
    "array_of",
    "tuple_of",
    "dictionary_of",
    "object_type",
    "infer_type",
]


class VMLType:
    """Abstract base class of all VML type descriptors.

    Type descriptors are immutable and hashable so they can be used as
    dictionary keys (e.g. in operator signature tables).
    """

    def validate(self, value: Any) -> bool:
        """Return ``True`` when *value* conforms to this type."""
        raise NotImplementedError

    def check(self, value: Any, context: str = "value") -> None:
        """Raise :class:`TypeMismatchError` when *value* does not conform."""
        if not self.validate(value):
            raise TypeMismatchError(
                f"{context} {value!r} does not conform to type {self}"
            )

    def is_set(self) -> bool:
        return isinstance(self, SetType)

    def is_object(self) -> bool:
        return isinstance(self, ObjectType)

    def element_type(self) -> "VMLType":
        """For bulk types, the type of the contained elements."""
        raise TypeMismatchError(f"{self} is not a bulk type")

    def compatible_with(self, other: "VMLType") -> bool:
        """Structural compatibility used by the analyzer.

        ``AnyType`` is compatible with everything; object types are
        compatible when either side does not constrain the class or the
        class names match.
        """
        if isinstance(other, AnyType) or isinstance(self, AnyType):
            return True
        return self == other


@dataclass(frozen=True)
class AnyType(VMLType):
    """The unconstrained type, used for untyped intermediate results."""

    def validate(self, value: Any) -> bool:
        return True

    def __str__(self) -> str:
        return "ANY"


@dataclass(frozen=True)
class PrimitiveType(VMLType):
    """One of the primitive built-in data types of VML."""

    name: str

    _PYTHON_TYPES = {
        "STRING": (str,),
        "INT": (int,),
        "REAL": (int, float),
        "BOOL": (bool,),
    }

    def validate(self, value: Any) -> bool:
        expected = self._PYTHON_TYPES.get(self.name)
        if expected is None:
            return True
        if self.name == "INT" and isinstance(value, bool):
            return False
        return isinstance(value, expected)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ObjectType(VMLType):
    """A typed object identifier.

    ``class_name`` of ``None`` denotes an OID of an arbitrary class, which is
    how the paper's ``Set_object`` example stores heterogeneous sets.
    """

    class_name: str | None = None

    def validate(self, value: Any) -> bool:
        # Avoid a circular import: OIDs are duck-typed by attribute presence.
        if value is None:
            return True
        has_shape = hasattr(value, "class_name") and hasattr(value, "serial")
        if not has_shape:
            return False
        if self.class_name is None:
            return True
        return True  # subclass conformance is checked by the schema layer

    def __str__(self) -> str:
        return self.class_name if self.class_name else "OID"


@dataclass(frozen=True)
class SetType(VMLType):
    """``{T}`` — an unordered collection without duplicates."""

    element: VMLType

    def validate(self, value: Any) -> bool:
        if not isinstance(value, (set, frozenset, list, tuple)):
            return False
        return all(self.element.validate(v) for v in value)

    def element_type(self) -> VMLType:
        return self.element

    def __str__(self) -> str:
        return "{" + str(self.element) + "}"


@dataclass(frozen=True)
class ArrayType(VMLType):
    """``ARRAY[T]`` — an ordered collection."""

    element: VMLType

    def validate(self, value: Any) -> bool:
        if not isinstance(value, (list, tuple)):
            return False
        return all(self.element.validate(v) for v in value)

    def element_type(self) -> VMLType:
        return self.element

    def __str__(self) -> str:
        return f"ARRAY[{self.element}]"


@dataclass(frozen=True)
class TupleType(VMLType):
    """``TUPLE[a1: T1, ..., an: Tn]`` — a record with named components.

    Component order is not significant (the paper assumes unordered tuple
    components), therefore equality and hashing are defined on the sorted
    component mapping.
    """

    components: tuple[tuple[str, VMLType], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.components, key=lambda item: item[0]))
        object.__setattr__(self, "components", ordered)

    @property
    def component_map(self) -> dict[str, VMLType]:
        return dict(self.components)

    def validate(self, value: Any) -> bool:
        if not isinstance(value, Mapping):
            return False
        comp = self.component_map
        if set(value.keys()) != set(comp.keys()):
            return False
        return all(comp[key].validate(val) for key, val in value.items())

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {typ}" for name, typ in self.components)
        return f"TUPLE[{inner}]"


@dataclass(frozen=True)
class DictionaryType(VMLType):
    """``DICTIONARY[K, V]`` — a finite map."""

    key: VMLType
    value: VMLType

    def validate(self, value: Any) -> bool:
        if not isinstance(value, Mapping):
            return False
        return all(
            self.key.validate(k) and self.value.validate(v)
            for k, v in value.items()
        )

    def __str__(self) -> str:
        return f"DICTIONARY[{self.key}, {self.value}]"


# Canonical singletons for the primitive types.
STRING = PrimitiveType("STRING")
INT = PrimitiveType("INT")
REAL = PrimitiveType("REAL")
BOOL = PrimitiveType("BOOL")
OID_TYPE = ObjectType(None)
ANY = AnyType()


def set_of(element: VMLType) -> SetType:
    """Convenience constructor for ``{element}``."""
    return SetType(element)


def array_of(element: VMLType) -> ArrayType:
    """Convenience constructor for ``ARRAY[element]``."""
    return ArrayType(element)


def tuple_of(**components: VMLType) -> TupleType:
    """Convenience constructor for ``TUPLE[name: type, ...]``."""
    return TupleType(tuple(components.items()))


def dictionary_of(key: VMLType, value: VMLType) -> DictionaryType:
    """Convenience constructor for ``DICTIONARY[key, value]``."""
    return DictionaryType(key, value)


def object_type(class_name: str) -> ObjectType:
    """Convenience constructor for a typed object identifier."""
    return ObjectType(class_name)


def infer_type(value: Any) -> VMLType:
    """Infer the most specific VML type of a Python value.

    Used by the expression evaluator for literals and intermediate results.
    Unknown Python values map to :data:`ANY`.
    """
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return REAL
    if isinstance(value, str):
        return STRING
    if hasattr(value, "class_name") and hasattr(value, "serial"):
        return ObjectType(value.class_name)
    if isinstance(value, (set, frozenset)):
        inner = {infer_type(v) for v in value}
        if len(inner) == 1:
            return SetType(inner.pop())
        return SetType(ANY)
    if isinstance(value, (list, tuple)):
        inner = {infer_type(v) for v in value}
        if len(inner) == 1:
            return ArrayType(inner.pop())
        return ArrayType(ANY)
    if isinstance(value, Mapping):
        return TupleType(tuple((k, infer_type(v)) for k, v in value.items()))
    return ANY
