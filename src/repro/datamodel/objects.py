"""Stored objects.

A :class:`DatabaseObject` is the in-memory representation of one instance:
its OID plus a mapping from property names to values.  Values follow the VML
value model — primitives, OIDs, sets/lists of either, and nested dicts for
TUPLE values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.datamodel.oid import OID
from repro.errors import SchemaError


@dataclass
class DatabaseObject:
    """One stored instance.

    Property values are held in a plain dictionary; the database layer is
    responsible for validating them against the schema when the object is
    created or updated.
    """

    oid: OID
    values: dict[str, Any] = field(default_factory=dict)
    #: commit timestamp of the version currently held in ``values``.
    #: Writers flip this *before* mutating values (after appending the
    #: pre-image to the database's version chain), so a reader that sees
    #: the same ``begin_ts`` before and after reading a value knows the
    #: value belongs to that version (seqlock discipline).
    begin_ts: int = 0
    #: commit timestamp of the creating transaction; readers pinned at an
    #: earlier snapshot do not see the object at all.
    created_ts: int = 0

    @property
    def class_name(self) -> str:
        return self.oid.class_name

    def get(self, prop: str) -> Any:
        """Return the value of *prop*, raising when the property is absent."""
        try:
            return self.values[prop]
        except KeyError:
            raise SchemaError(
                f"object {self.oid} has no value for property {prop!r}"
            ) from None

    def get_or_none(self, prop: str) -> Any:
        return self.values.get(prop)

    def set(self, prop: str, value: Any) -> None:
        self.values[prop] = value

    def has(self, prop: str) -> bool:
        return prop in self.values

    def items(self) -> Iterator[tuple[str, Any]]:
        return iter(self.values.items())

    def snapshot(self) -> Mapping[str, Any]:
        """An immutable copy of the property values (for safe external use)."""
        return dict(self.values)

    def __str__(self) -> str:
        return f"<{self.oid}>"

    def __repr__(self) -> str:
        return f"DatabaseObject({self.oid!r}, {self.values!r})"
