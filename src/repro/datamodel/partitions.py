"""Hash-partitioned class extensions.

The paper's premise is that method-bearing queries are dominated by
expensive method evaluation, which makes independent partitions of a class
extension the natural unit of intra-query parallelism: each partition can
evaluate methods concurrently and the results are merged deterministically.

A :class:`PartitionedExtension` keeps the OIDs of one class spread over a
fixed number of partitions.  Assignment is by the OID's serial number modulo
the partition count — a deterministic hash, so partition contents (and
therefore the ordered merge of a parallel scan) are reproducible across
processes regardless of ``PYTHONHASHSEED``.  Within a partition OIDs stay in
creation order.

Partitions are maintained eagerly by the database on every create and
delete; property writes do not move objects (the partitioning key is the
OID, not a value) but are counted in the per-partition statistics, which the
cost model and benchmarks can consult for skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.oid import OID

__all__ = ["DEFAULT_PARTITIONS", "PartitionStatistics", "PartitionedExtension",
           "ExtensionPartitions"]

#: default number of partitions per class extension
DEFAULT_PARTITIONS = 8


@dataclass
class PartitionStatistics:
    """Mutable per-partition counters."""

    size: int = 0
    inserts: int = 0
    removes: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"size": self.size, "inserts": self.inserts,
                "removes": self.removes, "writes": self.writes}


class PartitionedExtension:
    """The OIDs of one class, hash-partitioned by serial number."""

    __slots__ = ("class_name", "n_partitions", "_partitions", "_statistics")

    def __init__(self, class_name: str, n_partitions: int = DEFAULT_PARTITIONS):
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        self.class_name = class_name
        self.n_partitions = n_partitions
        self._partitions: list[list[OID]] = [[] for _ in range(n_partitions)]
        self._statistics = [PartitionStatistics() for _ in range(n_partitions)]

    def partition_of(self, oid: OID) -> int:
        """Deterministic partition assignment (serial modulo count)."""
        return oid.serial % self.n_partitions

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def add(self, oid: OID) -> int:
        index = self.partition_of(oid)
        self._partitions[index].append(oid)
        stats = self._statistics[index]
        stats.size += 1
        stats.inserts += 1
        return index

    def remove(self, oid: OID) -> int:
        index = self.partition_of(oid)
        self._partitions[index].remove(oid)
        stats = self._statistics[index]
        stats.size -= 1
        stats.removes += 1
        return index

    def position_of(self, oid: OID) -> int:
        """The OID's position within its partition (for positional undo)."""
        return self._partitions[self.partition_of(oid)].index(oid)

    def restore(self, oid: OID, position: int) -> None:
        """Reinsert *oid* at *position*, cancelling an earlier :meth:`remove`.

        Used by the commit-scope undo path: restoring at the recorded
        position keeps creation order (and therefore parallel-scan merge
        order) identical to the pre-scope state.
        """
        index = self.partition_of(oid)
        self._partitions[index].insert(position, oid)
        stats = self._statistics[index]
        stats.size += 1
        stats.removes -= 1

    def record_write(self, oid: OID) -> None:
        self._statistics[self.partition_of(oid)].writes += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def partition(self, index: int) -> list[OID]:
        """A copy of one partition's OIDs (creation order)."""
        return list(self._partitions[index])

    def partitions(self) -> list[list[OID]]:
        """Copies of all partitions, in partition order."""
        return [list(partition) for partition in self._partitions]

    def statistics(self) -> list[PartitionStatistics]:
        return list(self._statistics)

    def sizes(self) -> list[int]:
        return [len(partition) for partition in self._partitions]

    def total_size(self) -> int:
        return sum(len(partition) for partition in self._partitions)

    def __len__(self) -> int:
        return self.total_size()

    def __str__(self) -> str:
        return (f"PartitionedExtension({self.class_name!r}, "
                f"{self.n_partitions} partitions, {self.total_size()} OIDs)")


class ExtensionPartitions:
    """All partitioned extensions of one database, keyed by class name."""

    __slots__ = ("n_partitions", "_by_class")

    def __init__(self, n_partitions: int = DEFAULT_PARTITIONS):
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        self.n_partitions = n_partitions
        self._by_class: dict[str, PartitionedExtension] = {}

    def for_class(self, class_name: str) -> PartitionedExtension:
        extension = self._by_class.get(class_name)
        if extension is None:
            extension = PartitionedExtension(class_name, self.n_partitions)
            self._by_class[class_name] = extension
        return extension

    def add(self, class_name: str, oid: OID) -> None:
        self.for_class(class_name).add(oid)

    def remove(self, class_name: str, oid: OID) -> None:
        self.for_class(class_name).remove(oid)

    def position_of(self, class_name: str, oid: OID) -> int:
        return self.for_class(class_name).position_of(oid)

    def restore(self, class_name: str, oid: OID, position: int) -> None:
        self.for_class(class_name).restore(oid, position)

    def record_write(self, class_name: str, oid: OID) -> None:
        self.for_class(class_name).record_write(oid)
