"""MVCC building blocks: the commit clock and per-thread snapshot pins.

The database used to expose a single ``VersionClock`` whose counters only
told plan caches *that* something changed.  Snapshot isolation needs more:
a total order over commits and a way for a reader to say "I observe the
state as of timestamp S" without holding any lock while the writer works.

Three pieces live here:

``CommitClock``
    A monotonic commit timestamp.  Writers allocate ``published + 1``
    *before* touching any structure and publish it only after every
    mutation (and index fix-up) of the commit landed.  Readers pinned at
    ``published`` therefore never observe a half-applied commit: anything
    the in-flight writer touches carries a timestamp greater than their
    snapshot.  ``begun`` is a monotonically increasing generation counter
    used by optimistic readers to validate that no writer started during
    their copy (immune to the A-B-A problem that ``allocated`` alone would
    have after an aborted scope resets it).

``SnapshotPin`` / ``current_pin`` / ``pinned``
    A thread-local marker carrying ``(database, ts)``.  Every read helper
    on :class:`~repro.datamodel.database.Database` (extensions, property
    reads, index lookups, method-invocation existence checks) consults the
    pin and, when present, answers as of ``ts`` by falling back to the
    per-object version chains the writers maintain.  Parallel morsel
    workers re-establish the spawning thread's pin so a parallel scan
    observes the same snapshot as the coordinating statement.

``SnapshotIndexView``
    A read-through wrapper over a hash/sorted index that answers lookups
    as of a snapshot: it unions the live index result with objects mutated
    after the snapshot (from the database's mutation log) and keeps only
    candidates whose property value *at the snapshot* matches the probe.

Nothing here takes the service's read/write gate — that is the point.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.errors import ObjectNotFoundError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datamodel.database import Database

__all__ = [
    "CommitClock",
    "SnapshotPin",
    "SnapshotIndexView",
    "current_pin",
    "pinned",
]


class CommitClock:
    """Monotonic commit timestamps with publish-after-apply semantics."""

    __slots__ = ("published", "allocated", "begun")

    def __init__(self) -> None:
        #: highest timestamp whose commit is fully applied and visible
        self.published = 0
        #: highest timestamp handed to a commit scope (``>= published``
        #: exactly while a writer is in flight)
        self.allocated = 0
        #: generation counter: bumped every time a scope begins; never
        #: decreases, so optimistic readers can detect writer activity
        #: across their copy even if an abort reset ``allocated``
        self.begun = 0

    def begin(self) -> int:
        """Allocate the next commit timestamp (write gate held)."""
        ts = self.published + 1
        self.allocated = ts
        self.begun += 1
        return ts

    def publish(self, ts: int) -> None:
        """Make *ts* visible to new snapshots (every mutation applied)."""
        self.published = ts

    def reset_after_abort(self) -> None:
        """An aborted scope fully undid itself: nothing newer than
        ``published`` exists any more, so fast-path reads are safe again."""
        self.allocated = self.published

    def restore(self, ts: int) -> None:
        """Pin the clock to *ts* (crash recovery, no writer in flight).

        A restored checkpoint re-publishes its snapshot timestamp, and
        WAL replay re-stamps each replayed commit with its original
        timestamp so the recovered clock ends exactly where the crashed
        process's did.  The clock never moves backwards.
        """
        if ts > self.published:
            self.published = ts
        if self.published > self.allocated:
            self.allocated = self.published


class SnapshotPin:
    """A thread's declaration that reads observe *database* as of *ts*."""

    __slots__ = ("database", "ts")

    def __init__(self, database: "Database", ts: int) -> None:
        self.database = database
        self.ts = ts

    @contextmanager
    def activate(self) -> Iterator["SnapshotPin"]:
        """Re-establish this pin on the calling thread (morsel workers)."""
        previous = getattr(_LOCAL, "pin", None)
        _LOCAL.pin = self
        try:
            yield self
        finally:
            _LOCAL.pin = previous

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotPin(ts={self.ts})"


_LOCAL = threading.local()


def current_pin() -> Optional[SnapshotPin]:
    """The calling thread's active snapshot pin, if any."""
    return getattr(_LOCAL, "pin", None)


@contextmanager
def pinned(database: "Database", ts: int) -> Iterator[SnapshotPin]:
    """Pin the calling thread to snapshot *ts* of *database*."""
    pin = SnapshotPin(database, ts)
    previous = getattr(_LOCAL, "pin", None)
    _LOCAL.pin = pin
    try:
        yield pin
    finally:
        _LOCAL.pin = previous


class SnapshotIndexView:
    """Answer index probes as of a snapshot.

    The live index reflects the current state; objects written after the
    snapshot may have been inserted, moved, or removed under keys that do
    not match their value at the snapshot.  The view therefore:

    1. reads the live index *first* (any concurrent writer that moves an
       entry afterwards shows up in the mutation log read next),
    2. adds every object the mutation log says was touched after the
       snapshot (phantom candidates from aborted scopes are harmless), and
    3. keeps exactly the candidates whose property value *at the snapshot*
       matches the probe, dropping objects not visible at the snapshot.

    When the clock proves no commit newer than the snapshot exists, the
    live answer is returned untouched (the common, contention-free case).
    """

    __slots__ = ("_database", "_index", "_ts",
                 "kind", "class_name", "property_name")

    def __init__(self, database: "Database", index: Any, ts: int) -> None:
        self._database = database
        self._index = index
        self._ts = ts
        self.kind = index.kind
        self.class_name = index.class_name
        self.property_name = index.property_name

    # -- probes ---------------------------------------------------------
    def lookup(self, key: Any) -> set:
        clock = self._database.clock
        generation = clock.begun
        raw = self._index.lookup(key)
        if clock.allocated <= self._ts and clock.begun == generation:
            return raw
        normalize = getattr(self._index, "_normalize", None)
        target = normalize(key) if normalize is not None else key

        def matches(value: Any) -> bool:
            if value is None:
                return False
            probe = normalize(value) if normalize is not None else value
            try:
                return probe == target
            except TypeError:  # pragma: no cover - exotic key types
                return False

        return self._filtered(raw, matches)

    def range(self, low: Any = None, high: Any = None, *,
              include_low: bool = True, include_high: bool = True) -> set:
        clock = self._database.clock
        generation = clock.begun
        raw = self._index.range(low, high, include_low=include_low,
                                include_high=include_high)
        if clock.allocated <= self._ts and clock.begun == generation:
            return raw

        def matches(value: Any) -> bool:
            if value is None:
                return False
            try:
                if low is not None:
                    if include_low:
                        if value < low:
                            return False
                    elif value <= low:
                        return False
                if high is not None:
                    if include_high:
                        if value > high:
                            return False
                    elif value >= high:
                        return False
            except TypeError:
                return False
            return True

        return self._filtered(raw, matches)

    # -- internals ------------------------------------------------------
    def _filtered(self, raw: set, matches) -> set:
        database = self._database
        ts = self._ts
        prop = self.property_name
        candidates = set(raw)
        candidates.update(
            database.mutated_candidates(self.class_name, ts))
        visible = set()
        for oid in candidates:
            try:
                value = database.value_at(oid, prop, ts)
            except ObjectNotFoundError:
                continue
            if matches(value):
                visible.add(oid)
        return visible
