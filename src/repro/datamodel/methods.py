"""Method implementation helpers.

A :class:`~repro.datamodel.schema.MethodDef` carries its implementation as a
callable ``(ctx, receiver, *args)``.  This module provides factories for the
implementation patterns the paper discusses:

* **path methods** — internal methods that follow a chain of reference
  properties (``Paragraph.document() == section.document``);
* **inverse collection methods** — internal methods that collect the members
  of a set-valued property reachable from the receiver
  (``Document.paragraphs()``);
* **index lookup methods** — external class-level methods backed by a
  user-defined index (``Document→select_by_index``);
* **text retrieval / containment methods** — external methods backed by the
  IR engine (``Paragraph→retrieve_by_string``, ``Paragraph.contains_string``);
* **derived comparison methods** — internal methods defined in terms of other
  methods (``Paragraph.sameDocument``).

Keeping these as factories means the example schemas read almost exactly like
the VML class definitions printed in the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.datamodel.oid import OID
from repro.errors import MethodInvocationError

__all__ = [
    "path_method",
    "collect_over_property",
    "index_lookup_method",
    "index_range_method",
    "text_retrieve_method",
    "text_contains_method",
    "same_path_target_method",
    "python_method",
]

MethodImpl = Callable[..., Any]


def path_method(*path: str) -> MethodImpl:
    """Internal method following a property path from the receiver.

    ``path_method("section", "document")`` implements the paper's
    ``Paragraph.document(){ RETURN section.document; }``.  A ``None`` value
    anywhere along the path yields ``None``.
    """

    def implementation(ctx, receiver: OID) -> Any:
        current: Any = receiver
        for step in path:
            if current is None:
                return None
            current = ctx.value(current, step)
        return current

    implementation.__name__ = "path_" + "_".join(path)
    return implementation


def collect_over_property(via: str, collect: str) -> MethodImpl:
    """Internal method that flattens a two-step set-valued path.

    ``collect_over_property("sections", "paragraphs")`` implements
    ``Document.paragraphs()``: the union of the ``paragraphs`` sets of all
    the receiver's ``sections``.
    """

    def implementation(ctx, receiver: OID) -> set:
        result: set = set()
        intermediate = ctx.value(receiver, via)
        if intermediate is None:
            return result
        if isinstance(intermediate, OID):
            intermediate = [intermediate]
        for member in intermediate:
            collected = ctx.value(member, collect)
            if collected is None:
                continue
            if isinstance(collected, (set, frozenset, list, tuple)):
                result.update(collected)
            else:
                result.add(collected)
        return result

    implementation.__name__ = f"collect_{collect}_via_{via}"
    return implementation


def index_lookup_method(class_name: str, property_name: str) -> MethodImpl:
    """External class-level method performing an exact index lookup.

    Implements ``Document→select_by_index(t)``: return all instances whose
    indexed property equals the argument.
    """

    def implementation(ctx, receiver: str, key: Any) -> set[OID]:
        index = ctx.index(class_name, property_name)
        if index is None:
            raise MethodInvocationError(
                f"select_by_index requires an index on "
                f"{class_name}.{property_name}")
        return index.lookup(key)

    implementation.__name__ = f"index_lookup_{class_name}_{property_name}"
    return implementation


def index_range_method(class_name: str, property_name: str,
                       include_low: bool = False,
                       include_high: bool = True) -> MethodImpl:
    """External class-level method performing a range lookup on a sorted
    index, used for precomputed predicates such as large-paragraph sets."""

    def implementation(ctx, receiver: str, low: Any = None, high: Any = None) -> set[OID]:
        index = ctx.index(class_name, property_name)
        if index is None or not hasattr(index, "range"):
            raise MethodInvocationError(
                f"range lookup requires a sorted index on "
                f"{class_name}.{property_name}")
        return index.range(low, high, include_low=include_low,
                           include_high=include_high)

    implementation.__name__ = f"index_range_{class_name}_{property_name}"
    return implementation


def text_retrieve_method(class_name: str, property_name: str) -> MethodImpl:
    """External class-level method: bulk text retrieval over an IR index.

    Implements ``Paragraph→retrieve_by_string(s)``.
    """

    def implementation(ctx, receiver: str, needle: str) -> set[OID]:
        engine = ctx.text_index(class_name, property_name)
        if engine is None:
            raise MethodInvocationError(
                f"retrieve_by_string requires a text index on "
                f"{class_name}.{property_name}")
        return engine.retrieve(needle)

    implementation.__name__ = f"text_retrieve_{class_name}_{property_name}"
    return implementation


def text_contains_method(class_name: str, property_name: str) -> MethodImpl:
    """External instance method: per-object substring test via the IR engine.

    Implements ``Paragraph.contains_string(s)``.
    """

    def implementation(ctx, receiver: OID, needle: str) -> bool:
        engine = ctx.text_index(class_name, property_name)
        if engine is None:
            # Fall back to reading the property content directly: still an
            # external scan, only without the shared engine's accounting.
            content = ctx.value(receiver, property_name)
            return needle.lower() in str(content).lower()
        return engine.scan_contains(receiver, needle)

    implementation.__name__ = f"text_contains_{class_name}_{property_name}"
    return implementation


def same_path_target_method(method_name: str) -> MethodImpl:
    """Internal parametrized method comparing a derived value of the receiver
    with the same derived value of the parameter object.

    ``same_path_target_method("document")`` implements the paper's
    ``Paragraph.sameDocument(p){ RETURN SELF→document() == p→document(); }``.
    """

    def implementation(ctx, receiver: OID, other: OID) -> bool:
        mine = ctx.invoke(receiver, method_name)
        theirs = ctx.invoke(other, method_name)
        return mine == theirs

    implementation.__name__ = f"same_{method_name}"
    return implementation


def python_method(function: Callable[..., Any],
                  name: str | None = None) -> MethodImpl:
    """Wrap an arbitrary Python callable ``(ctx, receiver, *args)``.

    Provided for application schemas that need behaviour not covered by the
    factories above (e.g. ``wordCount``)."""

    if name is not None:
        function.__name__ = name
    return function
