"""Object-oriented data model substrate (the stand-in for VODAK/VML).

Public surface:

* type system (:mod:`repro.datamodel.types`),
* schema definitions (:mod:`repro.datamodel.schema`),
* the database itself (:mod:`repro.datamodel.database`),
* method-implementation factories (:mod:`repro.datamodel.methods`),
* indexes and the external IR engine (:mod:`repro.datamodel.indexes`,
  :mod:`repro.datamodel.ir`).
"""

from repro.datamodel.database import Database, InvocationContext
from repro.datamodel.indexes import HashIndex, IndexRegistry, SortedIndex
from repro.datamodel.ir import InvertedTextIndex, tokenize
from repro.datamodel.objects import DatabaseObject
from repro.datamodel.oid import OID, OIDAllocator
from repro.datamodel.partitions import (
    DEFAULT_PARTITIONS,
    ExtensionPartitions,
    PartitionedExtension,
    PartitionStatistics,
)
from repro.datamodel.schema import (
    ClassDef,
    InverseLink,
    MethodDef,
    MethodKind,
    PropertyDef,
    Schema,
)
from repro.datamodel.statistics import DatabaseStatistics
from repro.datamodel.types import (
    ANY,
    BOOL,
    INT,
    OID_TYPE,
    REAL,
    STRING,
    ArrayType,
    DictionaryType,
    ObjectType,
    PrimitiveType,
    SetType,
    TupleType,
    VMLType,
    array_of,
    dictionary_of,
    infer_type,
    object_type,
    set_of,
    tuple_of,
)

__all__ = [
    "Database",
    "InvocationContext",
    "HashIndex",
    "SortedIndex",
    "IndexRegistry",
    "InvertedTextIndex",
    "tokenize",
    "DatabaseObject",
    "OID",
    "OIDAllocator",
    "DEFAULT_PARTITIONS",
    "ExtensionPartitions",
    "PartitionedExtension",
    "PartitionStatistics",
    "ClassDef",
    "InverseLink",
    "MethodDef",
    "MethodKind",
    "PropertyDef",
    "Schema",
    "DatabaseStatistics",
    "VMLType",
    "PrimitiveType",
    "ObjectType",
    "SetType",
    "ArrayType",
    "TupleType",
    "DictionaryType",
    "STRING",
    "INT",
    "REAL",
    "BOOL",
    "OID_TYPE",
    "ANY",
    "set_of",
    "array_of",
    "tuple_of",
    "dictionary_of",
    "object_type",
    "infer_type",
]
