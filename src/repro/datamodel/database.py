"""The in-memory object database.

:class:`Database` is the substrate standing in for VODAK: it stores objects,
maintains class extensions, dispatches methods (internal and external),
maintains user-defined indexes and text indexes, and counts the work it
performs so that query plans can be compared quantitatively.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

from repro.datamodel.indexes import HashIndex, IndexRegistry, SortedIndex
from repro.datamodel.ir import InvertedTextIndex
from repro.datamodel.objects import DatabaseObject
from repro.datamodel.oid import OID, OIDAllocator
from repro.datamodel.partitions import (
    DEFAULT_PARTITIONS,
    ExtensionPartitions,
    PartitionStatistics,
)
from repro.datamodel.schema import (
    ClassDef,
    MethodDef,
    MethodKind,
    PropertyDef,
    Schema,
)
from repro.datamodel.statistics import (
    ClassStatistics,
    DatabaseStatistics,
    StatisticsCatalog,
)
from repro.datamodel.versioning import (
    CommitClock,
    SnapshotIndexView,
    current_pin,
    pinned,
)
from repro.errors import (
    IndexError_,
    MethodInvocationError,
    ObjectNotFoundError,
    SchemaError,
    TypeMismatchError,
)

__all__ = ["Database", "InvocationContext", "VersionClock"]

#: commits between global prunes of version chains / the mutation log
_PRUNE_INTERVAL = 64
#: mutation-log length that forces a prune regardless of the interval
_PRUNE_LOG_LIMIT = 4096


@dataclass
class VersionClock:
    """Monotonic change counters the plan cache validates cached plans against.

    * ``schema`` — class/property/method definitions (static schemas never
      bump it; callers that mutate a schema in place must call
      :meth:`Database.bump_schema_version`);
    * ``index`` — user-defined index and text-index DDL (create/drop);
    * ``data`` — object creates and property writes.  Cached plans stay
      *correct* under data changes (all reads happen at execution time), so
      the cache treats this counter as a staleness signal for re-optimizing,
      not a strict invalidator;
    * ``stats`` — optimizer-statistics refreshes (the ``ANALYZE``
      statement).  New statistics change cost estimates and therefore plan
      choice, so the plan cache evicts on a mismatch exactly like it does
      for index DDL.
    """

    schema: int = 0
    index: int = 0
    data: int = 0
    stats: int = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (self.schema, self.index, self.data, self.stats)


class _CommitScope:
    """One in-flight commit: its timestamp plus an undo log.

    Mutations append inverse actions to ``undo``; if the scope body raises,
    the actions run in reverse and the timestamp is never published, so the
    failure is invisible both to concurrent snapshot readers and to any
    reader arriving afterwards.  Nested mutator calls on the owning thread
    join the scope (``depth``) instead of allocating a new timestamp — a
    multi-object statement or a transaction commit is one commit.

    When a durable storage adapter is attached, ``ops`` collects the
    scope's logical operations (creates/updates/deletes); the whole list
    becomes **one** write-ahead-log record when the scope publishes, so a
    multi-row batch costs one record and at most one fsync.  ``ops`` is
    None when nothing records (no adapter, or recovery replay).
    """

    __slots__ = ("ts", "owner", "depth", "undo", "ops")

    def __init__(self, ts: int, owner: int,
                 ops: Optional[list] = None) -> None:
        self.ts = ts
        self.owner = owner
        self.depth = 1
        self.undo: list = []
        self.ops = ops


class InvocationContext:
    """The view of the database handed to method implementations.

    It exposes exactly what a VML method body may use: property access on any
    object, invocation of other methods, class extensions, and the external
    engines (indexes, text indexes) registered with the database.
    """

    def __init__(self, database: "Database"):
        self.database = database

    def value(self, oid: OID, prop: str) -> Any:
        return self.database.value(oid, prop)

    def invoke(self, oid: OID, method: str, *args: Any) -> Any:
        return self.database.invoke(oid, method, *args)

    def invoke_class_method(self, class_name: str, method: str, *args: Any) -> Any:
        return self.database.invoke_class_method(class_name, method, *args)

    def extension(self, class_name: str) -> list[OID]:
        return self.database.extension(class_name)

    def index(self, class_name: str, prop: str) -> Optional[HashIndex | SortedIndex]:
        return self.database.indexes.get(class_name, prop)

    def text_index(self, class_name: str, prop: str) -> Optional[InvertedTextIndex]:
        return self.database.text_index(class_name, prop)


class Database:
    """In-memory OODB: objects + extensions + method dispatch + indexes."""

    def __init__(self, schema: Schema, name: str = "database",
                 n_partitions: int = DEFAULT_PARTITIONS):
        schema.validate()
        self.schema = schema
        self.name = name
        self._objects: dict[OID, DatabaseObject] = {}
        self._extensions: dict[str, list[OID]] = defaultdict(list)
        self.partitions = ExtensionPartitions(n_partitions)
        self._allocator = OIDAllocator()
        self.indexes = IndexRegistry()
        self._text_indexes: dict[tuple[str, str], InvertedTextIndex] = {}
        self.statistics = DatabaseStatistics()
        #: optimizer statistics (histograms, distinct counts, method
        #: latencies) collected by ANALYZE and read by the cost model
        self.stats_catalog = StatisticsCatalog()
        self.versions = VersionClock()
        self._context = InvocationContext(self)
        # ---- MVCC state (see repro.datamodel.versioning) -------------
        #: monotonic commit timestamps; readers pin ``clock.published``
        self.clock = CommitClock()
        #: per-object version chains: ``oid -> [(begin_ts, values), ...]``
        #: in append order; the entry with the largest ``begin_ts <= S``
        #: is the version a reader pinned at S observes when the live
        #: object is newer (or gone)
        self._history: dict[OID, list[tuple[int, dict[str, Any]]]] = {}
        #: deleted objects still visible to old snapshots:
        #: ``oid -> (created_ts, end_ts)``
        self._ends: dict[OID, tuple[int, int]] = {}
        #: extension entries removed by deletes, per class:
        #: ``class -> [(oid, created_ts, end_ts), ...]``
        self._removed: dict[str, list[tuple[OID, int, int]]] = {}
        #: mutation log ``(ts, class_name, oid)`` appended *before* each
        #: structural change; snapshot index views use it to find objects
        #: whose index entries moved after a snapshot.  Entries from
        #: aborted scopes stay behind as harmless phantoms (visibility
        #: filtering drops them) until pruned.
        self._mlog: list[tuple[int, str, OID]] = []
        #: the single in-flight commit scope (writers are serialized by
        #: the service's write gate; standalone mutations self-scope)
        self._scope: Optional[_CommitScope] = None
        #: refcounts of registered snapshot pins, for prune watermarks
        self._pin_counts: dict[int, int] = {}
        self._pin_lock = threading.Lock()
        self._commits_since_prune = 0
        #: the durability seam (see :mod:`repro.storage`): None means
        #: in-memory only; a durable adapter receives one ``log_commit``
        #: per published scope and one ``log_ddl`` per DDL/ANALYZE
        self.storage = None

    # ------------------------------------------------------------------
    # commit scopes (MVCC write side)
    # ------------------------------------------------------------------
    @contextmanager
    def commit_scope(self) -> Iterator[_CommitScope]:
        """Group mutations into one atomic, publish-after-apply commit.

        The scope allocates the next commit timestamp *before* any mutation
        runs; every versioned entry written inside carries that timestamp,
        which concurrent snapshot readers (pinned at ``clock.published``)
        treat as "not yet visible".  On success the timestamp is published
        in one step; on failure the undo log runs in reverse and the clock
        is reset, so nothing of the scope was ever observable.  Reentrant
        on the owning thread: nested mutator calls join the open scope.
        """
        scope = self._scope
        if scope is not None and scope.owner == threading.get_ident():
            scope.depth += 1
            try:
                yield scope
            finally:
                scope.depth -= 1
            return
        storage = self.storage
        scope = _CommitScope(
            self.clock.begin(), threading.get_ident(),
            ops=[] if storage is not None and storage.active else None)
        self._scope = scope
        try:
            yield scope
        except BaseException:
            self._abort_scope(scope)
            raise
        else:
            self._scope = None
            self.clock.publish(scope.ts)
            if scope.ops:
                # One logical WAL record per published commit; an aborted
                # scope never reaches this point, so its ops vanish with
                # the undo.  Appended *after* publish: the in-process
                # state is the source of truth, the log trails it by at
                # most the fsync policy's window.
                storage.log_commit(scope.ts, scope.ops)
            self._maybe_prune()

    def _abort_scope(self, scope: _CommitScope) -> None:
        try:
            for undo in reversed(scope.undo):
                undo()
        finally:
            self._scope = None
            self.clock.reset_after_abort()

    def in_commit_scope(self) -> bool:
        """True when the calling thread owns the open commit scope."""
        scope = self._scope
        return scope is not None and scope.owner == threading.get_ident()

    # ------------------------------------------------------------------
    # durable storage (see repro.storage)
    # ------------------------------------------------------------------
    def attach_storage(self, adapter) -> Any:
        """Attach a storage adapter; recovery runs here if it has state.

        Attaching is idempotent for the already-attached adapter and an
        error for a second distinct durable adapter (two write-ahead logs
        on one database cannot both be the truth).
        """
        if self.storage is adapter:
            return adapter
        if self.storage is not None and self.storage.durable:
            raise SchemaError(
                f"database {self.name!r} already has a durable storage "
                "adapter attached")
        self.storage = adapter
        adapter.attach(self)
        return adapter

    def _log_ddl(self, *op: Any) -> None:
        """Forward one DDL/ANALYZE operation to the storage adapter.

        DDL runs outside commit scopes (it mutates shared schema/index
        structures, not versioned objects), so each statement is its own
        WAL record.  Suppressed while recovery replays the log.
        """
        storage = self.storage
        if storage is not None and storage.active:
            storage.log_ddl(op)

    def close(self) -> None:
        """Release the database's storage adapter (idempotent).

        Flushes buffered WAL writes first, so a clean teardown never
        loses acknowledged commits; a database without an adapter has
        nothing to do.  The in-memory state stays usable afterwards, but
        mutations no longer persist.
        """
        storage, self.storage = self.storage, None
        if storage is not None:
            storage.flush()
            storage.close()

    # ------------------------------------------------------------------
    # snapshot pins (MVCC read side)
    # ------------------------------------------------------------------
    def acquire_snapshot(self, ts: Optional[int] = None) -> int:
        """Register a long-lived snapshot (streamed cursor, transaction).

        Registered snapshots hold back version-chain pruning; every
        :meth:`acquire_snapshot` needs a matching :meth:`release_snapshot`.
        """
        with self._pin_lock:
            if ts is None:
                ts = self.clock.published
            self._pin_counts[ts] = self._pin_counts.get(ts, 0) + 1
        return ts

    def release_snapshot(self, ts: int) -> None:
        with self._pin_lock:
            count = self._pin_counts.get(ts, 0) - 1
            if count <= 0:
                self._pin_counts.pop(ts, None)
            else:
                self._pin_counts[ts] = count

    @contextmanager
    def snapshot_scope(self, ts: Optional[int] = None) -> Iterator[int]:
        """Register a snapshot and pin the calling thread to it."""
        ts = self.acquire_snapshot(ts)
        try:
            with pinned(self, ts):
                yield ts
        finally:
            self.release_snapshot(ts)

    def pin_snapshot(self, ts: int):
        """Pin the calling thread to an already-registered snapshot."""
        return pinned(self, ts)

    def _pinned_ts(self) -> Optional[int]:
        pin = current_pin()
        if pin is None or pin.database is not self:
            return None
        return pin.ts

    def _oldest_pin(self) -> Optional[int]:
        with self._pin_lock:
            return min(self._pin_counts) if self._pin_counts else None

    def _maybe_prune(self) -> None:
        self._commits_since_prune += 1
        if (self._commits_since_prune < _PRUNE_INTERVAL
                and len(self._mlog) < _PRUNE_LOG_LIMIT):
            return
        self._prune()

    def prune_versions(self) -> None:
        """Prune version chains and tombstones up to the pin watermark.

        Called by the storage adapter after every checkpoint: the
        checkpoint's pinned snapshot is released by then, so everything
        older than the oldest *registered* snapshot (or the published
        clock when nothing is pinned) can go.  Also available to callers
        that want bounded memory under sustained pin pressure without
        waiting for the commit-count trigger.
        """
        self._prune()

    def _prune(self) -> None:
        self._commits_since_prune = 0
        watermark = self._oldest_pin()
        if watermark is None:
            watermark = self.clock.published
        # Rebind rather than mutate in place: concurrent readers may hold
        # references to the old structures and must keep seeing them whole.
        if self._mlog:
            self._mlog = [entry for entry in self._mlog
                          if entry[0] > watermark]
        if self._ends:
            self._ends = {oid: span for oid, span in self._ends.items()
                          if span[1] > watermark}
        if self._removed:
            removed: dict[str, list[tuple[OID, int, int]]] = {}
            for cls, entries in self._removed.items():
                kept = [entry for entry in entries if entry[2] > watermark]
                if kept:
                    removed[cls] = kept
            self._removed = removed
        if self._history:
            history: dict[OID, list[tuple[int, dict[str, Any]]]] = {}
            ends = self._ends
            for oid, chain in self._history.items():
                obj = self._objects.get(oid)
                if obj is None and oid not in ends:
                    continue  # deleted and no snapshot can still see it
                # Drop every entry superseded (by a later chain entry or by
                # the live object) at or below the watermark: no registered
                # snapshot can reach it any more.
                keep_from = 0
                for position in range(len(chain) - 1, -1, -1):
                    if chain[position][0] <= watermark:
                        keep_from = position
                        break
                kept = chain[keep_from:]
                if (obj is not None and len(kept) == 1
                        and obj.begin_ts <= watermark):
                    continue  # the live version already covers the range
                history[oid] = kept
            self._history = history

    # ------------------------------------------------------------------
    # snapshot reads (MVCC read side)
    # ------------------------------------------------------------------
    def visible_at(self, oid: OID, ts: int) -> bool:
        """Was *oid* a live object at snapshot *ts*?"""
        obj = self._objects.get(oid)
        if obj is not None and obj.created_ts <= ts:
            return True
        span = self._ends.get(oid)
        return span is not None and span[0] <= ts < span[1]

    def value_at(self, oid: OID, prop: str, ts: int) -> Any:
        """Read ``oid.prop`` as of snapshot *ts*.

        Fast path: the live version is old enough and its ``begin_ts`` is
        unchanged across the value read (seqlock — writers append the
        pre-image to the chain *before* flipping ``begin_ts``, so an
        unchanged stamp proves the value belongs to that version).
        """
        obj = self._objects.get(oid)
        if obj is not None:
            begin = obj.begin_ts
            if begin <= ts:
                value = obj.values.get(prop)
                if obj.begin_ts == begin:
                    return value
            # Either the live version is newer than the snapshot or a
            # writer flipped the stamp mid-read; in both cases the chain
            # already holds the version this snapshot needs.
        version = self._chain_version_at(oid, ts)
        if version is None:
            raise ObjectNotFoundError(
                f"no object with OID {oid} at snapshot {ts}")
        return version.get(prop)

    def _chain_version_at(self, oid: OID,
                          ts: int) -> Optional[dict[str, Any]]:
        chain = self._history.get(oid)
        if chain is None:
            return None
        # Atomic copy under the GIL; writers only ever append.  Scan from
        # the end: the latest entry with ``begin_ts <= ts`` supersedes any
        # earlier one carrying the same stamp (mid-scope intermediates).
        for begin, values in reversed(list(chain)):
            if begin <= ts:
                return values
        return None

    def last_write_ts(self, oid: OID) -> Optional[int]:
        """Commit timestamp of the last write to *oid* (None if unknown,
        e.g. the object never existed or its chain was pruned away)."""
        obj = self._objects.get(oid)
        if obj is not None:
            return obj.begin_ts
        span = self._ends.get(oid)
        if span is not None:
            return span[1]
        return None

    def mutated_candidates(self, class_name: str, ts: int) -> list[OID]:
        """OIDs in *class_name*'s subtree touched by commits after *ts*.

        Read from the tail of the mutation log; used by snapshot index
        views to recover entries the live index no longer holds under
        their snapshot-time key.  May contain phantoms from aborted
        scopes — callers re-check visibility/values at the snapshot.
        """
        log = self._mlog
        result: list[OID] = []
        subtree: Optional[set[str]] = None
        for position in range(len(log) - 1, -1, -1):
            entry_ts, cls, oid = log[position]
            if entry_ts <= ts:
                break
            if subtree is None:
                subtree = {class_name}
                subtree.update(
                    other for other in self.schema.classes
                    if other != class_name
                    and self._inherits_from(other, class_name))
            if cls in subtree:
                result.append(oid)
        return result

    def index_view(self, index):
        """Wrap *index* for the calling thread's snapshot pin (the raw
        index when unpinned — the common, gate-free current-state read)."""
        ts = self._pinned_ts()
        if ts is None:
            return index
        return SnapshotIndexView(self, index, ts)

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------
    def create(self, class_name: str, **values: Any) -> OID:
        """Create an instance of *class_name* with the given property values.

        Values are validated against the declared property types; reference
        properties accept OIDs or sets of OIDs.  Indexes and text indexes on
        the class are maintained eagerly.
        """
        class_def = self.schema.get_class(class_name)
        unknown = [prop for prop in values if not self.schema.has_property(class_name, prop)]
        if unknown:
            raise SchemaError(
                f"class {class_name!r} has no propert{'y' if len(unknown) == 1 else 'ies'} "
                f"{', '.join(repr(p) for p in unknown)}")
        for prop_name, value in values.items():
            prop_def = self.schema.resolve_property(class_name, prop_name)
            if value is not None and not prop_def.vml_type.validate(value):
                raise TypeMismatchError(
                    f"value {value!r} for {class_name}.{prop_name} does not "
                    f"conform to {prop_def.vml_type}")
        with self.commit_scope() as scope:
            ts = scope.ts
            oid = self._allocator.allocate(class_name)
            if scope.ops is not None:
                scope.ops.append(("create", class_name, oid.serial,
                                  dict(values)))
            self._mlog.append((ts, class_name, oid))
            obj = DatabaseObject(oid=oid, values=dict(values),
                                 begin_ts=ts, created_ts=ts)
            self._objects[oid] = obj
            self._extensions[class_name].append(oid)
            self.partitions.add(class_name, oid)
            scope.undo.append(lambda: self._undo_create(class_name, oid))
            self.statistics.record_object_created()
            self.versions.data += 1
            scope.undo.append(lambda: self._unsettle_created(1))
            self._note_stats_mutation(class_name)
            self._index_new_object(class_name, oid, values)
        del class_def  # looked up only for existence checking
        return oid

    def _undo_create(self, class_name: str, oid: OID) -> None:
        obj = self._objects.pop(oid, None)
        if obj is None:
            return
        self._unindex_tolerant(class_name, oid, obj.values)
        extension = self._extensions.get(class_name)
        if extension is not None:
            try:
                extension.remove(oid)
            except ValueError:  # pragma: no cover - defensive
                pass
        try:
            self.partitions.remove(class_name, oid)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._allocator.release_last(class_name, oid.serial)

    def _unsettle_created(self, count: int) -> None:
        """Undo the counter settle of created objects (aborted scope)."""
        self.statistics.objects_created -= count
        self.versions.data -= count

    def _unindex_tolerant(self, class_name: str, oid: OID,
                          values: dict[str, Any]) -> None:
        """Remove *oid* from all covering indexes, tolerating entries that
        were never inserted (undo of a partially indexed object)."""
        for prop_name, value in values.items():
            if value is None:
                continue
            for owner in self._class_and_ancestors(class_name):
                index = self.indexes.get(owner, prop_name)
                if index is not None:
                    try:
                        index.remove(value, oid)
                    except IndexError_:
                        pass
                engine = self._text_indexes.get((owner, prop_name))
                if engine is not None:
                    engine.remove(oid)

    def _index_new_object(self, class_name: str, oid: OID,
                          values: dict[str, Any]) -> None:
        # Indexes created on a class cover the deep extension (subclasses
        # included), so maintenance must notify the index of every ancestor
        # class as well — otherwise instances of subclasses created after the
        # index would silently be missing from it.  None values are not
        # indexed: the evaluator treats None as matching no comparison, and
        # None keys cannot be ordered by a sorted index.
        for prop_name, value in values.items():
            if value is None:
                continue
            for owner in self._class_and_ancestors(class_name):
                self.indexes.notify_insert(owner, prop_name, value, oid)
                engine = self._text_indexes.get((owner, prop_name))
                if engine is not None:
                    engine.index_text(oid, str(value))

    def create_many(self, class_name: str,
                    rows: Iterable[dict[str, Any]]) -> list[OID]:
        """Bulk create: one maintenance pass for a whole batch of objects.

        Semantically equivalent to calling :meth:`create` per row, but the
        schema lookups, type validators, ancestor chain and index/text-index
        targets are resolved once for the batch instead of once per object —
        this is the fast path behind the statement API's ``executemany``
        INSERT.  Every row is validated before any object is created, and
        the whole batch runs in one commit scope: an index-maintenance
        error mid-batch (possible on ANY-typed properties with uncomparable
        keys) undoes every row already landed, so the batch is atomic.  The
        data version advances by the number of created objects (same
        plan-cache drift as individual creates).
        """
        self.schema.get_class(class_name)  # existence check
        materialized = [dict(row) for row in rows]

        prop_defs: dict[str, Any] = {}

        def prop_def_for(prop: str):
            prop_def = prop_defs.get(prop)
            if prop_def is None:
                if not self.schema.has_property(class_name, prop):
                    raise SchemaError(
                        f"class {class_name!r} has no property {prop!r}")
                prop_def = self.schema.resolve_property(class_name, prop)
                prop_defs[prop] = prop_def
            return prop_def

        for row in materialized:
            for prop, value in row.items():
                prop_def = prop_def_for(prop)
                if value is not None and not prop_def.vml_type.validate(value):
                    raise TypeMismatchError(
                        f"value {value!r} for {class_name}.{prop} does not "
                        f"conform to {prop_def.vml_type}")

        owners = list(self._class_and_ancestors(class_name))
        maintenance: dict[str, tuple[list, list]] = {}

        def targets_for(prop: str) -> tuple[list, list]:
            targets = maintenance.get(prop)
            if targets is None:
                indexes = [index for owner in owners
                           if (index := self.indexes.get(owner, prop))
                           is not None]
                engines = [engine for owner in owners
                           if (engine := self._text_indexes.get((owner, prop)))
                           is not None]
                targets = (indexes, engines)
                maintenance[prop] = targets
            return targets

        objects = self._objects
        extension = self._extensions[class_name]
        partitioned = self.partitions.for_class(class_name)
        allocate = self._allocator.allocate
        created: list[OID] = []
        undo_create = self._undo_create
        with self.commit_scope() as scope:
            ts = scope.ts
            mlog = self._mlog
            undo = scope.undo
            ops = scope.ops
            for row in materialized:
                oid = allocate(class_name)
                if ops is not None:
                    ops.append(("create", class_name, oid.serial, dict(row)))
                mlog.append((ts, class_name, oid))
                objects[oid] = DatabaseObject(oid=oid, values=row,
                                              begin_ts=ts, created_ts=ts)
                extension.append(oid)
                partitioned.add(oid)
                undo.append(lambda oid=oid: undo_create(class_name, oid))
                created.append(oid)
                for prop, value in row.items():
                    if value is None:
                        continue
                    indexes, engines = targets_for(prop)
                    for index in indexes:
                        index.insert(value, oid)
                    if engines:
                        text = str(value)
                        for engine in engines:
                            engine.index_text(oid, text)
            self.statistics.objects_created += len(created)
            self.versions.data += len(created)
            undo.append(lambda n=len(created): self._unsettle_created(n))
            self._note_stats_mutation(class_name, len(created))
        return created

    def _note_stats_mutation(self, class_name: str, count: int = 1) -> None:
        """Record statistics churn for *class_name* and its ancestors.

        Class statistics cover the deep extension, so mutating a subclass
        must stale its superclasses' histograms too."""
        for owner in self._class_and_ancestors(class_name):
            self.stats_catalog.note_mutation(owner, count)

    def _class_and_ancestors(self, class_name: str) -> Iterable[str]:
        current: Optional[str] = class_name
        while current is not None:
            yield current
            current = self.schema.get_class(current).superclass

    def delete(self, oid: OID) -> None:
        """Delete the object with *oid*.

        The object is removed from its extension, its hash partition and
        every index and text index covering it.  References other objects
        hold to the deleted OID are not chased; reading such a dangling
        reference later raises :class:`ObjectNotFoundError`, exactly like
        any unknown OID.
        """
        obj = self.get(oid)
        class_name = obj.class_name
        owners = set(self._class_and_ancestors(class_name))
        with self.commit_scope() as scope:
            ts = scope.ts
            if scope.ops is not None:
                scope.ops.append(("delete", class_name, oid.serial))
            self._mlog.append((ts, class_name, oid))
            # Index/text removals are undone entry-by-entry: the loops can
            # fail part-way, and re-inserting entries that were never
            # removed would corrupt the indexes.
            removed_entries: list[tuple[Any, str, Any]] = []
            scope.undo.append(
                lambda: self._undo_index_removals(removed_entries))
            for prop_name, value in list(obj.values.items()):
                if value is None:
                    continue  # None values are never in hash/sorted indexes
                for owner in owners:
                    index = self.indexes.get(owner, prop_name)
                    if index is not None:
                        index.remove(value, oid)
                        removed_entries.append((index, value, oid))
            # Text indexes are keyed by OID alone, so removal must not
            # depend on the current property value (which may be None now).
            for (owner, prop_name), engine in self._text_indexes.items():
                if owner in owners:
                    content = obj.values.get(prop_name)
                    engine.remove(oid)
                    if content is not None:
                        removed_entries.append((engine, None, (oid, content)))
            # Preserve the final version for pinned readers, then mark the
            # object's end *before* unlinking it so a concurrent snapshot
            # read that misses ``_objects`` finds the end marker.
            chain = self._history.setdefault(oid, [])
            chain.append((obj.begin_ts, dict(obj.values)))
            self._ends[oid] = (obj.created_ts, ts)
            self._removed.setdefault(class_name, []).append(
                (oid, obj.created_ts, ts))
            extension = self._extensions[class_name]
            extension_pos = extension.index(oid)
            partition_pos = self.partitions.position_of(class_name, oid)
            del self._objects[oid]
            extension.remove(oid)
            self.partitions.remove(class_name, oid)
            scope.undo.append(lambda: self._undo_delete(
                class_name, oid, obj, extension_pos, partition_pos))
            self.statistics.record_object_deleted()
            self.versions.data += 1
            scope.undo.append(lambda: self._unsettle_deleted())
            self._note_stats_mutation(class_name)

    def _undo_index_removals(
            self, removed_entries: list[tuple[Any, str, Any]]) -> None:
        for target, value, payload in reversed(removed_entries):
            if value is None:  # text engine: payload is (oid, content)
                oid, content = payload
                target.index_text(oid, str(content))
            else:
                target.insert(value, payload)

    def _undo_delete(self, class_name: str, oid: OID, obj: DatabaseObject,
                     extension_pos: int, partition_pos: int) -> None:
        self._objects[oid] = obj
        self._ends.pop(oid, None)
        removed = self._removed.get(class_name)
        if removed and removed[-1][0] == oid:
            removed.pop()
        self._extensions[class_name].insert(extension_pos, oid)
        self.partitions.restore(class_name, oid, partition_pos)

    def _unsettle_deleted(self) -> None:
        self.statistics.objects_deleted -= 1
        self.versions.data -= 1

    def get(self, oid: OID) -> DatabaseObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFoundError(f"no object with OID {oid}") from None

    def exists(self, oid: OID) -> bool:
        return oid in self._objects

    def object_count(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # property access
    # ------------------------------------------------------------------
    def value(self, oid: OID, prop: str) -> Any:
        """Read a property value (the system-provided default read method).

        Answers as of the calling thread's snapshot pin when one is active;
        otherwise reads the live state (writer threads and unpinned
        callers).
        """
        ts = self._pinned_ts()
        if ts is not None:
            if not self.schema.has_property(oid.class_name, prop):
                raise SchemaError(
                    f"class {oid.class_name!r} has no property {prop!r}")
            self.statistics.record_property_read()
            return self.value_at(oid, prop, ts)
        obj = self.get(oid)
        self.statistics.record_property_read()
        if not self.schema.has_property(obj.class_name, prop):
            raise SchemaError(
                f"class {obj.class_name!r} has no property {prop!r}")
        return obj.get_or_none(prop)

    def set_value(self, oid: OID, prop: str, value: Any) -> None:
        """Write one property value, keeping indexes consistent."""
        self.update(oid, **{prop: value})

    def update(self, oid: OID, **values: Any) -> None:
        """Write several property values in one maintenance pass.

        All values are validated up front (no partial write on a type
        error); the object's partition write counter and the data version
        tick once per call, not once per property, so a multi-column
        ``UPDATE ... SET`` costs one plan-cache drift unit.  Index and text
        index maintenance matches :meth:`set_value` per property.
        """
        if not values:
            return
        obj = self.get(oid)
        class_name = obj.class_name
        for prop, value in values.items():
            prop_def = self.schema.resolve_property(class_name, prop)
            if value is not None and not prop_def.vml_type.validate(value):
                raise TypeMismatchError(
                    f"value {value!r} for {class_name}.{prop} does not "
                    f"conform to {prop_def.vml_type}")
        with self.commit_scope() as scope:
            ts = scope.ts
            previous = {prop: (obj.has(prop), obj.get_or_none(prop))
                        for prop in values}
            if scope.ops is not None:
                scope.ops.append(("update", class_name, oid.serial,
                                  dict(values)))
            self._mlog.append((ts, class_name, oid))
            # Version-chain discipline: append the pre-image, *then* flip
            # ``begin_ts``, *then* mutate the values.  A snapshot reader
            # that observes an unchanged ``begin_ts`` across its value read
            # is guaranteed a consistent version; one that observes the
            # flip finds the pre-image already in the chain.
            old_begin = obj.begin_ts
            pre_image = dict(obj.values)
            self._history.setdefault(oid, []).append((old_begin, pre_image))
            obj.begin_ts = ts
            for prop, value in values.items():
                obj.set(prop, value)
                self.statistics.record_property_write()
            # Index maintenance can fail part-way (ANY-typed properties
            # with uncomparable keys on a sorted index), so the applied
            # operations are collected as they happen and the undo inverts
            # exactly those, then restores values and the version stamp.
            applied_ops: list[tuple[str, Any, Any, Any]] = []
            scope.undo.append(lambda: self._undo_update(
                obj, old_begin, pre_image, values, applied_ops))
            self.partitions.record_write(class_name, oid)
            self.versions.data += 1
            self._note_stats_mutation(class_name)
            for owner in self._class_and_ancestors(class_name):
                for prop, value in values.items():
                    index = self.indexes.get(owner, prop)
                    if index is not None:
                        # None values are never indexed (see
                        # _index_new_object), so transitions to/from None
                        # are plain removes/inserts.
                        had, old = previous[prop]
                        if had and old is not None:
                            if value is not None:
                                index.update(old, value, oid)
                                applied_ops.append(("update", index, old, value))
                            else:
                                index.remove(old, oid)
                                applied_ops.append(("remove", index, old, None))
                        elif value is not None:
                            index.insert(value, oid)
                            applied_ops.append(("insert", index, value, None))
                    engine = self._text_indexes.get((owner, prop))
                    if engine is not None:
                        had, old = previous[prop]
                        engine.index_text(oid, str(value))
                        applied_ops.append(("text", engine, old if had else None, None))

    def _undo_update(self, obj: DatabaseObject, old_begin: int,
                     pre_image: dict[str, Any], values: dict[str, Any],
                     applied_ops: list[tuple[str, Any, Any, Any]]) -> None:
        oid = obj.oid
        for op, target, old, new in reversed(applied_ops):
            if op == "update":
                target.update(new, old, oid)
            elif op == "remove":
                target.insert(old, oid)
            elif op == "insert":
                target.remove(old, oid)
            else:  # text engine: re-index the previous content
                target.remove(oid)
                if old is not None:
                    target.index_text(oid, str(old))
        obj.values.clear()
        obj.values.update(pre_image)
        obj.begin_ts = old_begin
        self.statistics.property_writes -= len(values)
        self.versions.data -= 1

    # ------------------------------------------------------------------
    # extensions
    # ------------------------------------------------------------------
    def extension(self, class_name: str, deep: bool = True) -> list[OID]:
        """All OIDs of instances of *class_name* (including subclasses when
        *deep*), in creation order."""
        if not self.schema.has_class(class_name):
            raise SchemaError(f"unknown class {class_name!r}")
        self.statistics.record_extension_scan()
        ts = self._pinned_ts()
        if ts is not None:
            # Optimistic fast path: if no commit newer than the snapshot
            # exists before *and* no writer begins while we copy (the
            # ``begun`` generation is unchanged after), the live lists are
            # exactly the snapshot.  Otherwise take the versioned merge.
            clock = self.clock
            generation = clock.begun
            if clock.allocated > ts:
                return self._extension_at(class_name, ts, deep)
            result = list(self._extensions.get(class_name, ()))
            if deep:
                for other in self.schema.classes:
                    if other != class_name and self._inherits_from(
                            other, class_name):
                        result.extend(self._extensions.get(other, ()))
            if clock.begun == generation:
                return result
            return self._extension_at(class_name, ts, deep)
        result = list(self._extensions.get(class_name, ()))
        if deep:
            for other, class_def in self.schema.classes.items():
                if other != class_name and self._inherits_from(other, class_name):
                    result.extend(self._extensions.get(other, ()))
        return result

    def _extension_at(self, class_name: str, ts: int,
                      deep: bool) -> list[OID]:
        classes = [class_name]
        if deep:
            classes.extend(
                other for other in self.schema.classes
                if other != class_name
                and self._inherits_from(other, class_name))
        result: list[OID] = []
        for cls in classes:
            result.extend(self._class_extension_at(cls, ts))
        return result

    def _class_extension_at(self, cls: str, ts: int) -> list[OID]:
        current = list(self._extensions.get(cls, ()))  # atomic copy
        objects = self._objects
        ends = self._ends
        visible: list[OID] = []
        for oid in current:
            obj = objects.get(oid)
            if obj is not None:
                if obj.created_ts <= ts:
                    visible.append(oid)
            else:
                span = ends.get(oid)
                if span is not None and span[0] <= ts < span[1]:
                    visible.append(oid)
        removed = self._removed.get(cls)
        if removed:
            present = {oid.serial for oid in visible}
            resurrected = [oid for oid, created, end in list(removed)
                           if created <= ts < end
                           and oid.serial not in present]
            if resurrected:
                visible.extend(resurrected)
                # serials are allocated in creation order, so sorting by
                # serial restores the original extension order
                visible.sort(key=lambda oid: oid.serial)
        return visible

    def _inherits_from(self, class_name: str, ancestor: str) -> bool:
        current: Optional[str] = class_name
        while current is not None:
            class_def = self.schema.get_class(current)
            if class_def.superclass == ancestor:
                return True
            current = class_def.superclass
        return False

    def extension_partitions(self, class_name: str,
                             deep: bool = True) -> list[list[OID]]:
        """The extension of *class_name* as hash partitions.

        Partition *i* of the result merges partition *i* of the class with
        partition *i* of every subclass (subclasses in schema order, exactly
        like :meth:`extension`), so concatenating the partitions yields the
        same OID multiset as a deep extension scan.  Charged as one
        extension scan, like :meth:`extension`.
        """
        if not self.schema.has_class(class_name):
            raise SchemaError(f"unknown class {class_name!r}")
        self.statistics.record_extension_scan()
        classes = [class_name]
        if deep:
            classes.extend(
                other for other in self.schema.classes
                if other != class_name and self._inherits_from(other, class_name))
        ts = self._pinned_ts()
        if ts is not None:
            clock = self.clock
            generation = clock.begun
            if clock.allocated > ts:
                return self._extension_partitions_at(classes, ts)
            result = [[] for _ in range(self.partitions.n_partitions)]
            for cls in classes:
                extension = self.partitions.for_class(cls)
                for index, oids in enumerate(extension.partitions()):
                    result[index].extend(oids)
            if clock.begun == generation:
                return result
            return self._extension_partitions_at(classes, ts)
        result = [[] for _ in range(self.partitions.n_partitions)]
        for cls in classes:
            extension = self.partitions.for_class(cls)
            for index, oids in enumerate(extension.partitions()):
                result[index].extend(oids)
        return result

    def _extension_partitions_at(self, classes: list[str],
                                 ts: int) -> list[list[OID]]:
        """The partitioned extension as of snapshot *ts*.

        Built from the per-class snapshot extensions and the deterministic
        serial-modulo partition function, so partition contents (and the
        ordered merge of a parallel scan) match what the live partitions
        held at the snapshot."""
        n_partitions = self.partitions.n_partitions
        result: list[list[OID]] = [[] for _ in range(n_partitions)]
        for cls in classes:
            for oid in self._class_extension_at(cls, ts):
                result[oid.serial % n_partitions].append(oid)
        return result

    def partition_statistics(self, class_name: str) -> list[PartitionStatistics]:
        """Per-partition maintenance counters for *class_name* (shallow)."""
        if not self.schema.has_class(class_name):
            raise SchemaError(f"unknown class {class_name!r}")
        return self.partitions.for_class(class_name).statistics()

    def extension_size(self, class_name: str) -> int:
        """Cardinality of the extension without charging a scan (cost model)."""
        size = len(self._extensions.get(class_name, ()))
        for other in self.schema.class_names():
            if other != class_name and self._inherits_from(other, class_name):
                size += len(self._extensions.get(other, ()))
        return size

    # ------------------------------------------------------------------
    # method dispatch
    # ------------------------------------------------------------------
    def invoke(self, receiver: OID, method_name: str, *args: Any) -> Any:
        """Invoke an instance method on *receiver*."""
        obj = self._objects.get(receiver)
        if obj is None:
            # a snapshot pin may still see an object deleted from the
            # live state; dispatch on the OID's class in that case
            ts = self._pinned_ts()
            if ts is None or not self.visible_at(receiver, ts):
                raise ObjectNotFoundError(f"no object with OID {receiver}")
            class_name = receiver.class_name
        else:
            class_name = obj.class_name
        method = self.schema.resolve_instance_method(class_name, method_name)
        return self._dispatch(method, class_name, receiver, args)

    def invoke_class_method(self, class_name: str, method_name: str,
                            *args: Any) -> Any:
        """Invoke a class-level (OWNTYPE) method on the class object."""
        method = self.schema.resolve_class_method(class_name, method_name)
        return self._dispatch(method, class_name, class_name, args)

    def _dispatch(self, method: MethodDef, class_name: str,
                  receiver: Any, args: tuple[Any, ...]) -> Any:
        if method.implementation is None:
            raise MethodInvocationError(
                f"method {class_name}.{method.name} has no implementation")
        if len(args) != method.arity:
            raise MethodInvocationError(
                f"method {class_name}.{method.name} expects {method.arity} "
                f"argument(s), got {len(args)}")
        self.statistics.record_method_call(
            class_name, method.name,
            external=method.is_external(),
            class_level=method.class_level,
            cost=method.cost_per_call)
        try:
            return method.implementation(self._context, receiver, *args)
        except (ObjectNotFoundError, SchemaError, MethodInvocationError):
            raise
        except Exception as exc:  # surface implementation bugs with context
            raise MethodInvocationError(
                f"method {class_name}.{method.name} failed: {exc}") from exc

    def method_def(self, class_name: str, method_name: str,
                   class_level: bool = False) -> MethodDef:
        if class_level:
            return self.schema.resolve_class_method(class_name, method_name)
        return self.schema.resolve_instance_method(class_name, method_name)

    # ------------------------------------------------------------------
    # pre-resolved dispatch (compiled execution engine)
    # ------------------------------------------------------------------
    def instance_invoker(self, class_name: str, method_name: str):
        """Resolve an instance method once and return a fast per-call invoker.

        The invoker performs the same work as :meth:`invoke` — receiver
        existence check, arity check, statistics recording, error wrapping —
        but with method resolution and metadata lookups hoisted out of the
        per-call path.  Used by :mod:`repro.physical.compiler` to pre-bind
        method dispatch per receiver class.
        """
        method = self.schema.resolve_instance_method(class_name, method_name)
        return self._make_invoker(method, class_name, check_receiver=True)

    def class_invoker(self, class_name: str, method_name: str):
        """Like :meth:`instance_invoker` for class-level (OWNTYPE) methods."""
        method = self.schema.resolve_class_method(class_name, method_name)
        return self._make_invoker(method, class_name, check_receiver=False)

    def _make_invoker(self, method: MethodDef, class_name: str,
                      check_receiver: bool):
        implementation = method.implementation
        if implementation is None:
            raise MethodInvocationError(
                f"method {class_name}.{method.name} has no implementation")
        objects = self._objects
        context = self._context
        method_name = method.name
        arity = method.arity
        # Statistics recording is inlined with the counters pre-bound:
        # reset() clears them in place, so the references stay valid.
        statistics = self.statistics
        call_counter = statistics.method_calls
        external_counter = (statistics.external_method_calls
                            if method.is_external() else None)
        class_counter = (statistics.class_method_calls
                         if method.class_level else None)
        cost = method.cost_per_call
        key = f"{class_name}.{method_name}"

        database = self

        def invoke(receiver: Any, args: tuple[Any, ...]) -> Any:
            if check_receiver and receiver not in objects:
                # Under a snapshot pin a deleted object may still be
                # visible; resolve the existence check at the snapshot.
                pin = current_pin()
                if (pin is None or pin.database is not database
                        or not database.visible_at(receiver, pin.ts)):
                    raise ObjectNotFoundError(f"no object with OID {receiver}")
            if len(args) != arity:
                raise MethodInvocationError(
                    f"method {class_name}.{method_name} expects {arity} "
                    f"argument(s), got {len(args)}")
            call_counter[key] += 1
            if external_counter is not None:
                external_counter[key] += 1
            if class_counter is not None:
                class_counter[key] += 1
            statistics.method_cost_units += cost
            try:
                return implementation(context, receiver, *args)
            except (ObjectNotFoundError, SchemaError, MethodInvocationError):
                raise
            except Exception as exc:  # surface implementation bugs with context
                raise MethodInvocationError(
                    f"method {class_name}.{method_name} failed: {exc}") from exc

        return invoke

    def property_reader(self, class_name: str, prop: str):
        """Validate a property once and return a fast per-read accessor.

        The accessor charges the same ``property_reads`` counter as
        :meth:`value` but skips the per-call schema validation."""
        if not self.schema.has_property(class_name, prop):
            raise SchemaError(
                f"class {class_name!r} has no property {prop!r}")
        objects = self._objects
        record = self.statistics.record_property_read
        database = self

        def read(oid: OID) -> Any:
            pin = current_pin()
            if pin is not None and pin.database is database:
                record()
                return database.value_at(oid, prop, pin.ts)
            try:
                obj = objects[oid]
            except KeyError:
                raise ObjectNotFoundError(f"no object with OID {oid}") from None
            record()
            return obj.get_or_none(prop)

        return read

    # ------------------------------------------------------------------
    # schema DDL
    # ------------------------------------------------------------------
    def create_class(self, name: str, superclass: Optional[str] = None,
                     properties: Iterable[PropertyDef] = ()) -> ClassDef:
        """Register a new class (the ``CREATE CLASS`` DDL entry point).

        References are validated *before* the schema is touched so a bad
        statement cannot leave a half-registered class behind; the schema
        version bump evicts every cached plan (new classes change the plan
        space for deep-extension scans of their superclasses).
        """
        properties = list(properties)
        if self.schema.has_class(name):
            raise SchemaError(f"duplicate class {name!r}")
        if superclass is not None and not self.schema.has_class(superclass):
            raise SchemaError(
                f"class {name!r} inherits from unknown class {superclass!r}")
        for prop in properties:
            if prop.target_class is not None and prop.target_class != name \
                    and not self.schema.has_class(prop.target_class):
                raise SchemaError(
                    f"property {name}.{prop.name} refers to unknown class "
                    f"{prop.target_class!r}")
        class_def = ClassDef(name=name, superclass=superclass)
        for prop in properties:
            class_def.add_property(prop)
        self.schema.add_class(class_def)
        self.bump_schema_version()
        # str(vml_type) renders the statement language's own type spec
        # (STRING / INT / a class name / {inner}), which the storage
        # layer's decode_type parses back — no separate wire format.
        self._log_ddl("create_class", name, superclass,
                      [[prop.name, str(prop.vml_type), prop.target_class]
                       for prop in properties])
        return class_def

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_hash_index(self, class_name: str, prop: str) -> HashIndex:
        """Create an exact-match index and backfill it from existing objects
        (objects whose property is None are not indexed)."""
        index = self.indexes.create_hash_index(class_name, prop)
        for oid in self.extension(class_name):
            value = self.get(oid).get_or_none(prop)
            if value is not None:
                index.insert(value, oid)
        self.versions.index += 1
        self._log_ddl("create_index", "hash", class_name, prop)
        return index

    def create_sorted_index(self, class_name: str, prop: str) -> SortedIndex:
        """Create an ordered index and backfill it from existing objects
        (objects whose property is None are not indexed)."""
        index = self.indexes.create_sorted_index(class_name, prop)
        for oid in self.extension(class_name):
            value = self.get(oid).get_or_none(prop)
            if value is not None:
                index.insert(value, oid)
        self.versions.index += 1
        self._log_ddl("create_index", "sorted", class_name, prop)
        return index

    def drop_index(self, class_name: str, prop: str) -> None:
        """Drop the user-defined index on ``class_name.prop``.

        Plans compiled against the index become unexecutable; the version
        bump lets the service layer's plan cache evict them."""
        self.indexes.drop(class_name, prop)
        self.versions.index += 1
        self._log_ddl("drop_index", class_name, prop, False)

    def create_text_index(self, class_name: str, prop: str) -> InvertedTextIndex:
        """Create an IR index over a STRING property and backfill it."""
        key = (class_name, prop)
        if key in self._text_indexes:
            raise SchemaError(f"text index on {class_name}.{prop} already exists")
        engine = InvertedTextIndex()
        self._text_indexes[key] = engine
        for oid in self.extension(class_name):
            content = self.get(oid).get_or_none(prop)
            if content is not None:
                engine.index_text(oid, str(content))
        self.versions.index += 1
        self._log_ddl("create_index", "text", class_name, prop)
        return engine

    def drop_text_index(self, class_name: str, prop: str) -> None:
        """Drop the IR text index on ``class_name.prop``."""
        key = (class_name, prop)
        if key not in self._text_indexes:
            raise SchemaError(f"no text index on {class_name}.{prop} to drop")
        del self._text_indexes[key]
        self.versions.index += 1
        self._log_ddl("drop_index", class_name, prop, True)

    def text_index(self, class_name: str, prop: str) -> Optional[InvertedTextIndex]:
        return self._text_indexes.get((class_name, prop))

    def text_indexes(self) -> Iterable[tuple[tuple[str, str], InvertedTextIndex]]:
        return list(self._text_indexes.items())

    # ------------------------------------------------------------------
    # statistics helpers
    # ------------------------------------------------------------------
    def analyze(self, class_name: Optional[str] = None,
                **options: Any) -> list[ClassStatistics]:
        """Refresh the optimizer-statistics catalog (the ``ANALYZE`` entry
        point).

        Collects per-class/per-property distribution statistics (and timed
        per-method cost calibration) for *class_name*, or for every class
        when omitted, then bumps ``versions.stats`` so the service layer's
        plan cache re-optimizes every cached plan against the new estimates.
        *options* are forwarded to
        :meth:`~repro.datamodel.statistics.StatisticsCatalog.analyze`.
        """
        if class_name is not None and not self.schema.has_class(class_name):
            raise SchemaError(f"unknown class {class_name!r}")
        collected = self.stats_catalog.analyze(self, class_name=class_name,
                                               **options)
        self.versions.stats += 1
        # Replay re-runs ANALYZE over identical data: distribution
        # statistics are deterministic, so the recovered catalog matches
        # (timing-based method calibration is measured fresh either way).
        self._log_ddl("analyze", class_name)
        return collected

    def note_stats_correction(self) -> None:
        """Record that the feedback loop changed the statistics catalog.

        Bumping ``versions.stats`` is what makes the plan cache's strict
        version check fail for every plan optimized against the pre-feedback
        estimates — the next execution replans with the corrected numbers.
        """
        self.versions.stats += 1

    def reset_statistics(self) -> None:
        """Reset all work counters (database plus external engines)."""
        self.statistics.reset()
        for engine in self._text_indexes.values():
            engine.reset_counters()

    def work_snapshot(self) -> dict[str, float]:
        """Combined snapshot of database and external-engine counters."""
        snapshot = dict(self.statistics.snapshot())
        ir_cost = 0.0
        ir_calls = 0
        for engine in self._text_indexes.values():
            counters = engine.counters()
            ir_cost += counters["cost_units"]
            ir_calls += counters["contains_calls"] + counters["retrieve_calls"]
        snapshot["ir_cost_units"] = ir_cost
        snapshot["ir_calls"] = ir_calls
        snapshot["total_cost_units"] = snapshot["method_cost_units"] + ir_cost
        return snapshot

    def bump_schema_version(self) -> None:
        """Signal an in-place schema mutation (class/property/method change)
        so that the service layer re-prepares every cached plan."""
        self.versions.schema += 1

    def oid_counters(self) -> dict[str, int]:
        """Per-class OID allocator counters (checkpoint serialization)."""
        return self._allocator.counters()

    def restore_oid_counters(self, counters: dict[str, int]) -> None:
        """Restore allocator counters from a checkpoint, so serials of
        objects deleted before the checkpoint are never reallocated."""
        self._allocator.restore(counters)

    @property
    def context(self) -> InvocationContext:
        return self._context

    def __str__(self) -> str:
        return (f"Database({self.name!r}, {self.object_count()} objects, "
                f"{len(self.schema.classes)} classes)")
