"""The in-memory object database.

:class:`Database` is the substrate standing in for VODAK: it stores objects,
maintains class extensions, dispatches methods (internal and external),
maintains user-defined indexes and text indexes, and counts the work it
performs so that query plans can be compared quantitatively.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.datamodel.indexes import HashIndex, IndexRegistry, SortedIndex
from repro.datamodel.ir import InvertedTextIndex
from repro.datamodel.objects import DatabaseObject
from repro.datamodel.oid import OID, OIDAllocator
from repro.datamodel.partitions import (
    DEFAULT_PARTITIONS,
    ExtensionPartitions,
    PartitionStatistics,
)
from repro.datamodel.schema import (
    ClassDef,
    MethodDef,
    MethodKind,
    PropertyDef,
    Schema,
)
from repro.datamodel.statistics import (
    ClassStatistics,
    DatabaseStatistics,
    StatisticsCatalog,
)
from repro.errors import (
    MethodInvocationError,
    ObjectNotFoundError,
    SchemaError,
    TypeMismatchError,
)

__all__ = ["Database", "InvocationContext", "VersionClock"]


@dataclass
class VersionClock:
    """Monotonic change counters the plan cache validates cached plans against.

    * ``schema`` — class/property/method definitions (static schemas never
      bump it; callers that mutate a schema in place must call
      :meth:`Database.bump_schema_version`);
    * ``index`` — user-defined index and text-index DDL (create/drop);
    * ``data`` — object creates and property writes.  Cached plans stay
      *correct* under data changes (all reads happen at execution time), so
      the cache treats this counter as a staleness signal for re-optimizing,
      not a strict invalidator;
    * ``stats`` — optimizer-statistics refreshes (the ``ANALYZE``
      statement).  New statistics change cost estimates and therefore plan
      choice, so the plan cache evicts on a mismatch exactly like it does
      for index DDL.
    """

    schema: int = 0
    index: int = 0
    data: int = 0
    stats: int = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (self.schema, self.index, self.data, self.stats)


class InvocationContext:
    """The view of the database handed to method implementations.

    It exposes exactly what a VML method body may use: property access on any
    object, invocation of other methods, class extensions, and the external
    engines (indexes, text indexes) registered with the database.
    """

    def __init__(self, database: "Database"):
        self.database = database

    def value(self, oid: OID, prop: str) -> Any:
        return self.database.value(oid, prop)

    def invoke(self, oid: OID, method: str, *args: Any) -> Any:
        return self.database.invoke(oid, method, *args)

    def invoke_class_method(self, class_name: str, method: str, *args: Any) -> Any:
        return self.database.invoke_class_method(class_name, method, *args)

    def extension(self, class_name: str) -> list[OID]:
        return self.database.extension(class_name)

    def index(self, class_name: str, prop: str) -> Optional[HashIndex | SortedIndex]:
        return self.database.indexes.get(class_name, prop)

    def text_index(self, class_name: str, prop: str) -> Optional[InvertedTextIndex]:
        return self.database.text_index(class_name, prop)


class Database:
    """In-memory OODB: objects + extensions + method dispatch + indexes."""

    def __init__(self, schema: Schema, name: str = "database",
                 n_partitions: int = DEFAULT_PARTITIONS):
        schema.validate()
        self.schema = schema
        self.name = name
        self._objects: dict[OID, DatabaseObject] = {}
        self._extensions: dict[str, list[OID]] = defaultdict(list)
        self.partitions = ExtensionPartitions(n_partitions)
        self._allocator = OIDAllocator()
        self.indexes = IndexRegistry()
        self._text_indexes: dict[tuple[str, str], InvertedTextIndex] = {}
        self.statistics = DatabaseStatistics()
        #: optimizer statistics (histograms, distinct counts, method
        #: latencies) collected by ANALYZE and read by the cost model
        self.stats_catalog = StatisticsCatalog()
        self.versions = VersionClock()
        self._context = InvocationContext(self)

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------
    def create(self, class_name: str, **values: Any) -> OID:
        """Create an instance of *class_name* with the given property values.

        Values are validated against the declared property types; reference
        properties accept OIDs or sets of OIDs.  Indexes and text indexes on
        the class are maintained eagerly.
        """
        class_def = self.schema.get_class(class_name)
        unknown = [prop for prop in values if not self.schema.has_property(class_name, prop)]
        if unknown:
            raise SchemaError(
                f"class {class_name!r} has no propert{'y' if len(unknown) == 1 else 'ies'} "
                f"{', '.join(repr(p) for p in unknown)}")
        for prop_name, value in values.items():
            prop_def = self.schema.resolve_property(class_name, prop_name)
            if value is not None and not prop_def.vml_type.validate(value):
                raise TypeMismatchError(
                    f"value {value!r} for {class_name}.{prop_name} does not "
                    f"conform to {prop_def.vml_type}")
        oid = self._allocator.allocate(class_name)
        obj = DatabaseObject(oid=oid, values=dict(values))
        self._objects[oid] = obj
        self._extensions[class_name].append(oid)
        self.partitions.add(class_name, oid)
        self.statistics.record_object_created()
        self.versions.data += 1
        self._note_stats_mutation(class_name)
        self._index_new_object(class_name, oid, values)
        del class_def  # looked up only for existence checking
        return oid

    def _index_new_object(self, class_name: str, oid: OID,
                          values: dict[str, Any]) -> None:
        # Indexes created on a class cover the deep extension (subclasses
        # included), so maintenance must notify the index of every ancestor
        # class as well — otherwise instances of subclasses created after the
        # index would silently be missing from it.  None values are not
        # indexed: the evaluator treats None as matching no comparison, and
        # None keys cannot be ordered by a sorted index.
        for prop_name, value in values.items():
            if value is None:
                continue
            for owner in self._class_and_ancestors(class_name):
                self.indexes.notify_insert(owner, prop_name, value, oid)
                engine = self._text_indexes.get((owner, prop_name))
                if engine is not None:
                    engine.index_text(oid, str(value))

    def create_many(self, class_name: str,
                    rows: Iterable[dict[str, Any]]) -> list[OID]:
        """Bulk create: one maintenance pass for a whole batch of objects.

        Semantically equivalent to calling :meth:`create` per row, but the
        schema lookups, type validators, ancestor chain and index/text-index
        targets are resolved once for the batch instead of once per object —
        this is the fast path behind the statement API's ``executemany``
        INSERT.  Every row is validated before any object is created, so a
        *type* error in row *k* leaves the database untouched
        (index-maintenance errors surface mid-batch with the same partial
        effect they have in :meth:`create`).  The data version advances by
        the number of created objects (same plan-cache drift as individual
        creates).
        """
        self.schema.get_class(class_name)  # existence check
        materialized = [dict(row) for row in rows]

        prop_defs: dict[str, Any] = {}

        def prop_def_for(prop: str):
            prop_def = prop_defs.get(prop)
            if prop_def is None:
                if not self.schema.has_property(class_name, prop):
                    raise SchemaError(
                        f"class {class_name!r} has no property {prop!r}")
                prop_def = self.schema.resolve_property(class_name, prop)
                prop_defs[prop] = prop_def
            return prop_def

        for row in materialized:
            for prop, value in row.items():
                prop_def = prop_def_for(prop)
                if value is not None and not prop_def.vml_type.validate(value):
                    raise TypeMismatchError(
                        f"value {value!r} for {class_name}.{prop} does not "
                        f"conform to {prop_def.vml_type}")

        owners = list(self._class_and_ancestors(class_name))
        maintenance: dict[str, tuple[list, list]] = {}

        def targets_for(prop: str) -> tuple[list, list]:
            targets = maintenance.get(prop)
            if targets is None:
                indexes = [index for owner in owners
                           if (index := self.indexes.get(owner, prop))
                           is not None]
                engines = [engine for owner in owners
                           if (engine := self._text_indexes.get((owner, prop)))
                           is not None]
                targets = (indexes, engines)
                maintenance[prop] = targets
            return targets

        objects = self._objects
        extension = self._extensions[class_name]
        partitioned = self.partitions.for_class(class_name)
        allocate = self._allocator.allocate
        created: list[OID] = []
        # Statistics and the data-version tick are settled in the finally
        # block so that an index-maintenance error mid-batch (possible on
        # ANY-typed properties with uncomparable keys, exactly as in
        # :meth:`create`) still counts every object that landed — cached
        # plans must see the drift.
        try:
            for row in materialized:
                oid = allocate(class_name)
                objects[oid] = DatabaseObject(oid=oid, values=row)
                extension.append(oid)
                partitioned.add(oid)
                created.append(oid)
                for prop, value in row.items():
                    if value is None:
                        continue
                    indexes, engines = targets_for(prop)
                    for index in indexes:
                        index.insert(value, oid)
                    if engines:
                        text = str(value)
                        for engine in engines:
                            engine.index_text(oid, text)
        finally:
            self.statistics.objects_created += len(created)
            self.versions.data += len(created)
            self._note_stats_mutation(class_name, len(created))
        return created

    def _note_stats_mutation(self, class_name: str, count: int = 1) -> None:
        """Record statistics churn for *class_name* and its ancestors.

        Class statistics cover the deep extension, so mutating a subclass
        must stale its superclasses' histograms too."""
        for owner in self._class_and_ancestors(class_name):
            self.stats_catalog.note_mutation(owner, count)

    def _class_and_ancestors(self, class_name: str) -> Iterable[str]:
        current: Optional[str] = class_name
        while current is not None:
            yield current
            current = self.schema.get_class(current).superclass

    def delete(self, oid: OID) -> None:
        """Delete the object with *oid*.

        The object is removed from its extension, its hash partition and
        every index and text index covering it.  References other objects
        hold to the deleted OID are not chased; reading such a dangling
        reference later raises :class:`ObjectNotFoundError`, exactly like
        any unknown OID.
        """
        obj = self.get(oid)
        class_name = obj.class_name
        owners = set(self._class_and_ancestors(class_name))
        for prop_name, value in list(obj.values.items()):
            if value is None:
                continue  # None values are never in hash/sorted indexes
            for owner in owners:
                self.indexes.notify_remove(owner, prop_name, value, oid)
        # Text indexes are keyed by OID alone, so removal must not depend on
        # the current property value (which may have been set to None).
        for (owner, _prop), engine in self._text_indexes.items():
            if owner in owners:
                engine.remove(oid)
        del self._objects[oid]
        self._extensions[class_name].remove(oid)
        self.partitions.remove(class_name, oid)
        self.statistics.record_object_deleted()
        self.versions.data += 1
        self._note_stats_mutation(class_name)

    def get(self, oid: OID) -> DatabaseObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFoundError(f"no object with OID {oid}") from None

    def exists(self, oid: OID) -> bool:
        return oid in self._objects

    def object_count(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # property access
    # ------------------------------------------------------------------
    def value(self, oid: OID, prop: str) -> Any:
        """Read a property value (the system-provided default read method)."""
        obj = self.get(oid)
        self.statistics.record_property_read()
        if not self.schema.has_property(obj.class_name, prop):
            raise SchemaError(
                f"class {obj.class_name!r} has no property {prop!r}")
        return obj.get_or_none(prop)

    def set_value(self, oid: OID, prop: str, value: Any) -> None:
        """Write one property value, keeping indexes consistent."""
        self.update(oid, **{prop: value})

    def update(self, oid: OID, **values: Any) -> None:
        """Write several property values in one maintenance pass.

        All values are validated up front (no partial write on a type
        error); the object's partition write counter and the data version
        tick once per call, not once per property, so a multi-column
        ``UPDATE ... SET`` costs one plan-cache drift unit.  Index and text
        index maintenance matches :meth:`set_value` per property.
        """
        if not values:
            return
        obj = self.get(oid)
        class_name = obj.class_name
        for prop, value in values.items():
            prop_def = self.schema.resolve_property(class_name, prop)
            if value is not None and not prop_def.vml_type.validate(value):
                raise TypeMismatchError(
                    f"value {value!r} for {class_name}.{prop} does not "
                    f"conform to {prop_def.vml_type}")
        previous = {prop: (obj.has(prop), obj.get_or_none(prop))
                    for prop in values}
        for prop, value in values.items():
            obj.set(prop, value)
            self.statistics.record_property_write()
        self.partitions.record_write(class_name, oid)
        self.versions.data += 1
        self._note_stats_mutation(class_name)
        for owner in self._class_and_ancestors(class_name):
            for prop, value in values.items():
                index = self.indexes.get(owner, prop)
                if index is not None:
                    # None values are never indexed (see _index_new_object),
                    # so transitions to/from None are plain removes/inserts.
                    had, old = previous[prop]
                    if had and old is not None:
                        if value is not None:
                            index.update(old, value, oid)
                        else:
                            index.remove(old, oid)
                    elif value is not None:
                        index.insert(value, oid)
                engine = self._text_indexes.get((owner, prop))
                if engine is not None:
                    engine.index_text(oid, str(value))

    # ------------------------------------------------------------------
    # extensions
    # ------------------------------------------------------------------
    def extension(self, class_name: str, deep: bool = True) -> list[OID]:
        """All OIDs of instances of *class_name* (including subclasses when
        *deep*), in creation order."""
        if not self.schema.has_class(class_name):
            raise SchemaError(f"unknown class {class_name!r}")
        self.statistics.record_extension_scan()
        result = list(self._extensions.get(class_name, ()))
        if deep:
            for other, class_def in self.schema.classes.items():
                if other != class_name and self._inherits_from(other, class_name):
                    result.extend(self._extensions.get(other, ()))
        return result

    def _inherits_from(self, class_name: str, ancestor: str) -> bool:
        current: Optional[str] = class_name
        while current is not None:
            class_def = self.schema.get_class(current)
            if class_def.superclass == ancestor:
                return True
            current = class_def.superclass
        return False

    def extension_partitions(self, class_name: str,
                             deep: bool = True) -> list[list[OID]]:
        """The extension of *class_name* as hash partitions.

        Partition *i* of the result merges partition *i* of the class with
        partition *i* of every subclass (subclasses in schema order, exactly
        like :meth:`extension`), so concatenating the partitions yields the
        same OID multiset as a deep extension scan.  Charged as one
        extension scan, like :meth:`extension`.
        """
        if not self.schema.has_class(class_name):
            raise SchemaError(f"unknown class {class_name!r}")
        self.statistics.record_extension_scan()
        classes = [class_name]
        if deep:
            classes.extend(
                other for other in self.schema.classes
                if other != class_name and self._inherits_from(other, class_name))
        result: list[list[OID]] = [[] for _ in range(self.partitions.n_partitions)]
        for cls in classes:
            extension = self.partitions.for_class(cls)
            for index, oids in enumerate(extension.partitions()):
                result[index].extend(oids)
        return result

    def partition_statistics(self, class_name: str) -> list[PartitionStatistics]:
        """Per-partition maintenance counters for *class_name* (shallow)."""
        if not self.schema.has_class(class_name):
            raise SchemaError(f"unknown class {class_name!r}")
        return self.partitions.for_class(class_name).statistics()

    def extension_size(self, class_name: str) -> int:
        """Cardinality of the extension without charging a scan (cost model)."""
        size = len(self._extensions.get(class_name, ()))
        for other in self.schema.class_names():
            if other != class_name and self._inherits_from(other, class_name):
                size += len(self._extensions.get(other, ()))
        return size

    # ------------------------------------------------------------------
    # method dispatch
    # ------------------------------------------------------------------
    def invoke(self, receiver: OID, method_name: str, *args: Any) -> Any:
        """Invoke an instance method on *receiver*."""
        obj = self.get(receiver)
        method = self.schema.resolve_instance_method(obj.class_name, method_name)
        return self._dispatch(method, obj.class_name, receiver, args)

    def invoke_class_method(self, class_name: str, method_name: str,
                            *args: Any) -> Any:
        """Invoke a class-level (OWNTYPE) method on the class object."""
        method = self.schema.resolve_class_method(class_name, method_name)
        return self._dispatch(method, class_name, class_name, args)

    def _dispatch(self, method: MethodDef, class_name: str,
                  receiver: Any, args: tuple[Any, ...]) -> Any:
        if method.implementation is None:
            raise MethodInvocationError(
                f"method {class_name}.{method.name} has no implementation")
        if len(args) != method.arity:
            raise MethodInvocationError(
                f"method {class_name}.{method.name} expects {method.arity} "
                f"argument(s), got {len(args)}")
        self.statistics.record_method_call(
            class_name, method.name,
            external=method.is_external(),
            class_level=method.class_level,
            cost=method.cost_per_call)
        try:
            return method.implementation(self._context, receiver, *args)
        except (ObjectNotFoundError, SchemaError, MethodInvocationError):
            raise
        except Exception as exc:  # surface implementation bugs with context
            raise MethodInvocationError(
                f"method {class_name}.{method.name} failed: {exc}") from exc

    def method_def(self, class_name: str, method_name: str,
                   class_level: bool = False) -> MethodDef:
        if class_level:
            return self.schema.resolve_class_method(class_name, method_name)
        return self.schema.resolve_instance_method(class_name, method_name)

    # ------------------------------------------------------------------
    # pre-resolved dispatch (compiled execution engine)
    # ------------------------------------------------------------------
    def instance_invoker(self, class_name: str, method_name: str):
        """Resolve an instance method once and return a fast per-call invoker.

        The invoker performs the same work as :meth:`invoke` — receiver
        existence check, arity check, statistics recording, error wrapping —
        but with method resolution and metadata lookups hoisted out of the
        per-call path.  Used by :mod:`repro.physical.compiler` to pre-bind
        method dispatch per receiver class.
        """
        method = self.schema.resolve_instance_method(class_name, method_name)
        return self._make_invoker(method, class_name, check_receiver=True)

    def class_invoker(self, class_name: str, method_name: str):
        """Like :meth:`instance_invoker` for class-level (OWNTYPE) methods."""
        method = self.schema.resolve_class_method(class_name, method_name)
        return self._make_invoker(method, class_name, check_receiver=False)

    def _make_invoker(self, method: MethodDef, class_name: str,
                      check_receiver: bool):
        implementation = method.implementation
        if implementation is None:
            raise MethodInvocationError(
                f"method {class_name}.{method.name} has no implementation")
        objects = self._objects
        context = self._context
        method_name = method.name
        arity = method.arity
        # Statistics recording is inlined with the counters pre-bound:
        # reset() clears them in place, so the references stay valid.
        statistics = self.statistics
        call_counter = statistics.method_calls
        external_counter = (statistics.external_method_calls
                            if method.is_external() else None)
        class_counter = (statistics.class_method_calls
                         if method.class_level else None)
        cost = method.cost_per_call
        key = f"{class_name}.{method_name}"

        def invoke(receiver: Any, args: tuple[Any, ...]) -> Any:
            if check_receiver and receiver not in objects:
                raise ObjectNotFoundError(f"no object with OID {receiver}")
            if len(args) != arity:
                raise MethodInvocationError(
                    f"method {class_name}.{method_name} expects {arity} "
                    f"argument(s), got {len(args)}")
            call_counter[key] += 1
            if external_counter is not None:
                external_counter[key] += 1
            if class_counter is not None:
                class_counter[key] += 1
            statistics.method_cost_units += cost
            try:
                return implementation(context, receiver, *args)
            except (ObjectNotFoundError, SchemaError, MethodInvocationError):
                raise
            except Exception as exc:  # surface implementation bugs with context
                raise MethodInvocationError(
                    f"method {class_name}.{method_name} failed: {exc}") from exc

        return invoke

    def property_reader(self, class_name: str, prop: str):
        """Validate a property once and return a fast per-read accessor.

        The accessor charges the same ``property_reads`` counter as
        :meth:`value` but skips the per-call schema validation."""
        if not self.schema.has_property(class_name, prop):
            raise SchemaError(
                f"class {class_name!r} has no property {prop!r}")
        objects = self._objects
        record = self.statistics.record_property_read

        def read(oid: OID) -> Any:
            try:
                obj = objects[oid]
            except KeyError:
                raise ObjectNotFoundError(f"no object with OID {oid}") from None
            record()
            return obj.get_or_none(prop)

        return read

    # ------------------------------------------------------------------
    # schema DDL
    # ------------------------------------------------------------------
    def create_class(self, name: str, superclass: Optional[str] = None,
                     properties: Iterable[PropertyDef] = ()) -> ClassDef:
        """Register a new class (the ``CREATE CLASS`` DDL entry point).

        References are validated *before* the schema is touched so a bad
        statement cannot leave a half-registered class behind; the schema
        version bump evicts every cached plan (new classes change the plan
        space for deep-extension scans of their superclasses).
        """
        properties = list(properties)
        if self.schema.has_class(name):
            raise SchemaError(f"duplicate class {name!r}")
        if superclass is not None and not self.schema.has_class(superclass):
            raise SchemaError(
                f"class {name!r} inherits from unknown class {superclass!r}")
        for prop in properties:
            if prop.target_class is not None and prop.target_class != name \
                    and not self.schema.has_class(prop.target_class):
                raise SchemaError(
                    f"property {name}.{prop.name} refers to unknown class "
                    f"{prop.target_class!r}")
        class_def = ClassDef(name=name, superclass=superclass)
        for prop in properties:
            class_def.add_property(prop)
        self.schema.add_class(class_def)
        self.bump_schema_version()
        return class_def

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_hash_index(self, class_name: str, prop: str) -> HashIndex:
        """Create an exact-match index and backfill it from existing objects
        (objects whose property is None are not indexed)."""
        index = self.indexes.create_hash_index(class_name, prop)
        for oid in self.extension(class_name):
            value = self.get(oid).get_or_none(prop)
            if value is not None:
                index.insert(value, oid)
        self.versions.index += 1
        return index

    def create_sorted_index(self, class_name: str, prop: str) -> SortedIndex:
        """Create an ordered index and backfill it from existing objects
        (objects whose property is None are not indexed)."""
        index = self.indexes.create_sorted_index(class_name, prop)
        for oid in self.extension(class_name):
            value = self.get(oid).get_or_none(prop)
            if value is not None:
                index.insert(value, oid)
        self.versions.index += 1
        return index

    def drop_index(self, class_name: str, prop: str) -> None:
        """Drop the user-defined index on ``class_name.prop``.

        Plans compiled against the index become unexecutable; the version
        bump lets the service layer's plan cache evict them."""
        self.indexes.drop(class_name, prop)
        self.versions.index += 1

    def create_text_index(self, class_name: str, prop: str) -> InvertedTextIndex:
        """Create an IR index over a STRING property and backfill it."""
        key = (class_name, prop)
        if key in self._text_indexes:
            raise SchemaError(f"text index on {class_name}.{prop} already exists")
        engine = InvertedTextIndex()
        self._text_indexes[key] = engine
        for oid in self.extension(class_name):
            content = self.get(oid).get_or_none(prop)
            if content is not None:
                engine.index_text(oid, str(content))
        self.versions.index += 1
        return engine

    def drop_text_index(self, class_name: str, prop: str) -> None:
        """Drop the IR text index on ``class_name.prop``."""
        key = (class_name, prop)
        if key not in self._text_indexes:
            raise SchemaError(f"no text index on {class_name}.{prop} to drop")
        del self._text_indexes[key]
        self.versions.index += 1

    def text_index(self, class_name: str, prop: str) -> Optional[InvertedTextIndex]:
        return self._text_indexes.get((class_name, prop))

    def text_indexes(self) -> Iterable[tuple[tuple[str, str], InvertedTextIndex]]:
        return list(self._text_indexes.items())

    # ------------------------------------------------------------------
    # statistics helpers
    # ------------------------------------------------------------------
    def analyze(self, class_name: Optional[str] = None,
                **options: Any) -> list[ClassStatistics]:
        """Refresh the optimizer-statistics catalog (the ``ANALYZE`` entry
        point).

        Collects per-class/per-property distribution statistics (and timed
        per-method cost calibration) for *class_name*, or for every class
        when omitted, then bumps ``versions.stats`` so the service layer's
        plan cache re-optimizes every cached plan against the new estimates.
        *options* are forwarded to
        :meth:`~repro.datamodel.statistics.StatisticsCatalog.analyze`.
        """
        if class_name is not None and not self.schema.has_class(class_name):
            raise SchemaError(f"unknown class {class_name!r}")
        collected = self.stats_catalog.analyze(self, class_name=class_name,
                                               **options)
        self.versions.stats += 1
        return collected

    def note_stats_correction(self) -> None:
        """Record that the feedback loop changed the statistics catalog.

        Bumping ``versions.stats`` is what makes the plan cache's strict
        version check fail for every plan optimized against the pre-feedback
        estimates — the next execution replans with the corrected numbers.
        """
        self.versions.stats += 1

    def reset_statistics(self) -> None:
        """Reset all work counters (database plus external engines)."""
        self.statistics.reset()
        for engine in self._text_indexes.values():
            engine.reset_counters()

    def work_snapshot(self) -> dict[str, float]:
        """Combined snapshot of database and external-engine counters."""
        snapshot = dict(self.statistics.snapshot())
        ir_cost = 0.0
        ir_calls = 0
        for engine in self._text_indexes.values():
            counters = engine.counters()
            ir_cost += counters["cost_units"]
            ir_calls += counters["contains_calls"] + counters["retrieve_calls"]
        snapshot["ir_cost_units"] = ir_cost
        snapshot["ir_calls"] = ir_calls
        snapshot["total_cost_units"] = snapshot["method_cost_units"] + ir_cost
        return snapshot

    def bump_schema_version(self) -> None:
        """Signal an in-place schema mutation (class/property/method change)
        so that the service layer re-prepares every cached plan."""
        self.versions.schema += 1

    @property
    def context(self) -> InvocationContext:
        return self._context

    def __str__(self) -> str:
        return (f"Database({self.name!r}, {self.object_count()} objects, "
                f"{len(self.schema.classes)} classes)")
