"""Shared measurement helpers for the benchmark suite.

Benchmarks report two kinds of numbers:

* wall-clock timings, collected by pytest-benchmark;
* *logical work* — deterministic counters from the database layer (method
  calls, external calls, property reads, abstract cost units) that make the
  plan comparison independent of the Python interpreter's speed.

The helpers here execute a query under a session, capture the work
difference, and format small report tables so the benchmarks print the
series that EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.session import QueryResult, Session

__all__ = ["Measurement", "measure_query", "comparison_table", "format_table",
           "speedup"]


@dataclass
class Measurement:
    """Execution measurements of one query under one plan."""

    label: str
    rows: int
    seconds: float
    work: dict[str, float] = field(default_factory=dict)
    plans_explored: int = 0
    optimization_seconds: float = 0.0

    @property
    def cost_units(self) -> float:
        return self.work.get("total_cost_units", 0.0)

    @property
    def external_calls(self) -> float:
        return self.work.get("external_method_calls", 0.0)

    @property
    def method_calls(self) -> float:
        return self.work.get("method_calls", 0.0)

    @property
    def property_reads(self) -> float:
        return self.work.get("property_reads", 0.0)

    def as_row(self) -> dict[str, float | str]:
        return {
            "label": self.label,
            "rows": self.rows,
            "seconds": round(self.seconds, 4),
            "cost_units": round(self.cost_units, 1),
            "method_calls": int(self.method_calls),
            "external_calls": int(self.external_calls),
            "property_reads": int(self.property_reads),
        }


def measure_query(session: Session, query: str, label: str,
                  optimize: bool = True) -> Measurement:
    """Execute *query* once and capture wall time plus work counters."""
    session.database.reset_statistics()
    started = time.perf_counter()
    result: QueryResult = session.execute(query, optimize=optimize)
    elapsed = time.perf_counter() - started
    measurement = Measurement(
        label=label,
        rows=len(result),
        seconds=elapsed,
        work=dict(result.work))
    if result.optimization is not None:
        measurement.plans_explored = (
            result.optimization.statistics.logical_plans_explored)
        measurement.optimization_seconds = (
            result.optimization.statistics.optimization_seconds)
    return measurement


def speedup(baseline: Measurement, optimized: Measurement,
            metric: str = "cost_units") -> float:
    """Ratio baseline/optimized for the given metric (∞-safe)."""
    base = getattr(baseline, metric)
    best = getattr(optimized, metric)
    if best <= 0:
        return float("inf") if base > 0 else 1.0
    return base / best


def comparison_table(measurements: Sequence[Measurement]) -> str:
    """Format measurements as an aligned text table."""
    rows = [m.as_row() for m in measurements]
    return format_table(rows)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None) -> str:
    """Minimal fixed-width table formatter (no third-party dependency)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: max(len(str(col)),
                       max(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines)
