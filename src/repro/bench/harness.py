"""Shared measurement helpers for the benchmark suite.

Benchmarks report two kinds of numbers:

* wall-clock timings, collected by pytest-benchmark;
* *logical work* — deterministic counters from the database layer (method
  calls, external calls, property reads, abstract cost units) that make the
  plan comparison independent of the Python interpreter's speed.

The helpers here execute a query under a session, capture the work
difference, and format small report tables so the benchmarks print the
series that EXPERIMENTS.md records.

Every benchmark is also runnable standalone (``python benchmarks/
bench_expN_*.py [--quick] [--json PATH] [--check]``) through
:func:`standalone_main`, which provides the shared CLI: ``--quick`` shrinks
databases/rounds for CI smoke runs, ``--json`` writes the machine-readable
perf record (:func:`perf_record` fixes its envelope), and ``--check`` turns
a benchmark's acceptance condition into the exit code.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.session import QueryResult, Session

__all__ = ["Measurement", "measure_query", "comparison_table", "format_table",
           "speedup", "best_of", "perf_record", "standalone_main"]


@dataclass
class Measurement:
    """Execution measurements of one query under one plan."""

    label: str
    rows: int
    seconds: float
    work: dict[str, float] = field(default_factory=dict)
    plans_explored: int = 0
    optimization_seconds: float = 0.0

    @property
    def cost_units(self) -> float:
        return self.work.get("total_cost_units", 0.0)

    @property
    def external_calls(self) -> float:
        return self.work.get("external_method_calls", 0.0)

    @property
    def method_calls(self) -> float:
        return self.work.get("method_calls", 0.0)

    @property
    def property_reads(self) -> float:
        return self.work.get("property_reads", 0.0)

    def as_row(self) -> dict[str, float | str]:
        return {
            "label": self.label,
            "rows": self.rows,
            "seconds": round(self.seconds, 4),
            "cost_units": round(self.cost_units, 1),
            "method_calls": int(self.method_calls),
            "external_calls": int(self.external_calls),
            "property_reads": int(self.property_reads),
        }


def measure_query(session: Session, query: str, label: str,
                  optimize: bool = True) -> Measurement:
    """Execute *query* once and capture wall time plus work counters."""
    session.database.reset_statistics()
    started = time.perf_counter()
    result: QueryResult = session.execute(query, optimize=optimize)
    elapsed = time.perf_counter() - started
    measurement = Measurement(
        label=label,
        rows=len(result),
        seconds=elapsed,
        work=dict(result.work))
    if result.optimization is not None:
        measurement.plans_explored = (
            result.optimization.statistics.logical_plans_explored)
        measurement.optimization_seconds = (
            result.optimization.statistics.optimization_seconds)
    return measurement


def speedup(baseline: Measurement, optimized: Measurement,
            metric: str = "cost_units") -> float:
    """Ratio baseline/optimized for the given metric (∞-safe)."""
    base = getattr(baseline, metric)
    best = getattr(optimized, metric)
    if best <= 0:
        return float("inf") if base > 0 else 1.0
    return base / best


def comparison_table(measurements: Sequence[Measurement]) -> str:
    """Format measurements as an aligned text table."""
    rows = [m.as_row() for m in measurements]
    return format_table(rows)


def best_of(function: Callable[[], object], rounds: int) -> float:
    """Best wall-clock time of *rounds* calls to *function* (seconds)."""
    best = float("inf")
    for _ in range(max(rounds, 1)):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def perf_record(benchmark: str, quick: bool, cases: Sequence[Mapping[str, object]],
                **extra: object) -> dict:
    """The JSON perf-record envelope shared by all benchmarks."""
    record: dict = {
        "benchmark": benchmark,
        "quick": quick,
        "python": sys.version.split()[0],
    }
    record.update(extra)
    record["cases"] = list(cases)
    return record


def standalone_main(benchmark: str,
                    run_cases: Callable[[bool], list[dict]],
                    description: str = "",
                    summarize: Optional[Callable[[list[dict]], dict]] = None,
                    check: Optional[Callable[[dict], Optional[str]]] = None,
                    argv: Optional[list[str]] = None) -> int:
    """Shared standalone CLI for one benchmark.

    *run_cases(quick)* produces the case records; *summarize(cases)* may add
    record-level summary fields; *check(record)* returns an error message
    (exit code 1) when the benchmark's acceptance condition fails and
    ``--check`` was requested.
    """
    parser = argparse.ArgumentParser(
        description=description or f"{benchmark} benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="smaller databases and fewer rounds (CI smoke)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the JSON perf record to PATH")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the acceptance condition fails")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="workload-generation seed (default: "
                             "REPRO_BENCH_SEED or 42)")
    args = parser.parse_args(argv)

    if args.seed is not None:
        # The benchmark conftests read the seed lazily per database, so
        # setting it before run_cases makes the whole run deterministic.
        os.environ["REPRO_BENCH_SEED"] = str(args.seed)
        random.seed(args.seed)

    cases = run_cases(args.quick)
    extra = summarize(cases) if summarize is not None else {}
    try:
        seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    except ValueError:
        seed = 42
    record = perf_record(benchmark, args.quick, cases, seed=seed, **extra)

    print(f"{benchmark}:")
    print(format_table(cases))
    print()
    print(json.dumps(record, indent=2, default=str))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, default=str)
        print(f"\nperf record written to {args.json}")

    if args.check and check is not None:
        failure = check(record)
        if failure:
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    return 0


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None) -> str:
    """Minimal fixed-width table formatter (no third-party dependency)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: max(len(str(col)),
                       max(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines)
