"""Benchmark support: measurement helpers shared by the ``benchmarks/`` tree."""

from repro.bench.harness import (
    Measurement,
    best_of,
    comparison_table,
    format_table,
    measure_query,
    perf_record,
    speedup,
    standalone_main,
)

__all__ = [
    "Measurement",
    "best_of",
    "measure_query",
    "comparison_table",
    "format_table",
    "perf_record",
    "speedup",
    "standalone_main",
]
