"""Benchmark support: measurement helpers shared by the ``benchmarks/`` tree."""

from repro.bench.harness import (
    Measurement,
    comparison_table,
    format_table,
    measure_query,
    speedup,
)

__all__ = [
    "Measurement",
    "measure_query",
    "comparison_table",
    "format_table",
    "speedup",
]
