"""High-level query session: parse → analyze → translate → optimize → execute.

:class:`Session` is the public entry point a downstream user interacts with.
It owns a database, a schema-specific optimizer (generated from the
database's schema and the registered semantic knowledge) and exposes the full
pipeline as well as each individual stage for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro.algebra.operators import LogicalOperator
from repro.algebra.printer import format_tree
from repro.algebra.translate import TranslationResult, translate_query
from repro.api.router import StatementRouter
from repro.datamodel.database import Database
from repro.errors import ReproError
from repro.optimizer.generator import OptimizerGenerator
from repro.optimizer.knowledge import SchemaKnowledge
from repro.optimizer.search import (
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
)
from repro.physical.evaluator import make_hashable
from repro.physical.executor import Row, execute_plan
from repro.physical.parallel import default_parallelism
from repro.physical.naive import naive_implementation
from repro.physical.plans import PhysicalOperator, describe_physical_tree
from repro.physical.profile import (ExplainReport, PlanProfile,
                                    estimated_vs_actual,
                                    render_explain_analyze)
from repro.service.prepared import PreparedExecutable
from repro.telemetry.spans import Tracer, child_span
from repro.vql.analyzer import AnalyzedQuery, analyze_query
from repro.vql.ast import Query
from repro.vql.bindings import ParameterValues, bind_query, resolve_bindings
from repro.vql.parser import parse_query

__all__ = ["QueryResult", "Session"]

QueryLike = Union[str, Query]


@dataclass
class QueryResult:
    """The outcome of executing one query."""

    rows: list[Row]
    output_ref: str
    physical_plan: PhysicalOperator
    logical_plan: LogicalOperator
    optimization: Optional[OptimizationResult] = None
    work: dict[str, float] = field(default_factory=dict)

    @property
    def values(self) -> list[Any]:
        """The values of the query's output reference, in row order."""
        return [row.get(self.output_ref) for row in self.rows]

    def value_set(self) -> set[Any]:
        """The output values as a set (hashable representations)."""
        return {make_hashable(value) for value in self.values}

    def __len__(self) -> int:
        return len(self.rows)


class Session:
    """A connection-like object bundling a database with its optimizer.

    ``parallelism`` is the intra-query degree-of-parallelism knob: with a
    degree of 2 or more the generated optimizer may choose morsel-driven
    parallel operators for method-bearing work (the degree becomes part of
    the physical plan).  ``None`` uses the ``REPRO_PARALLEL_DEFAULT``
    environment variable, defaulting to 1 (sequential plans only).
    """

    def __init__(self, database: Database,
                 knowledge: Optional[SchemaKnowledge] = None,
                 optimizer: Optional[Optimizer] = None,
                 options: Optional[OptimizerOptions] = None,
                 exclude_tags: Sequence[str] = (),
                 parallelism: Optional[int] = None,
                 tracing: bool = False,
                 tracer: Optional[Tracer] = None):
        self.database = database
        self.schema = database.schema
        self.knowledge = knowledge or SchemaKnowledge(self.schema)
        #: statement tracer (disabled unless ``tracing=True`` or an enabled
        #: tracer is supplied) — see :mod:`repro.telemetry`
        self.tracer = tracer if tracer is not None else Tracer(enabled=tracing)
        self.parallelism = (default_parallelism() if parallelism is None
                            else max(parallelism, 1))
        self._generator = OptimizerGenerator(self.schema, self.knowledge,
                                             options=options)
        if optimizer is not None:
            self.optimizer = optimizer
        else:
            self.optimizer = self._generator.generate(
                database=database, exclude_tags=exclude_tags, options=options,
                parallelism=self.parallelism)
        #: shared statement front end: the session supplies its per-call
        #: pipeline as the query runner, so DML WHERE clauses are planned by
        #: this session's optimizer exactly like its queries
        self.router = StatementRouter(
            database,
            run_query=self._execute_analyzed,
            explain_query=self._explain_analyzed)

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def parse(self, query: QueryLike) -> Query:
        if isinstance(query, Query):
            return query
        return parse_query(query)

    def analyze(self, query: QueryLike) -> AnalyzedQuery:
        return analyze_query(self.parse(query), self.schema)

    def translate(self, query: QueryLike) -> TranslationResult:
        return translate_query(self.analyze(query))

    def optimize(self, query: QueryLike) -> OptimizationResult:
        translation = self.translate(query)
        return self.optimizer.optimize(translation.plan)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: QueryLike, optimize: bool = True,
                parameters: ParameterValues = None):
        """Execute one statement and return its result.

        Statement text routes through the shared
        :class:`~repro.api.router.StatementRouter`: ``ACCESS`` queries run
        the full per-call pipeline below and return a :class:`QueryResult`;
        ``INSERT``/``UPDATE``/``DELETE``/DDL return a
        :class:`~repro.api.router.StatementResult`, with mutation WHERE
        clauses planned by this session's optimizer.

        With ``optimize=False`` the canonical logical plan is lowered
        one-to-one to physical operators (the paper's "straightforward
        evaluation"), which is the baseline the benchmarks compare against.

        ``parameters`` binds the query's ``?``/``:name`` placeholders — a
        sequence for positional, a mapping for named parameters.  This path
        substitutes the values before optimization (every execution pays the
        full pipeline); :class:`repro.service.QueryService` is the prepared
        path that optimizes the parametrized shape once.
        """
        if isinstance(query, Query):
            return self._execute_analyzed(
                analyze_query(query, self.schema), parameters, optimize)
        return self.router.execute(query, parameters=parameters,
                                   optimize=optimize)

    def _execute_analyzed(self, analyzed: AnalyzedQuery,
                          parameters: ParameterValues,
                          optimize: bool = True) -> QueryResult:
        """The per-call query pipeline (the router's query runner)."""
        with self.tracer.span("statement", api="session") as span:
            analyzed = self._bind(analyzed, parameters)
            translation = translate_query(analyzed)
            optimization: Optional[OptimizationResult] = None
            if optimize:
                with child_span("optimize"):
                    optimization = self.optimizer.optimize(translation.plan)
                physical = optimization.best_plan
            else:
                physical = naive_implementation(translation.plan)

            before = self.database.work_snapshot()
            rows = execute_plan(physical, self.database)
            after = self.database.work_snapshot()
            work = {key: after[key] - before.get(key, 0.0) for key in after}
            if span is not None:
                span.annotate(rows=len(rows), optimized=optimize)

        return QueryResult(
            rows=rows,
            output_ref=translation.output_ref,
            physical_plan=physical,
            logical_plan=translation.plan,
            optimization=optimization,
            work=work)

    def execute_naive(self, query: QueryLike,
                      parameters: ParameterValues = None) -> QueryResult:
        """Shorthand for ``execute(query, optimize=False)``."""
        return self.execute(query, optimize=False, parameters=parameters)

    @staticmethod
    def _bind(analyzed: AnalyzedQuery,
              parameters: ParameterValues) -> AnalyzedQuery:
        """Substitute parameter values into an analyzed query (no-op for
        parameterless queries called without values)."""
        if not analyzed.parameters and parameters is None:
            return analyzed
        bindings = resolve_bindings(analyzed.parameters, parameters)
        if not bindings:
            return analyzed
        return AnalyzedQuery(
            query=bind_query(analyzed.query, bindings),
            variable_types=analyzed.variable_types,
            parameters=())

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def explain(self, query: QueryLike, optimize: bool = True,
                analyze: bool = False,
                parameters: ParameterValues = None) -> str:
        """Describe how the statement would be evaluated (for
        UPDATE/DELETE: the plan of the derived WHERE-query).

        With ``analyze=True`` — or an ``EXPLAIN ANALYZE <stmt>`` text — the
        plan is *executed* under per-operator instrumentation and the
        report shows estimated vs actual cardinalities plus per-operator
        row/open/elapsed counters (mutations never apply; only their
        WHERE-query runs).  ``parameters`` binds the statement's
        placeholders for such an instrumented run.
        """
        if isinstance(query, Query):
            return self._explain_analyzed(analyze_query(query, self.schema),
                                          optimize=optimize, analyze=analyze,
                                          parameters=parameters)
        return self.router.explain(query, optimize=optimize, analyze=analyze,
                                   parameters=parameters)

    def _explain_analyzed(self, analyzed: AnalyzedQuery,
                          optimize: bool = True, analyze: bool = False,
                          parameters: ParameterValues = None) -> str:
        translation = translate_query(analyzed)
        lines = [
            "query:",
            _indent(str(analyzed.query)),
            "canonical logical plan:",
            _indent(format_tree(translation.plan)),
        ]
        if optimize:
            optimization = self.optimizer.optimize(translation.plan)
            lines.append(optimization.explain())
            physical = optimization.best_plan
        else:
            physical = naive_implementation(translation.plan)
            lines.append("naive physical plan:")
            lines.append(_indent(describe_physical_tree(physical)))
        records = None
        if analyze:
            profile_text, records = self._runtime_profile(analyzed, physical,
                                                          parameters)
            lines.append(profile_text)
        return ExplainReport("\n".join(lines), records)

    def _runtime_profile(self, analyzed: AnalyzedQuery,
                         physical: PhysicalOperator,
                         parameters: ParameterValues) -> tuple[str, list]:
        """Execute *physical* — exactly the plan the report displays — under
        instrumentation (EXPLAIN ANALYZE).

        The plan may carry unbound :class:`Parameter` leaves, so it runs as
        a prepared executable with the resolved bindings active rather than
        through the parameter-substituting one-shot pipeline (which could
        re-optimize to a different plan than the one shown).
        """
        bindings = resolve_bindings(analyzed.parameters, parameters)
        profile = PlanProfile()
        executable = PreparedExecutable(physical, self.database,
                                        profile=profile)
        rows = executable.run(bindings)
        records = estimated_vs_actual(physical, profile,
                                      cost_model=self.optimizer.cost_model)
        report = render_explain_analyze(physical, profile,
                                        cost_model=self.optimizer.cost_model)
        return (f"runtime profile ({len(rows)} rows):\n"
                f"{_indent(report)}"), records

    def trace(self, query: QueryLike, limit: Optional[int] = 50) -> str:
        """Render the optimization trace (the Section 7 demonstrator)."""
        optimization = self.optimize(query)
        return optimization.trace.render(limit=limit)

    def __str__(self) -> str:
        return f"Session({self.database}, knowledge={len(self.knowledge)})"


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
