"""Top-level convenience functions.

These helpers wrap the most common workflow — open a session on a database
with its semantic knowledge and run queries — so that the quickstart example
fits on one screen.

:func:`run_query` used to rebuild the schema-specific optimizer (and re-plan
the query) on every call; it now routes through a per-database
:class:`~repro.service.QueryService`, so repeated one-shot calls against the
same database reuse the generated optimizer, the analyzed statement and the
optimized + compiled plan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

from repro.datamodel.database import Database
from repro.optimizer.knowledge import SchemaKnowledge
from repro.optimizer.search import OptimizerOptions
from repro.service.service import QueryService
from repro.session import QueryResult, Session
from repro.vql.bindings import ParameterValues

__all__ = ["open_session", "open_service", "run_query"]


def open_session(database: Database,
                 knowledge: Optional[SchemaKnowledge] = None,
                 options: Optional[OptimizerOptions] = None,
                 exclude_tags: Sequence[str] = (),
                 parallelism: Optional[int] = None) -> Session:
    """Open a query session on *database*.

    ``knowledge`` carries the schema-specific semantic knowledge about
    methods; without it the generated optimizer only has the predefined
    structural rules.  ``parallelism`` enables morsel-driven parallel plans
    for method-bearing work (default: ``REPRO_PARALLEL_DEFAULT`` or 1).
    """
    return Session(database, knowledge=knowledge, options=options,
                   exclude_tags=exclude_tags, parallelism=parallelism)


def open_service(database: Database,
                 knowledge: Optional[SchemaKnowledge] = None,
                 options: Optional[OptimizerOptions] = None,
                 exclude_tags: Sequence[str] = (),
                 parallelism: Optional[int] = None) -> QueryService:
    """Open a plan-caching, multi-client query service on *database*."""
    return QueryService(database, knowledge=knowledge, options=options,
                        exclude_tags=exclude_tags, parallelism=parallelism)


#: one service per (database, knowledge object) pair.  A cached service
#: necessarily keeps its database alive (it holds compiled plans bound to
#: it), so the cache is a small LRU rather than a weak mapping — evicting
#: the least-recently-used service is what releases a dropped database.
_MAX_CACHED_SERVICES = 8
_SERVICES: "OrderedDict[tuple[int, Optional[int]], QueryService]" = OrderedDict()
_SERVICES_LOCK = threading.Lock()


def _service_for(database: Database,
                 knowledge: Optional[SchemaKnowledge]) -> QueryService:
    key = (id(database), None if knowledge is None else id(knowledge))
    with _SERVICES_LOCK:
        service = _SERVICES.get(key)
        # The identity re-check guards against id() reuse: an entry pins its
        # database/knowledge alive, so a live entry's ids cannot be recycled,
        # but a stale mapping would silently serve the wrong database.
        if (service is not None and service.database is database
                and (knowledge is None or service.knowledge is knowledge)):
            _SERVICES.move_to_end(key)
            return service
        service = QueryService(database, knowledge=knowledge)
        _SERVICES[key] = service
        _SERVICES.move_to_end(key)
        while len(_SERVICES) > _MAX_CACHED_SERVICES:
            _SERVICES.popitem(last=False)
    return service


def run_query(database: Database, query: str,
              knowledge: Optional[SchemaKnowledge] = None,
              optimize: bool = True,
              parameters: ParameterValues = None):
    """One-shot helper: run *query* through the cached service for
    *database* (optimizer generation, statement analysis and plan
    optimization are all paid once per database / query shape).

    *query* may be any statement of the unified language; DDL/DML return
    the router's :class:`~repro.api.router.StatementResult` instead of a
    :class:`~repro.session.QueryResult`.

    .. deprecated:: 1.2
        The keyword signature (``knowledge=``/``optimize=``/
        ``parameters=`` re-supplied on every call) is superseded by the
        statement API: open a :func:`repro.connect` connection once and use
        ``Connection.execute`` — the connection owns the knowledge and
        plan cache, so per-call configuration cannot drift.  ``run_query``
        is retained as a compatibility wrapper over the same router.  As
        of 1.3 the same applies to the per-kind index-DDL aliases
        (``QueryService.create_hash_index`` and friends), which emit
        :class:`DeprecationWarning`; the supported paths are
        ``create_index(..., kind=...)``/``drop_index`` and the
        ``CREATE/DROP [HASH|SORTED|TEXT] INDEX`` statements (see the
        README's public API table).
    """
    service = _service_for(database, knowledge)
    # The caller may have add()ed to the knowledge object since the service
    # was cached; the old per-call behaviour applied such additions
    # immediately, so the service re-syncs before executing.
    service.sync_knowledge()
    result = service.execute(query, parameters=parameters, optimize=optimize)
    if hasattr(result, "as_query_result"):
        return result.as_query_result()
    return result
