"""Top-level convenience functions.

These helpers wrap the most common workflow — open a session on a database
with its semantic knowledge and run queries — so that the quickstart example
fits on one screen.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datamodel.database import Database
from repro.optimizer.knowledge import SchemaKnowledge
from repro.optimizer.search import OptimizerOptions
from repro.session import QueryResult, Session

__all__ = ["open_session", "run_query"]


def open_session(database: Database,
                 knowledge: Optional[SchemaKnowledge] = None,
                 options: Optional[OptimizerOptions] = None,
                 exclude_tags: Sequence[str] = ()) -> Session:
    """Open a query session on *database*.

    ``knowledge`` carries the schema-specific semantic knowledge about
    methods; without it the generated optimizer only has the predefined
    structural rules.
    """
    return Session(database, knowledge=knowledge, options=options,
                   exclude_tags=exclude_tags)


def run_query(database: Database, query: str,
              knowledge: Optional[SchemaKnowledge] = None,
              optimize: bool = True) -> QueryResult:
    """One-shot helper: open a session and execute *query*."""
    session = open_session(database, knowledge=knowledge)
    return session.execute(query, optimize=optimize)
