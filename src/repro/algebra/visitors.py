"""Generic tree-rewriting helpers for logical algebra operators.

The optimizer applies rules at arbitrary positions inside an operator tree;
these helpers centralize the bottom-up/top-down rewriting plumbing so rule
code deals only with local patterns.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.algebra.operators import LogicalOperator

__all__ = [
    "transform_bottom_up",
    "transform_top_down",
    "replace_node",
    "positions",
    "positions_with_nodes",
    "node_at",
    "replace_at",
]

Rewriter = Callable[[LogicalOperator], Optional[LogicalOperator]]


def transform_bottom_up(operator: LogicalOperator,
                        rewrite: Rewriter) -> LogicalOperator:
    """Apply *rewrite* to every node, children first.

    *rewrite* returns a replacement node or ``None`` to keep the node.
    """
    children = operator.inputs()
    if children:
        new_children = [transform_bottom_up(child, rewrite) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            operator = operator.with_inputs(new_children)
    replacement = rewrite(operator)
    return operator if replacement is None else replacement


def transform_top_down(operator: LogicalOperator,
                       rewrite: Rewriter) -> LogicalOperator:
    """Apply *rewrite* to every node, parents first."""
    replacement = rewrite(operator)
    if replacement is not None:
        operator = replacement
    children = operator.inputs()
    if not children:
        return operator
    new_children = [transform_top_down(child, rewrite) for child in children]
    if any(new is not old for new, old in zip(new_children, children)):
        operator = operator.with_inputs(new_children)
    return operator


def replace_node(root: LogicalOperator, old: LogicalOperator,
                 new: LogicalOperator) -> LogicalOperator:
    """Replace every structural occurrence of *old* below *root* by *new*."""

    def rewrite(node: LogicalOperator) -> Optional[LogicalOperator]:
        return new if node == old else None

    return transform_bottom_up(root, rewrite)


def positions(root: LogicalOperator) -> Iterator[tuple[int, ...]]:
    """Yield the tree position (path of child indexes) of every node."""

    def visit(node: LogicalOperator, path: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        yield path
        for index, child in enumerate(node.inputs()):
            yield from visit(child, path + (index,))

    return visit(root, ())


def positions_with_nodes(root: LogicalOperator
                         ) -> Iterator[tuple[tuple[int, ...], LogicalOperator]]:
    """Yield ``(path, node)`` pairs in one pre-order traversal.

    Equivalent to pairing :func:`positions` with :func:`node_at` but without
    re-walking the tree from the root for every position.
    """

    def visit(node: LogicalOperator, path: tuple[int, ...]
              ) -> Iterator[tuple[tuple[int, ...], LogicalOperator]]:
        yield path, node
        for index, child in enumerate(node.inputs()):
            yield from visit(child, path + (index,))

    return visit(root, ())


def node_at(root: LogicalOperator, path: tuple[int, ...]) -> LogicalOperator:
    """The node at tree position *path* (as produced by :func:`positions`)."""
    node = root
    for index in path:
        node = node.inputs()[index]
    return node


def replace_at(root: LogicalOperator, path: tuple[int, ...],
               new: LogicalOperator) -> LogicalOperator:
    """Return a copy of *root* with the node at *path* replaced by *new*."""
    if not path:
        return new
    index = path[0]
    children = list(root.inputs())
    children[index] = replace_at(children[index], path[1:], new)
    return root.with_inputs(children)
