"""Normalization: general algebra → restricted algebra.

Section 6.1 argues that both algebras have the same expressive power because
*expression composition* in operator parameters can be translated to
*operator composition*.  This module performs that translation: every complex
parameter expression is decomposed into a chain of ``map_*`` operators
computing intermediate references, followed by an atomic selection/join,
followed by a projection that removes the intermediate references again
(mirroring the ``project<..., Ref(?A)>`` wrappers in the paper's Example 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    PropertyAccess,
    UnaryOp,
    Var,
)
from repro.algebra.operators import (
    Diff,
    ExpressionSource,
    Flat,
    Get,
    Join,
    LogicalOperator,
    Map,
    NaturalJoin,
    Project,
    Select,
    Union,
)
from repro.algebra.restricted import (
    CrossProduct,
    FlatMethod,
    FlatProperty,
    FlatRef,
    JoinCmp,
    MapClassMethod,
    MapConst,
    MapExtent,
    MapMethod,
    MapOperator,
    MapProperty,
    Operand,
    SelectCmp,
)
from repro.errors import AlgebraError

__all__ = ["Normalizer", "normalize"]

#: comparison operators usable directly in select_cmp / join_cmp
_ATOMIC_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=", "IS-IN", "IS-SUBSET")


def normalize(plan: LogicalOperator) -> LogicalOperator:
    """Translate *plan* from the general to the restricted algebra."""
    return Normalizer().normalize(plan)


@dataclass
class Normalizer:
    """Stateful normalizer (carries the temporary-reference counter)."""

    _counter: int = 0
    temp_prefix: str = "_t"

    def fresh_ref(self) -> str:
        self._counter += 1
        return f"{self.temp_prefix}{self._counter}"

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def normalize(self, plan: LogicalOperator) -> LogicalOperator:
        original_refs = plan.refs()

        if isinstance(plan, (Get, ExpressionSource)):
            return plan
        if isinstance(plan, Select):
            result = self._normalize_select(plan)
        elif isinstance(plan, Join):
            result = self._normalize_join(plan)
        elif isinstance(plan, NaturalJoin):
            result = NaturalJoin(self.normalize(plan.left), self.normalize(plan.right))
        elif isinstance(plan, Union):
            result = Union(self.normalize(plan.left), self.normalize(plan.right))
        elif isinstance(plan, Diff):
            result = Diff(self.normalize(plan.left), self.normalize(plan.right))
        elif isinstance(plan, Map):
            result = self._normalize_map(plan)
        elif isinstance(plan, Flat):
            result = self._normalize_flat(plan)
        elif isinstance(plan, Project):
            result = Project(plan.kept, self.normalize(plan.input))
        else:
            raise AlgebraError(
                f"cannot normalize operator {plan.describe()} — not part of "
                "the general algebra")

        return self._project_to(result, original_refs)

    def _project_to(self, plan: LogicalOperator,
                    refs: tuple[str, ...]) -> LogicalOperator:
        """Drop temporary references so the output schema matches *refs*."""
        if tuple(sorted(plan.refs())) == tuple(sorted(refs)):
            return plan
        return Project(refs, plan)

    # -- select ---------------------------------------------------------
    def _normalize_select(self, plan: Select) -> LogicalOperator:
        inner = self.normalize(plan.input)
        return self._compile_condition(plan.condition, inner)

    def _compile_condition(self, condition: Expression,
                           plan: LogicalOperator) -> LogicalOperator:
        """Compile a boolean condition into restricted operators + select_cmp."""
        if isinstance(condition, BinaryOp) and condition.op == "AND":
            plan = self._compile_condition(condition.left, plan)
            return self._compile_condition(condition.right, plan)
        if isinstance(condition, BinaryOp) and condition.op in _ATOMIC_COMPARISONS:
            left, plan = self.compile_expression(condition.left, plan)
            right, plan = self.compile_expression(condition.right, plan)
            return SelectCmp(left, condition.op, right, plan)
        # General boolean expression (OR, NOT, a boolean method call, ...):
        # compute it into a reference and compare with TRUE.
        operand, plan = self.compile_expression(condition, plan)
        return SelectCmp(operand, "==", Const(True), plan)

    # -- join -----------------------------------------------------------
    def _normalize_join(self, plan: Join) -> LogicalOperator:
        left = self.normalize(plan.left)
        right = self.normalize(plan.right)
        condition = plan.condition
        if condition == Const(True):
            return CrossProduct(left, right)
        if (isinstance(condition, BinaryOp)
                and condition.op in _ATOMIC_COMPARISONS
                and isinstance(condition.left, Var)
                and isinstance(condition.right, Var)):
            left_refs = set(left.refs())
            right_refs = set(right.refs())
            if condition.left.name in left_refs and condition.right.name in right_refs:
                return JoinCmp(condition.left.name, condition.op,
                               condition.right.name, left, right)
            if condition.left.name in right_refs and condition.right.name in left_refs:
                return JoinCmp(condition.right.name,
                               _mirror_comparison(condition.op),
                               condition.left.name, left, right)
        # Fall back to cross product followed by a compiled selection.
        return self._compile_condition(condition, CrossProduct(left, right))

    # -- map / flat ------------------------------------------------------
    def _normalize_map(self, plan: Map) -> LogicalOperator:
        inner = self.normalize(plan.input)
        return self._bind_expression(plan.expression, inner, plan.ref)

    def _normalize_flat(self, plan: Flat) -> LogicalOperator:
        inner = self.normalize(plan.input)
        expression = plan.expression
        if isinstance(expression, PropertyAccess) and isinstance(expression.base, Var):
            return FlatProperty(plan.ref, expression.prop, expression.base.name, inner)
        if isinstance(expression, MethodCall) and isinstance(expression.receiver, Var):
            args, inner = self._compile_operands(expression.args, inner)
            return FlatMethod(plan.ref, expression.method,
                              expression.receiver.name, args, inner)
        # General case: compute the set into a temporary and flatten it.
        operand, inner = self.compile_expression(expression, inner)
        if isinstance(operand, Const):
            temp = self.fresh_ref()
            inner = MapConst(temp, operand, inner)
            operand = temp
        return FlatRef(plan.ref, operand, inner)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def compile_expression(self, expression: Expression,
                           plan: LogicalOperator
                           ) -> tuple[Operand, LogicalOperator]:
        """Compile *expression* to an operand over *plan*.

        Returns the operand (a reference or a constant) together with the
        plan extended by whatever ``map_*`` operators were required.
        """
        if isinstance(expression, Var):
            if expression.name not in set(plan.refs()):
                raise AlgebraError(
                    f"expression references unknown reference {expression.name!r}")
            return expression.name, plan
        if isinstance(expression, Const):
            return expression, plan
        ref = self.fresh_ref()
        plan = self._bind_expression(expression, plan, ref)
        return ref, plan

    def _compile_operands(self, expressions: tuple[Expression, ...],
                          plan: LogicalOperator
                          ) -> tuple[tuple[Operand, ...], LogicalOperator]:
        operands: list[Operand] = []
        for expression in expressions:
            operand, plan = self.compile_expression(expression, plan)
            operands.append(operand)
        return tuple(operands), plan

    def _bind_expression(self, expression: Expression, plan: LogicalOperator,
                         target: str) -> LogicalOperator:
        """Extend *plan* so that *target* holds the value of *expression*."""
        if isinstance(expression, Const):
            return MapConst(target, expression, plan)
        if isinstance(expression, Var):
            return MapOperator(target, "IDENTITY", (expression.name,), plan)
        if isinstance(expression, ClassExtent):
            return MapExtent(target, expression.class_name, plan)
        if isinstance(expression, PropertyAccess):
            base, plan = self.compile_expression(expression.base, plan)
            if isinstance(base, Const):
                temp = self.fresh_ref()
                plan = MapConst(temp, base, plan)
                base = temp
            return MapProperty(target, expression.prop, base, plan)
        if isinstance(expression, MethodCall):
            receiver, plan = self.compile_expression(expression.receiver, plan)
            if isinstance(receiver, Const):
                temp = self.fresh_ref()
                plan = MapConst(temp, receiver, plan)
                receiver = temp
            args, plan = self._compile_operands(expression.args, plan)
            return MapMethod(target, expression.method, receiver, args, plan)
        if isinstance(expression, ClassMethodCall):
            args, plan = self._compile_operands(expression.args, plan)
            return MapClassMethod(target, expression.class_name,
                                  expression.method, args, plan)
        if isinstance(expression, BinaryOp):
            left, plan = self.compile_expression(expression.left, plan)
            right, plan = self.compile_expression(expression.right, plan)
            return MapOperator(target, expression.op, (left, right), plan)
        if isinstance(expression, UnaryOp):
            operand, plan = self.compile_expression(expression.operand, plan)
            return MapOperator(target, expression.op, (operand,), plan)
        raise AlgebraError(
            f"expression {expression} cannot be decomposed into restricted "
            "algebra operators (tuple/set constructors are not supported in "
            "the restricted normalization)")


def _mirror_comparison(op: str) -> str:
    """The comparison to use when the operands of θ are swapped."""
    mirror = {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
              "==": "==", "!=": "!="}
    if op in mirror:
        return mirror[op]
    raise AlgebraError(f"comparison {op!r} cannot be mirrored")
