"""The restricted query algebra of Section 6.1.

The Volcano optimizer generator can pattern-match on operators and inputs but
not on the *content* of operator arguments; the paper therefore restricts the
operator parameters to atomic expressions and introduces specialized
operators.  The substitution table of Section 6.1 maps the general algebra to
this restricted one::

    select<a1,θ,a2>(S)                    select<a1 θ a2>(S)
    join<a1,θ,a2>(S1,S2)                  join<a1 θ a2>(S1,S2)
    map_property<anew, p, a1>(S)          map<anew, a1.p>(S)
    map_method<anew, m, a1, <a2,...>>(S)  map<anew, a1→m(a2,...)>(S)
    flat_property<anew, p, a1>(S)         flat<anew, a1.p>(S)
    flat_method<anew, m, a1, <a2,...>>(S) flat<anew, a1→m(a2,...)>(S)
    map_operator<anew, ⊕, a1,...,an>(S)   map<anew, ⊕(a1,...,an)>(S)

The operators not mentioned (get, natural_join, union, diff, project) are
shared with :mod:`repro.algebra.operators`.  A few auxiliary operators
(``map_const``, ``map_extent``, ``map_class_method``, ``flat_ref``,
``cross_product``) are needed so that *every* general-algebra expression can
be decomposed into operator composition — this is exactly the
"expression composition on the parameter level becomes operator composition"
argument the paper uses for the equal-expressive-power claim.

θ ranges over the boolean binary operations on built-in data types and ⊕ over
the non-boolean ones, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.algebra.expressions import COMPARISON_OPS, Const, Expression
from repro.algebra.operators import LogicalOperator, references_of
from repro.errors import AlgebraError

__all__ = [
    "Operand",
    "SelectCmp",
    "JoinCmp",
    "CrossProduct",
    "MapProperty",
    "MapMethod",
    "MapClassMethod",
    "MapExtent",
    "MapOperator",
    "MapConst",
    "FlatProperty",
    "FlatMethod",
    "FlatRef",
    "operand_refs",
    "is_restricted_operator",
]

#: an operand of a restricted operator: a reference name or a constant
Operand = Union[str, Const]


def operand_refs(operands: Sequence[Operand]) -> set[str]:
    """The reference names among *operands*."""
    return {op for op in operands if isinstance(op, str)}


def _check_operands(operands: Sequence[Operand], available: set[str],
                    operator_name: str) -> None:
    unknown = operand_refs(operands) - available
    if unknown:
        raise AlgebraError(
            f"{operator_name} uses unknown reference(s) "
            f"{', '.join(sorted(unknown))}")


def _check_new_ref(new_ref: str, available: set[str], operator_name: str) -> None:
    if new_ref in available:
        raise AlgebraError(
            f"{operator_name} introduces existing reference {new_ref!r}")


@dataclass(frozen=True)
class SelectCmp(LogicalOperator):
    """``select<a1, θ, a2>(S)`` — selection on an atomic comparison."""

    left: Operand
    op: str
    right: Operand
    input: LogicalOperator
    name = "select_cmp"

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise AlgebraError(f"select_cmp operator {self.op!r} is not a "
                               "boolean binary operation")
        _check_operands((self.left, self.right), references_of(self.input),
                        "select_cmp")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "SelectCmp":
        (only,) = inputs
        return SelectCmp(self.left, self.op, self.right, only)

    def refs(self) -> tuple[str, ...]:
        return self.input.refs()

    def describe(self) -> str:
        return f"select_cmp<{self.left}, {self.op}, {self.right}>"


@dataclass(frozen=True)
class JoinCmp(LogicalOperator):
    """``join<a1, θ, a2>(S1, S2)`` — θ-join on an atomic comparison."""

    left_ref: str
    op: str
    right_ref: str
    left: LogicalOperator
    right: LogicalOperator
    name = "join_cmp"

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise AlgebraError(f"join_cmp operator {self.op!r} is not a "
                               "boolean binary operation")
        left_refs = references_of(self.left)
        right_refs = references_of(self.right)
        if left_refs & right_refs:
            raise AlgebraError("join_cmp inputs must have disjoint references")
        if self.left_ref not in left_refs:
            raise AlgebraError(
                f"join_cmp left operand {self.left_ref!r} not in left input")
        if self.right_ref not in right_refs:
            raise AlgebraError(
                f"join_cmp right operand {self.right_ref!r} not in right input")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "JoinCmp":
        left, right = inputs
        return JoinCmp(self.left_ref, self.op, self.right_ref, left, right)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.left) | references_of(self.right)))

    def describe(self) -> str:
        return f"join_cmp<{self.left_ref}, {self.op}, {self.right_ref}>"


@dataclass(frozen=True)
class CrossProduct(LogicalOperator):
    """Cartesian product (``join<true>`` of the general algebra)."""

    left: LogicalOperator
    right: LogicalOperator
    name = "cross_product"

    def __post_init__(self) -> None:
        if references_of(self.left) & references_of(self.right):
            raise AlgebraError("cross_product inputs must have disjoint references")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "CrossProduct":
        left, right = inputs
        return CrossProduct(left, right)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.left) | references_of(self.right)))

    def describe(self) -> str:
        return "cross_product"


@dataclass(frozen=True)
class MapProperty(LogicalOperator):
    """``map_property<anew, p, a1>(S)`` — property access as an operator.

    When the value under ``src_ref`` is a set of objects the access is lifted
    (the union of the members' property values), matching the paper's
    convention for expressions such as ``D.sections``."""

    new_ref: str
    prop: str
    src_ref: str
    input: LogicalOperator
    name = "map_property"

    def __post_init__(self) -> None:
        available = references_of(self.input)
        _check_new_ref(self.new_ref, available, "map_property")
        _check_operands((self.src_ref,), available, "map_property")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "MapProperty":
        (only,) = inputs
        return MapProperty(self.new_ref, self.prop, self.src_ref, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        return f"map_property<{self.new_ref}, {self.prop}, {self.src_ref}>"


@dataclass(frozen=True)
class MapMethod(LogicalOperator):
    """``map_method<anew, m, a1, <a2,...>>(S)`` — instance method call."""

    new_ref: str
    method: str
    receiver_ref: str
    args: tuple[Operand, ...]
    input: LogicalOperator
    name = "map_method"

    def __post_init__(self) -> None:
        available = references_of(self.input)
        _check_new_ref(self.new_ref, available, "map_method")
        _check_operands((self.receiver_ref, *self.args), available, "map_method")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "MapMethod":
        (only,) = inputs
        return MapMethod(self.new_ref, self.method, self.receiver_ref,
                         self.args, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return (f"map_method<{self.new_ref}, {self.method}, "
                f"{self.receiver_ref}, <{args}>>")


@dataclass(frozen=True)
class MapClassMethod(LogicalOperator):
    """``map_class_method<anew, C, m, <args>>(S)`` — class-level method call
    (methods as algebraic operators, Section 3.2)."""

    new_ref: str
    class_name: str
    method: str
    args: tuple[Operand, ...]
    input: LogicalOperator
    name = "map_class_method"

    def __post_init__(self) -> None:
        available = references_of(self.input)
        _check_new_ref(self.new_ref, available, "map_class_method")
        _check_operands(self.args, available, "map_class_method")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "MapClassMethod":
        (only,) = inputs
        return MapClassMethod(self.new_ref, self.class_name, self.method,
                              self.args, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return (f"map_class_method<{self.new_ref}, {self.class_name}, "
                f"{self.method}, <{args}>>")


@dataclass(frozen=True)
class MapExtent(LogicalOperator):
    """``map_extent<anew, C>(S)`` — bind the extension of a class to a
    reference (the operator form of a class name used as a value)."""

    new_ref: str
    class_name: str
    input: LogicalOperator
    name = "map_extent"

    def __post_init__(self) -> None:
        _check_new_ref(self.new_ref, references_of(self.input), "map_extent")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "MapExtent":
        (only,) = inputs
        return MapExtent(self.new_ref, self.class_name, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        return f"map_extent<{self.new_ref}, {self.class_name}>"


@dataclass(frozen=True)
class MapOperator(LogicalOperator):
    """``map_operator<anew, ⊕, a1,...,an>(S)`` — built-in data type operation."""

    new_ref: str
    op: str
    operands: tuple[Operand, ...]
    input: LogicalOperator
    name = "map_operator"

    def __post_init__(self) -> None:
        available = references_of(self.input)
        _check_new_ref(self.new_ref, available, "map_operator")
        _check_operands(self.operands, available, "map_operator")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "MapOperator":
        (only,) = inputs
        return MapOperator(self.new_ref, self.op, self.operands, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        operands = ", ".join(str(o) for o in self.operands)
        return f"map_operator<{self.new_ref}, {self.op}, {operands}>"


@dataclass(frozen=True)
class MapConst(LogicalOperator):
    """``map_const<anew, c>(S)`` — bind a constant to a reference."""

    new_ref: str
    value: Const
    input: LogicalOperator
    name = "map_const"

    def __post_init__(self) -> None:
        _check_new_ref(self.new_ref, references_of(self.input), "map_const")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "MapConst":
        (only,) = inputs
        return MapConst(self.new_ref, self.value, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        return f"map_const<{self.new_ref}, {self.value}>"


@dataclass(frozen=True)
class FlatProperty(LogicalOperator):
    """``flat_property<anew, p, a1>(S)`` — one output tuple per element of
    the (set-valued) property."""

    new_ref: str
    prop: str
    src_ref: str
    input: LogicalOperator
    name = "flat_property"

    def __post_init__(self) -> None:
        available = references_of(self.input)
        _check_new_ref(self.new_ref, available, "flat_property")
        _check_operands((self.src_ref,), available, "flat_property")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "FlatProperty":
        (only,) = inputs
        return FlatProperty(self.new_ref, self.prop, self.src_ref, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        return f"flat_property<{self.new_ref}, {self.prop}, {self.src_ref}>"


@dataclass(frozen=True)
class FlatMethod(LogicalOperator):
    """``flat_method<anew, m, a1, <a2,...>>(S)`` — one output tuple per
    element of the method's set-valued result."""

    new_ref: str
    method: str
    receiver_ref: str
    args: tuple[Operand, ...]
    input: LogicalOperator
    name = "flat_method"

    def __post_init__(self) -> None:
        available = references_of(self.input)
        _check_new_ref(self.new_ref, available, "flat_method")
        _check_operands((self.receiver_ref, *self.args), available, "flat_method")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "FlatMethod":
        (only,) = inputs
        return FlatMethod(self.new_ref, self.method, self.receiver_ref,
                          self.args, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return (f"flat_method<{self.new_ref}, {self.method}, "
                f"{self.receiver_ref}, <{args}>>")


@dataclass(frozen=True)
class FlatRef(LogicalOperator):
    """``flat_ref<anew, a1>(S)`` — one output tuple per element of the set
    already bound to ``a1`` (used to flatten previously computed values)."""

    new_ref: str
    src_ref: str
    input: LogicalOperator
    name = "flat_ref"

    def __post_init__(self) -> None:
        available = references_of(self.input)
        _check_new_ref(self.new_ref, available, "flat_ref")
        _check_operands((self.src_ref,), available, "flat_ref")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "FlatRef":
        (only,) = inputs
        return FlatRef(self.new_ref, self.src_ref, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.new_ref}))

    def describe(self) -> str:
        return f"flat_ref<{self.new_ref}, {self.src_ref}>"


_RESTRICTED_TYPES = (
    SelectCmp, JoinCmp, CrossProduct, MapProperty, MapMethod, MapClassMethod,
    MapExtent, MapOperator, MapConst, FlatProperty, FlatMethod, FlatRef,
)


def is_restricted_operator(operator: LogicalOperator) -> bool:
    """True for operators specific to the restricted algebra."""
    return isinstance(operator, _RESTRICTED_TYPES)
