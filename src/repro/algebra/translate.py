"""Translation of analyzed VQL queries into the general query algebra.

Section 4.1 of the paper gives the canonical mapping::

    ACCESS expression(x1,...,xn)
    FROM x1 IN C1, ..., xn IN Cn
    WHERE condition(x1,...,xn)

    ==>  project<a>(
           map<a, expression(a1,...,an)>(
             select<condition(a1,...,an)>(
               join<true>(get<an,Cn>, ... join<true>(get<a1,C1>, get<a2,C2>) ...))))

We keep the range-variable names as algebra references (``a_p`` is simply
``p``), build a left-deep chain of cartesian ``join<true>`` operators for the
class ranges, and encode dependent ranges (``p IN d->paragraphs()``) as
``flat`` operators, which is the iterate-operator encoding of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.algebra.expressions import (
    ClassExtent,
    Const,
    Expression,
    Var,
    free_vars,
)
from repro.algebra.operators import (
    Flat,
    Get,
    Join,
    LogicalOperator,
    Map,
    Project,
    Select,
)
from repro.errors import TranslationError

if TYPE_CHECKING:  # avoid a circular import with the vql package
    from repro.vql.analyzer import AnalyzedQuery

__all__ = ["TranslationResult", "translate_query", "OUTPUT_REF"]

#: reference under which a computed ACCESS expression is returned
OUTPUT_REF = "__result"


@dataclass(frozen=True)
class TranslationResult:
    """The root of the translated plan plus the reference holding the
    query's output values."""

    plan: LogicalOperator
    output_ref: str

    def refs(self) -> tuple[str, ...]:
        return self.plan.refs()


def translate_query(analyzed: "AnalyzedQuery") -> TranslationResult:
    """Translate an analyzed query into the general algebra."""
    query = analyzed.query
    if not query.ranges:
        raise TranslationError("query has no range declarations")

    plan: Optional[LogicalOperator] = None
    bound: set[str] = set()

    for declaration in query.ranges:
        variable = declaration.variable
        source = declaration.source
        if isinstance(source, ClassExtent):
            leaf: LogicalOperator = Get(variable, source.class_name)
            if plan is None:
                plan = leaf
            else:
                plan = Join(Const(True), plan, leaf)
        else:
            # Dependent range: the source expression refers to previously
            # bound variables and is flattened per input tuple.
            unknown = free_vars(source) - bound
            if unknown:
                raise TranslationError(
                    f"range source for {variable!r} uses unbound "
                    f"variable(s) {', '.join(sorted(unknown))}")
            if plan is None:
                raise TranslationError(
                    f"first range declaration ({variable!r}) cannot be "
                    "dependent on other variables")
            plan = Flat(variable, source, plan)
        bound.add(variable)

    assert plan is not None  # guaranteed by the range loop

    if query.where is not None:
        plan = Select(query.where, plan)

    access = query.access
    if isinstance(access, Var):
        if access.name not in bound:
            raise TranslationError(
                f"ACCESS clause refers to unbound variable {access.name!r}")
        output_ref = access.name
        plan = Project((output_ref,), plan)
    else:
        plan = Map(OUTPUT_REF, access, plan)
        output_ref = OUTPUT_REF
        plan = Project((output_ref,), plan)

    return TranslationResult(plan=plan, output_ref=output_ref)
