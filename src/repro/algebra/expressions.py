"""Expression nodes.

These nodes serve two purposes:

1. they are the expression part of the VQL abstract syntax tree (the
   ``ACCESS`` expression, ``WHERE`` condition and dependent ``FROM`` sources);
2. they appear as *operator parameters* of the general query algebra
   (Section 3.1 of the paper: methods enter the algebra through the iterate
   operator's lambda bodies).

All nodes are immutable and hashable so that algebra expressions can be used
as memo keys in the optimizer.  Variables (:class:`Var`) denote query/range
variables at the language level and references at the algebra level — the
translation from queries to algebra keeps the names aligned, exactly as in
the paper where range variable ``p`` becomes reference ``a_p``.

:class:`PatternVar` is an expression *pattern* leaf used by the optimizer's
rule matcher; it never appears in executable expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

__all__ = [
    "cached_hash",
    "Expression",
    "Var",
    "Const",
    "Parameter",
    "PropertyAccess",
    "MethodCall",
    "ClassMethodCall",
    "ClassExtent",
    "BinaryOp",
    "UnaryOp",
    "TupleConstructor",
    "SetConstructor",
    "PatternVar",
    "COMPARISON_OPS",
    "LOGICAL_OPS",
    "ARITHMETIC_OPS",
    "free_vars",
    "substitute",
    "replace_subexpression",
    "walk",
    "contains",
    "conjuncts",
    "make_conjunction",
    "rename_vars",
    "methods_used",
    "properties_used",
    "parameters_used",
    "bind_parameters",
]

#: comparison operators of the restricted algebra's θ parameter
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=", "IS-IN", "IS-SUBSET")
LOGICAL_OPS = ("AND", "OR")
ARITHMETIC_OPS = ("+", "-", "*", "/")


def cached_hash(cls):
    """Cache the structural hash of a frozen dataclass on first use.

    Expression and operator trees serve as keys of the optimizer's memo and
    seen-plan structures, and the dataclass-generated ``__hash__`` re-walks
    the entire subtree on every call.  Since the trees are immutable the
    value can be computed once and stored on the instance (outside the
    declared fields, so equality and repr are unaffected).
    """
    generated = cls.__hash__

    def __hash__(self):
        value = self.__dict__.get("_structural_hash")
        if value is None:
            value = generated(self)
            object.__setattr__(self, "_structural_hash", value)
        return value

    cls.__hash__ = __hash__
    return cls


def _postfix_base_str(base: "Expression") -> str:
    """Render a postfix base (property access / method call receiver),
    parenthesizing it whenever re-parsing would otherwise bind differently
    (negative literals, unary/binary operations)."""
    text = str(base)
    needs_parens = isinstance(base, (BinaryOp, UnaryOp)) or (
        isinstance(base, Const) and isinstance(base.value, (int, float))
        and not isinstance(base.value, bool) and base.value < 0)
    return f"({text})" if needs_parens else text


def _freeze(value: Any) -> Any:
    """Make literal values hashable (lists→tuples, sets→frozensets)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


class Expression:
    """Abstract base class of all expression nodes."""

    def children(self) -> tuple["Expression", ...]:
        """The direct sub-expressions of this node."""
        return ()

    def rebuild(self, children: Sequence["Expression"]) -> "Expression":
        """Return a copy of this node with *children* as sub-expressions."""
        if self.children():
            raise NotImplementedError(type(self).__name__)
        return self

    def is_boolean(self) -> bool:
        """Heuristic: does this expression denote a truth value?"""
        return False

    # The dataclass subclasses supply __eq__/__hash__/__repr__.


@cached_hash
@dataclass(frozen=True)
class Var(Expression):
    """A query/range variable or an algebra reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@cached_hash
@dataclass(frozen=True)
class Const(Expression):
    """A literal constant (string, number, boolean, or frozen collection)."""

    value: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", _freeze(self.value))

    def is_boolean(self) -> bool:
        return isinstance(self.value, bool)

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@cached_hash
@dataclass(frozen=True)
class Parameter(Expression):
    """A bind-parameter placeholder (``?`` / ``?3`` positional, ``:name``).

    Parameters are opaque typed constants to the optimizer: a plan prepared
    from a parametrized query is valid for *every* binding, so the plan cache
    can serve repeated executions of the same query shape.  The value is
    supplied at execution time — either by substitution
    (:func:`bind_parameters`, used by the interpretive paths) or by the
    compiled engine's binding environment
    (:class:`repro.service.prepared.BindingEnv`).

    ``key`` is the canonical name: positional parameters use their decimal
    position (``"1"``, ``"2"``, …), named parameters their identifier.
    """

    key: str

    @property
    def is_positional(self) -> bool:
        return self.key.isdigit()

    def __str__(self) -> str:
        if self.is_positional:
            return f"?{self.key}"
        return f":{self.key}"


@cached_hash
@dataclass(frozen=True)
class PropertyAccess(Expression):
    """``base.prop`` — property access, lifted pointwise over sets.

    Following the paper's convention, when ``base`` evaluates to a set of
    objects the access denotes the union of the property values of the
    members (``D.sections``)."""

    base: Expression
    prop: str

    def children(self) -> tuple[Expression, ...]:
        return (self.base,)

    def rebuild(self, children: Sequence[Expression]) -> "PropertyAccess":
        (base,) = children
        return PropertyAccess(base, self.prop)

    def __str__(self) -> str:
        return f"{_postfix_base_str(self.base)}.{self.prop}"


@cached_hash
@dataclass(frozen=True)
class MethodCall(Expression):
    """``receiver→method(args...)`` — instance method invocation."""

    receiver: Expression
    method: str
    args: tuple[Expression, ...] = ()

    def children(self) -> tuple[Expression, ...]:
        return (self.receiver, *self.args)

    def rebuild(self, children: Sequence[Expression]) -> "MethodCall":
        receiver, *args = children
        return MethodCall(receiver, self.method, tuple(args))

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{_postfix_base_str(self.receiver)}->{self.method}({args})"


@cached_hash
@dataclass(frozen=True)
class ClassMethodCall(Expression):
    """``Class→method(args...)`` — class-level (OWNTYPE) method invocation."""

    class_name: str
    method: str
    args: tuple[Expression, ...] = ()

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def rebuild(self, children: Sequence[Expression]) -> "ClassMethodCall":
        return ClassMethodCall(self.class_name, self.method, tuple(children))

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.class_name}->{self.method}({args})"


@cached_hash
@dataclass(frozen=True)
class ClassExtent(Expression):
    """The extension of a class used as a value (e.g. ``p IS-IN Paragraph``)."""

    class_name: str

    def __str__(self) -> str:
        return self.class_name


@cached_hash
@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operation: comparison, logical connective or arithmetic."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Sequence[Expression]) -> "BinaryOp":
        left, right = children
        return BinaryOp(self.op, left, right)

    def is_boolean(self) -> bool:
        return self.op in COMPARISON_OPS or self.op in LOGICAL_OPS

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@cached_hash
@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operation: ``NOT`` or arithmetic negation."""

    op: str
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def rebuild(self, children: Sequence[Expression]) -> "UnaryOp":
        (operand,) = children
        return UnaryOp(self.op, operand)

    def is_boolean(self) -> bool:
        return self.op == "NOT"

    def __str__(self) -> str:
        # NOT is printed parenthesized so that the rendering re-parses with
        # the same structure in any operand position.
        if self.op == "NOT":
            return f"(NOT {self.operand})"
        return f"{self.op}{self.operand}"


@cached_hash
@dataclass(frozen=True)
class TupleConstructor(Expression):
    """``[name: expr, ...]`` — tuple construction in the ACCESS clause."""

    fields: tuple[tuple[str, Expression], ...]

    def children(self) -> tuple[Expression, ...]:
        return tuple(expr for _, expr in self.fields)

    def rebuild(self, children: Sequence[Expression]) -> "TupleConstructor":
        names = [name for name, _ in self.fields]
        return TupleConstructor(tuple(zip(names, children)))

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {expr}" for name, expr in self.fields)
        return f"[{inner}]"


@cached_hash
@dataclass(frozen=True)
class SetConstructor(Expression):
    """``{expr, ...}`` — set construction."""

    elements: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.elements

    def rebuild(self, children: Sequence[Expression]) -> "SetConstructor":
        return SetConstructor(tuple(children))

    def __str__(self) -> str:
        return "{" + ", ".join(str(e) for e in self.elements) + "}"


@cached_hash
@dataclass(frozen=True)
class PatternVar(Expression):
    """A pattern variable (``?x``) binding an arbitrary sub-expression.

    ``restrict`` optionally constrains what the variable may bind to:
    a callable receiving the candidate expression and returning a bool.
    """

    name: str
    restrict: Optional[Callable[[Expression], bool]] = field(
        default=None, compare=False, hash=False)

    def __str__(self) -> str:
        return f"?{self.name}"


# ----------------------------------------------------------------------
# traversal and manipulation helpers
# ----------------------------------------------------------------------
def walk(expr: Expression) -> Iterator[Expression]:
    """Yield *expr* and all its sub-expressions, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def contains(expr: Expression, needle: Expression) -> bool:
    """True when *needle* occurs (structurally) inside *expr*."""
    return any(node == needle for node in walk(expr))


def free_vars(expr: Expression) -> set[str]:
    """The names of all :class:`Var` leaves in *expr*."""
    return {node.name for node in walk(expr) if isinstance(node, Var)}


def methods_used(expr: Expression) -> set[tuple[str, str]]:
    """All ``(kind, method_name)`` pairs used in *expr*, where kind is
    ``"instance"`` or ``"class"``."""
    found: set[tuple[str, str]] = set()
    for node in walk(expr):
        if isinstance(node, MethodCall):
            found.add(("instance", node.method))
        elif isinstance(node, ClassMethodCall):
            found.add(("class", node.method))
    return found


def properties_used(expr: Expression) -> set[str]:
    """All property names accessed in *expr*."""
    return {node.prop for node in walk(expr) if isinstance(node, PropertyAccess)}


def parameters_used(expr: Expression) -> list[str]:
    """Keys of all :class:`Parameter` leaves, in first-occurrence order."""
    found: list[str] = []
    for node in walk(expr):
        if isinstance(node, Parameter) and node.key not in found:
            found.append(node.key)
    return found


def bind_parameters(expr: Expression, bindings: Mapping[str, Any]) -> Expression:
    """Replace every :class:`Parameter` whose key appears in *bindings* with
    the bound value as a :class:`Const` (values are frozen by ``Const``)."""
    if isinstance(expr, Parameter):
        if expr.key in bindings:
            return Const(bindings[expr.key])
        return expr
    children = expr.children()
    if not children:
        return expr
    new_children = [bind_parameters(child, bindings) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def substitute(expr: Expression, mapping: Mapping[str, Expression]) -> Expression:
    """Replace every :class:`Var` whose name appears in *mapping*."""
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    children = expr.children()
    if not children:
        return expr
    new_children = [substitute(child, mapping) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def replace_subexpression(expr: Expression, old: Expression,
                          new: Expression) -> Expression:
    """Replace every structural occurrence of *old* inside *expr* by *new*."""
    if expr == old:
        return new
    children = expr.children()
    if not children:
        return expr
    new_children = [replace_subexpression(child, old, new) for child in children]
    if all(n is o for n, o in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def rename_vars(expr: Expression, renaming: Mapping[str, str]) -> Expression:
    """Rename variables according to *renaming* (name → new name)."""
    return substitute(expr, {old: Var(new) for old, new in renaming.items()})


def conjuncts(expr: Optional[Expression]) -> list[Expression]:
    """Split a condition into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def make_conjunction(parts: Iterable[Expression]) -> Optional[Expression]:
    """Rebuild a condition from conjuncts (None for the empty conjunction)."""
    result: Optional[Expression] = None
    for part in parts:
        result = part if result is None else BinaryOp("AND", result, part)
    return result
