"""Query algebra: expressions, general operators (Section 4.1), restricted
operators (Section 6.1), VQL translation and normalization."""

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    Parameter,
    PatternVar,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
    conjuncts,
    contains,
    free_vars,
    bind_parameters,
    make_conjunction,
    methods_used,
    parameters_used,
    properties_used,
    rename_vars,
    replace_subexpression,
    substitute,
    walk,
)
from repro.algebra.normalize import Normalizer, normalize
from repro.algebra.operators import (
    Diff,
    ExpressionSource,
    Flat,
    Get,
    Join,
    LogicalOperator,
    Map,
    NaturalJoin,
    Project,
    Select,
    Union,
    operator_size,
    references_of,
    walk_operators,
)
from repro.algebra.printer import format_inline, format_tree
from repro.algebra.restricted import (
    CrossProduct,
    FlatMethod,
    FlatProperty,
    FlatRef,
    JoinCmp,
    MapClassMethod,
    MapConst,
    MapExtent,
    MapMethod,
    MapOperator,
    MapProperty,
    SelectCmp,
    is_restricted_operator,
)
from repro.algebra.translate import OUTPUT_REF, TranslationResult, translate_query
from repro.algebra.visitors import (
    node_at,
    positions,
    replace_at,
    replace_node,
    transform_bottom_up,
    transform_top_down,
)

__all__ = [
    # expressions
    "Expression", "Var", "Const", "Parameter", "PropertyAccess", "MethodCall",
    "ClassMethodCall", "ClassExtent", "BinaryOp", "UnaryOp",
    "TupleConstructor", "SetConstructor", "PatternVar",
    "bind_parameters", "parameters_used",
    "free_vars", "substitute", "replace_subexpression", "walk", "contains",
    "conjuncts", "make_conjunction", "rename_vars", "methods_used",
    "properties_used",
    # general operators
    "LogicalOperator", "Get", "Select", "Join", "NaturalJoin", "Union",
    "Diff", "Map", "Flat", "Project", "ExpressionSource",
    "walk_operators", "operator_size", "references_of",
    # restricted operators
    "SelectCmp", "JoinCmp", "CrossProduct", "MapProperty", "MapMethod",
    "MapClassMethod", "MapExtent", "MapOperator", "MapConst",
    "FlatProperty", "FlatMethod", "FlatRef", "is_restricted_operator",
    # translation / normalization / printing / rewriting
    "translate_query", "TranslationResult", "OUTPUT_REF",
    "normalize", "Normalizer",
    "format_tree", "format_inline",
    "transform_bottom_up", "transform_top_down", "replace_node",
    "positions", "node_at", "replace_at",
]
