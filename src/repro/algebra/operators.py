"""The general (logical) query algebra of Section 4.1.

Operators manipulate bulk values of relation type ``{ [a1: D1, ..., an: Dn] }``
where the ``ai`` are called *references*.  Operator parameters may contain
arbitrarily complex expressions — in particular method calls, which is how
method semantics enters the algebra (Section 3.1).

All operator nodes are immutable, hashable dataclasses so that they can serve
as keys of the optimizer's memo structure.  Reference-set computation
(``refs()``) validates the well-formedness conditions the paper states for
each operator (matching reference sets for union/diff, disjointness for join,
fresh reference for map/flat, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.algebra.expressions import Expression, cached_hash, free_vars
from repro.errors import AlgebraError

__all__ = [
    "LogicalOperator",
    "Get",
    "Select",
    "Join",
    "NaturalJoin",
    "Union",
    "Diff",
    "Map",
    "Flat",
    "Project",
    "ExpressionSource",
    "walk_operators",
    "operator_size",
    "references_of",
]


class LogicalOperator:
    """Abstract base class of logical algebra operators."""

    #: short operator name used by printers and rule tracing
    name: str = "operator"

    def inputs(self) -> tuple["LogicalOperator", ...]:
        """The operator's input operators (empty for leaves)."""
        return ()

    def with_inputs(self, inputs: Sequence["LogicalOperator"]) -> "LogicalOperator":
        """Return a copy of this operator with *inputs* substituted."""
        if self.inputs():
            raise NotImplementedError(type(self).__name__)
        if inputs:
            raise AlgebraError(f"{self.name} is a leaf operator")
        return self

    def refs(self) -> tuple[str, ...]:
        """The references of the operator's output relation, sorted."""
        raise NotImplementedError

    def parameters(self) -> tuple[Expression, ...]:
        """The expression parameters of the operator (may be empty)."""
        return ()

    def arity(self) -> int:
        return len(self.inputs())

    def describe(self) -> str:
        """One-line description: name plus parameters."""
        return self.name


def references_of(operator: LogicalOperator) -> set[str]:
    """The reference set of an operator's output, as a set."""
    return set(operator.refs())


@cached_hash
@dataclass(frozen=True)
class Get(LogicalOperator):
    """``get<a, class>`` — the extension of a class as unary tuples."""

    ref: str
    class_name: str
    name = "get"

    def refs(self) -> tuple[str, ...]:
        return (self.ref,)

    def describe(self) -> str:
        return f"get<{self.ref}, {self.class_name}>"


@cached_hash
@dataclass(frozen=True)
class ExpressionSource(LogicalOperator):
    """``source<a, expr>`` — a reference-free, set-valued expression as a
    relation of unary tuples.

    Not part of the paper's §4.1 operator list but needed to represent the
    *result* of applying a query↔method-call equivalence at the logical level
    (e.g. ``Paragraph→retrieve_by_string(s)`` standing alone, as in plan PQ).
    The expression must not mention any references.
    """

    ref: str
    expression: Expression
    name = "source"

    def __post_init__(self) -> None:
        if free_vars(self.expression):
            raise AlgebraError(
                "ExpressionSource expressions must be reference-free, got "
                f"{self.expression}")

    def refs(self) -> tuple[str, ...]:
        return (self.ref,)

    def parameters(self) -> tuple[Expression, ...]:
        return (self.expression,)

    def describe(self) -> str:
        return f"source<{self.ref}, {self.expression}>"


@cached_hash
@dataclass(frozen=True)
class Select(LogicalOperator):
    """``select<condition>(S)`` — keep tuples satisfying the condition."""

    condition: Expression
    input: LogicalOperator
    name = "select"

    def __post_init__(self) -> None:
        unknown = free_vars(self.condition) - references_of(self.input)
        if unknown:
            raise AlgebraError(
                f"select condition uses unknown reference(s) "
                f"{', '.join(sorted(unknown))}")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "Select":
        (only,) = inputs
        return Select(self.condition, only)

    def refs(self) -> tuple[str, ...]:
        return self.input.refs()

    def parameters(self) -> tuple[Expression, ...]:
        return (self.condition,)

    def describe(self) -> str:
        return f"select<{self.condition}>"


@cached_hash
@dataclass(frozen=True)
class Join(LogicalOperator):
    """``join<condition>(S1, S2)`` — θ-join over disjoint reference sets."""

    condition: Expression
    left: LogicalOperator
    right: LogicalOperator
    name = "join"

    def __post_init__(self) -> None:
        left_refs = references_of(self.left)
        right_refs = references_of(self.right)
        overlap = left_refs & right_refs
        if overlap:
            raise AlgebraError(
                f"join inputs must have disjoint references, share "
                f"{', '.join(sorted(overlap))}")
        unknown = free_vars(self.condition) - (left_refs | right_refs)
        if unknown:
            raise AlgebraError(
                f"join condition uses unknown reference(s) "
                f"{', '.join(sorted(unknown))}")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "Join":
        left, right = inputs
        return Join(self.condition, left, right)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.left) | references_of(self.right)))

    def parameters(self) -> tuple[Expression, ...]:
        return (self.condition,)

    def describe(self) -> str:
        return f"join<{self.condition}>"


@cached_hash
@dataclass(frozen=True)
class NaturalJoin(LogicalOperator):
    """``natural_join(S1, S2)`` — join on the shared references."""

    left: LogicalOperator
    right: LogicalOperator
    name = "natural_join"

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "NaturalJoin":
        left, right = inputs
        return NaturalJoin(left, right)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.left) | references_of(self.right)))

    def common_refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.left) & references_of(self.right)))

    def describe(self) -> str:
        return "natural_join"


@cached_hash
@dataclass(frozen=True)
class Union(LogicalOperator):
    """``union(S1, S2)`` over identical reference sets."""

    left: LogicalOperator
    right: LogicalOperator
    name = "union"

    def __post_init__(self) -> None:
        if references_of(self.left) != references_of(self.right):
            raise AlgebraError("union inputs must have identical references")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "Union":
        left, right = inputs
        return Union(left, right)

    def refs(self) -> tuple[str, ...]:
        return self.left.refs()

    def describe(self) -> str:
        return "union"


@cached_hash
@dataclass(frozen=True)
class Diff(LogicalOperator):
    """``diff(S1, S2)`` over identical reference sets."""

    left: LogicalOperator
    right: LogicalOperator
    name = "diff"

    def __post_init__(self) -> None:
        if references_of(self.left) != references_of(self.right):
            raise AlgebraError("diff inputs must have identical references")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "Diff":
        left, right = inputs
        return Diff(left, right)

    def refs(self) -> tuple[str, ...]:
        return self.left.refs()

    def describe(self) -> str:
        return "diff"


@cached_hash
@dataclass(frozen=True)
class Map(LogicalOperator):
    """``map<a, expression>(S)`` — add reference *a* holding the expression
    value computed per input tuple."""

    ref: str
    expression: Expression
    input: LogicalOperator
    name = "map"

    def __post_init__(self) -> None:
        input_refs = references_of(self.input)
        if self.ref in input_refs:
            raise AlgebraError(f"map introduces existing reference {self.ref!r}")
        unknown = free_vars(self.expression) - input_refs
        if unknown:
            raise AlgebraError(
                f"map expression uses unknown reference(s) "
                f"{', '.join(sorted(unknown))}")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "Map":
        (only,) = inputs
        return Map(self.ref, self.expression, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.ref}))

    def parameters(self) -> tuple[Expression, ...]:
        return (self.expression,)

    def describe(self) -> str:
        return f"map<{self.ref}, {self.expression}>"


@cached_hash
@dataclass(frozen=True)
class Flat(LogicalOperator):
    """``flat<a, expression>(S)`` — like map for a set-valued expression,
    producing one output tuple per element of the expression value."""

    ref: str
    expression: Expression
    input: LogicalOperator
    name = "flat"

    def __post_init__(self) -> None:
        input_refs = references_of(self.input)
        if self.ref in input_refs:
            raise AlgebraError(f"flat introduces existing reference {self.ref!r}")
        unknown = free_vars(self.expression) - input_refs
        if unknown:
            raise AlgebraError(
                f"flat expression uses unknown reference(s) "
                f"{', '.join(sorted(unknown))}")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "Flat":
        (only,) = inputs
        return Flat(self.ref, self.expression, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(references_of(self.input) | {self.ref}))

    def parameters(self) -> tuple[Expression, ...]:
        return (self.expression,)

    def describe(self) -> str:
        return f"flat<{self.ref}, {self.expression}>"


@cached_hash
@dataclass(frozen=True)
class Project(LogicalOperator):
    """``project<a1,...,ai>(S)`` — restrict tuples to the listed references
    (duplicate elimination is implied by the set semantics)."""

    kept: tuple[str, ...]
    input: LogicalOperator
    name = "project"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kept", tuple(sorted(set(self.kept))))
        missing = set(self.kept) - references_of(self.input)
        if missing:
            raise AlgebraError(
                f"project keeps unknown reference(s) "
                f"{', '.join(sorted(missing))}")
        if not self.kept:
            raise AlgebraError("project must keep at least one reference")

    def inputs(self) -> tuple[LogicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[LogicalOperator]) -> "Project":
        (only,) = inputs
        return Project(self.kept, only)

    def refs(self) -> tuple[str, ...]:
        return self.kept

    def describe(self) -> str:
        return f"project<{', '.join(self.kept)}>"


# ----------------------------------------------------------------------
# traversal helpers
# ----------------------------------------------------------------------
def walk_operators(operator: LogicalOperator) -> Iterator[LogicalOperator]:
    """Yield *operator* and all operators below it, pre-order."""
    yield operator
    for child in operator.inputs():
        yield from walk_operators(child)


def operator_size(operator: LogicalOperator) -> int:
    """Number of operator nodes in the tree."""
    return sum(1 for _ in walk_operators(operator))
