"""Pretty printers for logical algebra operator trees.

Two formats are provided:

* :func:`format_tree` — an indented multi-line rendering used by
  ``Session.explain`` and the optimization-trace demonstrator;
* :func:`format_inline` — a compact single-line rendering following the
  paper's notation (``select<cond>(get<p, Paragraph>)``), used in rule traces
  and test assertions.
"""

from __future__ import annotations

from repro.algebra.operators import LogicalOperator

__all__ = ["format_tree", "format_inline"]


def format_tree(operator: LogicalOperator, indent: str = "  ") -> str:
    """Indented multi-line rendering of an operator tree."""
    lines: list[str] = []

    def visit(node: LogicalOperator, depth: int) -> None:
        lines.append(indent * depth + node.describe())
        for child in node.inputs():
            visit(child, depth + 1)

    visit(operator, 0)
    return "\n".join(lines)


def format_inline(operator: LogicalOperator) -> str:
    """Compact single-line rendering in the paper's notation."""
    children = operator.inputs()
    if not children:
        return operator.describe()
    inner = ", ".join(format_inline(child) for child in children)
    return f"{operator.describe()}({inner})"
