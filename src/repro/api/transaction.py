"""Client-side transaction state for the deferred-write MVCC protocol.

A :class:`Transaction` is opened by ``BEGIN`` (or
:meth:`repro.api.connection.Connection.begin`): it pins the database
snapshot published at that moment and buffers every mutation as a
:class:`TransactionOp` instead of applying it.  Statements inside the
transaction — queries and the WHERE clauses of its own UPDATE/DELETE
statements — all read that one begin snapshot, so the transaction sees a
stable world regardless of concurrent committers.  At ``COMMIT`` the
service validates the write set first-writer-wins (any target object
committed past the begin snapshot by someone else aborts this
transaction with :class:`~repro.errors.TransactionConflictError`) and
applies every buffered operation atomically under the write gate in one
commit scope.  ``ROLLBACK`` merely drops the buffer and releases the
snapshot — nothing was applied early, so there is nothing to undo.

One documented deviation from read-your-writes SQL transactions: because
writes are deferred, a transaction does **not** observe its own buffered
mutations; every read answers as of the begin snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.datamodel.oid import OID
from repro.vql.analyzer import AnalyzedStatement

__all__ = ["Transaction", "TransactionOp"]


@dataclass
class TransactionOp:
    """One buffered mutation of a transaction.

    ``insert`` carries its raw parameter sets (values are computed at
    apply time, exactly like the autocommit path); ``update``/``delete``
    carry the bindings and the target OIDs that were resolved against the
    begin snapshot when the statement executed — the write set the commit
    validates is the union of these targets.
    """

    kind: str
    analyzed: AnalyzedStatement
    parameter_sets: list = field(default_factory=list)
    bindings: Optional[dict] = None
    targets: tuple[OID, ...] = ()


class Transaction:
    """An open deferred-write transaction (see the module docstring)."""

    __slots__ = ("database", "start_ts", "state", "operations", "_write_set",
                 "_released", "commit_ts")

    def __init__(self, database, start_ts: int):
        self.database = database
        #: the snapshot every statement of this transaction reads
        self.start_ts = start_ts
        #: ``active`` → ``committed`` | ``rolled back``
        self.state = "active"
        #: the commit timestamp once committed (one commit scope, hence
        #: one WAL record under a durable adapter); ``None`` until then
        self.commit_ts: Optional[int] = None
        self.operations: list[TransactionOp] = []
        # dict-as-ordered-set: validation order == first-touch order
        self._write_set: dict[OID, None] = {}
        self._released = False

    @property
    def write_set(self) -> tuple[OID, ...]:
        """Every object OID this transaction will mutate at commit."""
        return tuple(self._write_set)

    @property
    def mutation_count(self) -> int:
        """Buffered mutation statements (insert parameter sets count
        individually, mirroring the legacy buffer's accounting)."""
        total = 0
        for op in self.operations:
            total += len(op.parameter_sets) if op.kind == "insert" else 1
        return total

    def record_write(self, oids: Iterable[OID]) -> None:
        for oid in oids:
            self._write_set.setdefault(oid)

    def release(self) -> None:
        """Release the begin-snapshot pin (idempotent)."""
        if not self._released:
            self._released = True
            self.database.release_snapshot(self.start_ts)

    def __str__(self) -> str:
        return (f"Transaction(start_ts={self.start_ts}, {self.state}, "
                f"{len(self.operations)} op(s))")
