"""The statement router: one dispatch path for queries, DML and DDL.

Every public entry point of the library — ``Session.execute``,
``QueryService.execute``, ``run_query`` and the PEP-249-flavored
``Connection``/``Cursor`` facade — parses statements here and shares one
classification + mutation code path.  What differs between the owners is
only *how queries run*: the router delegates query execution to a
``run_query`` callback, which the service wires to its plan cache and the
session wires to its per-call pipeline.

Mutations reuse the query machinery instead of hand-rolled scans:

* ``UPDATE``/``DELETE`` WHERE clauses are analyzed into an ordinary
  *WHERE-query* (``ACCESS alias FROM alias IN Class WHERE cond``) and
  executed through the same ``run_query`` callback — so mutation
  predicates are planned by the full optimizer (picking up
  ``IndexEqScan``/``IndexRangeScan`` and bind parameters), and a service-
  backed router reuses one cached plan across an ``executemany`` batch;
* ``INSERT`` values compile to per-binding getters (constants and bind
  parameters short-circuit), with ``executemany`` feeding
  :meth:`repro.datamodel.database.Database.create_many` in one bulk
  maintenance pass;
* DDL and every mutation's *apply* phase run under the owner's write guard
  (the service's writer-preferring gate), so in-flight readers drain before
  state changes; plan-cache invalidation rides on the datamodel's version
  clock — schema bumps for ``CREATE CLASS``, index bumps for index DDL,
  data drift for DML.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Union

from repro.algebra.expressions import Const, Expression, Parameter, bind_parameters
from repro.datamodel import ddl
from repro.datamodel.database import Database
from repro.datamodel.oid import OID
from repro.errors import ServiceError, TransactionError
from repro.physical.evaluator import evaluate
from repro.physical.profile import ExplainReport
from repro.telemetry.spans import child_span
from repro.vql.analyzer import AnalyzedQuery, AnalyzedStatement, analyze_statement
from repro.vql.ast import Statement
from repro.vql.bindings import ParameterValues, resolve_bindings
from repro.vql.parser import parse_statement

__all__ = ["StatementResult", "StatementRouter", "QueryRunner"]

#: how owners execute queries: (analyzed query, parameters, optimize) -> result
#: with ``rows`` (list of Row) and ``output_ref`` attributes
QueryRunner = Callable[[AnalyzedQuery, ParameterValues, bool], Any]

StatementInput = Union[str, Statement, AnalyzedStatement]


@dataclass
class StatementResult:
    """The outcome of a DDL or DML statement.

    Mirrors the query results' ``rows``/``__len__`` surface so callers can
    treat every statement execution uniformly; ``rowcount`` counts created,
    updated or deleted objects (0 for DDL).
    """

    kind: str
    rowcount: int = 0
    oids: tuple[OID, ...] = ()
    description: str = ""

    @property
    def rows(self) -> list:
        return []

    @property
    def lastoid(self) -> Optional[OID]:
        """The last OID touched (PEP 249's ``lastrowid`` analogue)."""
        return self.oids[-1] if self.oids else None

    def __len__(self) -> int:
        return self.rowcount


class StatementRouter:
    """Parses, analyzes and dispatches statements for one database."""

    def __init__(self, database: Database,
                 run_query: QueryRunner,
                 explain_query: Optional[Callable[..., str]] = None,
                 write_guard: Optional[Callable[[], Any]] = None,
                 statement_cache_size: int = 256):
        self.database = database
        self._run_query = run_query
        self._explain_query = explain_query
        self._write_guard = write_guard or nullcontext
        # text -> (schema version, analyzed statement): re-analyzed after
        # schema DDL, bounded so ad-hoc texts cannot grow it forever
        self._statements: "OrderedDict[str, tuple[int, AnalyzedStatement]]" = (
            OrderedDict())
        self._statements_capacity = statement_cache_size
        self._statements_lock = threading.Lock()

    # ------------------------------------------------------------------
    # statement resolution
    # ------------------------------------------------------------------
    @property
    def cached_statements(self) -> int:
        """Number of analyzed statements currently cached by text."""
        with self._statements_lock:
            return len(self._statements)

    def analyze(self, statement: StatementInput) -> AnalyzedStatement:
        """Resolve *statement* (text, AST or already analyzed) once."""
        if isinstance(statement, AnalyzedStatement):
            return statement
        if isinstance(statement, Statement):
            return analyze_statement(statement, self.database.schema)
        schema_version = self.database.versions.schema
        with child_span("analyze") as span:
            with self._statements_lock:
                entry = self._statements.get(statement)
                if entry is not None and entry[0] == schema_version:
                    self._statements.move_to_end(statement)
                    if span is not None:
                        span.annotate(cached=True, kind=entry[1].kind)
                    return entry[1]
            analyzed = analyze_statement(parse_statement(statement),
                                         self.database.schema)
            with self._statements_lock:
                self._statements[statement] = (schema_version, analyzed)
                self._statements.move_to_end(statement)
                while len(self._statements) > self._statements_capacity:
                    self._statements.popitem(last=False)
            if span is not None:
                span.annotate(cached=False, kind=analyzed.kind)
        return analyzed

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def execute(self, statement: StatementInput,
                parameters: ParameterValues = None,
                optimize: bool = True) -> Any:
        """Execute one statement.

        Queries return whatever the owner's query runner returns
        (:class:`~repro.session.QueryResult` /
        :class:`~repro.service.service.ServiceResult`); DDL and DML return
        a :class:`StatementResult`.
        """
        analyzed = self.analyze(statement)
        kind = analyzed.kind
        if kind == "select":
            return self._run_query(analyzed.query, parameters, optimize)
        if kind == "insert":
            return self._insert(analyzed, [parameters])
        if kind == "update":
            return self._update(analyzed, parameters, optimize)
        if kind == "delete":
            return self._delete(analyzed, parameters, optimize)
        if kind == "analyze":
            return self._analyze_statistics(analyzed)
        if kind == "explain":
            report = self.explain(analyzed, optimize=optimize,
                                  parameters=parameters)
            return StatementResult(kind="explain", description=report)
        if kind in ("begin", "commit", "rollback"):
            raise TransactionError(
                f"{kind.upper()} requires a transactional connection — "
                "execute it through the repro.api Connection/Cursor facade")
        return self._ddl(analyzed, parameters)

    def executemany(self, statement: StatementInput,
                    parameter_sets: Iterable[ParameterValues],
                    optimize: bool = True) -> StatementResult:
        """Execute one DML statement once per parameter set.

        INSERT batches collapse into a single bulk
        :meth:`~repro.datamodel.database.Database.create_many` call;
        UPDATE/DELETE reuse the statement's analyzed shape (and, under a
        service-backed router, one cached WHERE plan) across the batch.
        """
        analyzed = self.analyze(statement)
        sets = list(parameter_sets)
        if analyzed.kind == "insert":
            return self._insert(analyzed, sets)
        if analyzed.kind in ("update", "delete"):
            runner = (self._update if analyzed.kind == "update"
                      else self._delete)
            total = 0
            touched: list[OID] = []
            for parameters in sets:
                result = runner(analyzed, parameters, optimize)
                total += result.rowcount
                touched.extend(result.oids)
            return StatementResult(kind=analyzed.kind, rowcount=total,
                                   oids=tuple(touched))
        raise ServiceError(
            f"executemany supports INSERT/UPDATE/DELETE, not "
            f"{analyzed.kind.upper()} statements")

    def explain(self, statement: StatementInput, optimize: bool = True,
                analyze: bool = False,
                parameters: ParameterValues = None) -> str:
        """Describe how *statement* would be evaluated.

        For UPDATE/DELETE the derived WHERE-query's plan is shown — this is
        where an indexed mutation predicate surfaces its
        ``index_eq_scan``/``index_range_scan`` access path.  With
        ``analyze=True`` (or an ``EXPLAIN ANALYZE ...`` statement) the plan
        is additionally *executed* under per-operator instrumentation and
        the report includes measured row counts and timings next to the
        estimates; mutations never apply — only their WHERE-query runs.
        """
        analyzed = self.analyze(statement)
        if analyzed.kind == "explain":
            # ``EXPLAIN [ANALYZE] <stmt>``: unwrap to the target statement.
            analyze = analyze or analyzed.statement.analyze
            analyzed = analyzed.target
        if analyzed.kind == "select":
            return self._explain(analyzed.query, optimize, analyze, parameters)
        if analyzed.kind in ("update", "delete"):
            header = (f"{analyzed.kind.upper()} {analyzed.class_name}: "
                      "WHERE clause planned as a query")
            report = self._explain(analyzed.query, optimize, analyze,
                                   parameters)
            # keep the structured records of the underlying query report
            return ExplainReport(header + "\n" + report,
                                 getattr(report, "records", None))
        return str(analyzed.statement)

    def _explain(self, query: AnalyzedQuery, optimize: bool,
                 analyze: bool = False,
                 parameters: ParameterValues = None) -> str:
        if self._explain_query is None:
            raise ServiceError("this router has no query explainer")
        return self._explain_query(query, optimize, analyze=analyze,
                                   parameters=parameters)

    def _analyze_statistics(self, analyzed: AnalyzedStatement
                            ) -> StatementResult:
        """Run ``ANALYZE [Class]``: refresh the statistics catalog under the
        owner's write guard (statistics collection must not race DML) and
        bump the stats version so cached plans re-optimize."""
        with self._write_guard():
            collected = self.database.analyze(analyzed.statement.class_name)
        catalog = self.database.stats_catalog
        return StatementResult(
            kind="analyze", rowcount=len(collected),
            description=catalog.describe())

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _insert(self, analyzed: AnalyzedStatement,
                parameter_sets: list[ParameterValues]) -> StatementResult:
        rows = self._insert_rows(analyzed, parameter_sets)
        with child_span("apply", kind="insert", rows=len(rows)):
            with self._write_guard():
                created = self._apply_insert(analyzed.class_name, rows)
        return StatementResult(kind="insert", rowcount=len(created),
                               oids=tuple(created))

    def _update(self, analyzed: AnalyzedStatement,
                parameters: ParameterValues,
                optimize: bool) -> StatementResult:
        bindings = resolve_bindings(analyzed.parameters, parameters)
        targets = self._matching_oids(analyzed, bindings, optimize)
        # The WHERE-query above ran against a snapshot; the apply phase
        # takes the write guard and one commit scope, so concurrent readers
        # never observe a half-applied statement and a mid-apply failure
        # rolls the whole statement back.  Targets may drift between the
        # two phases (autocommit has no long transaction): objects deleted
        # in the gap are skipped, not crashed on.
        with child_span("apply", kind="update", targets=len(targets)):
            with self._write_guard():
                with self.database.commit_scope():
                    applied = self._apply_update(analyzed, bindings, targets)
        return StatementResult(kind="update", rowcount=len(applied),
                               oids=tuple(applied))

    def _delete(self, analyzed: AnalyzedStatement,
                parameters: ParameterValues,
                optimize: bool) -> StatementResult:
        bindings = resolve_bindings(analyzed.parameters, parameters)
        targets = self._matching_oids(analyzed, bindings, optimize)
        with child_span("apply", kind="delete", targets=len(targets)):
            with self._write_guard():
                with self.database.commit_scope():
                    applied = self._apply_delete(targets)
        return StatementResult(kind="delete", rowcount=len(applied),
                               oids=tuple(applied))

    # ------------------------------------------------------------------
    # guard-less apply helpers (callers own the write guard / commit scope)
    # ------------------------------------------------------------------
    def _insert_rows(self, analyzed: AnalyzedStatement,
                     parameter_sets: list[ParameterValues]) -> list[dict]:
        """Evaluate an INSERT's value rows (no database mutation)."""
        getters = analyzed.cache.get("insert_getters")
        if getters is None:
            getters = [(prop, self._value_getter(expr))
                       for prop, expr in analyzed.assignments]
            analyzed.cache["insert_getters"] = getters
        rows = []
        for parameters in parameter_sets:
            bindings = resolve_bindings(analyzed.parameters, parameters)
            rows.append({prop: getter(bindings) for prop, getter in getters})
        return rows

    def _apply_insert(self, class_name: str, rows: list[dict]) -> list[OID]:
        if len(rows) == 1:
            return [self.database.create(class_name, **rows[0])]
        return self.database.create_many(class_name, rows)

    def _apply_update(self, analyzed: AnalyzedStatement, bindings,
                      targets) -> list[OID]:
        getters = analyzed.cache.get("update_getters")
        if getters is None:
            getters = [(prop, self._value_getter(expr, row_expr=True))
                       for prop, expr in analyzed.assignments]
            analyzed.cache["update_getters"] = getters
        alias = analyzed.alias
        applied: list[OID] = []
        for oid in targets:
            if not self.database.exists(oid):
                continue  # deleted since the targets were resolved
            row = {alias: oid}
            values = {prop: getter(bindings, row)
                      for prop, getter in getters}
            self.database.update(oid, **values)
            applied.append(oid)
        return applied

    def _apply_delete(self, targets) -> list[OID]:
        applied: list[OID] = []
        for oid in targets:
            if not self.database.exists(oid):
                continue  # deleted since the targets were resolved
            self.database.delete(oid)
            applied.append(oid)
        return applied

    # ------------------------------------------------------------------
    # atomic multi-statement apply (deferred buffers and transactions)
    # ------------------------------------------------------------------
    # Durability note: the WAL hooks at the commit-scope level, so each
    # autocommit statement above, each apply_batch call, and each
    # apply_transaction call serializes exactly ONE logical WAL record —
    # the unit of atomicity and the unit of durability coincide.
    def apply_batch(self, entries) -> int:
        """Apply a deferred ``autocommit=False`` buffer atomically.

        *entries* is a list of ``(analyzed, parameter_sets)`` pairs.  The
        whole buffer applies under one write guard and one commit scope:
        either every statement applies (at one commit timestamp) or — on
        the first failure — the scope's undo log restores the database
        byte-identically and the caller's buffer is left untouched.
        UPDATE/DELETE WHERE-queries resolve *inside* the scope, so later
        statements of the batch observe the effects of earlier ones.
        """
        total = 0
        with child_span("apply", kind="batch", statements=len(entries)):
            with self._write_guard():
                with self.database.commit_scope():
                    for analyzed, parameter_sets in entries:
                        if analyzed.kind == "insert":
                            rows = self._insert_rows(analyzed, parameter_sets)
                            total += len(self._apply_insert(
                                analyzed.class_name, rows))
                            continue
                        for parameters in parameter_sets:
                            bindings = resolve_bindings(analyzed.parameters,
                                                        parameters)
                            targets = self._matching_oids(analyzed, bindings,
                                                          True)
                            if analyzed.kind == "update":
                                total += len(self._apply_update(
                                    analyzed, bindings, targets))
                            else:
                                total += len(self._apply_delete(targets))
        return total

    def apply_transaction(self, operations) -> int:
        """Apply a validated transaction's buffered operations.

        The caller (the service's commit path) already holds the write
        guard and has validated the write set first-writer-wins; this
        method only owns atomicity: one commit scope covers every
        operation, so an apply failure rolls the whole transaction back.
        Targets were resolved against the begin snapshot when the
        transaction executed each statement; objects the transaction
        itself deleted earlier in its own sequence are skipped.
        """
        total = 0
        with child_span("apply", kind="transaction",
                        operations=len(operations)):
            with self.database.commit_scope():
                for op in operations:
                    if op.kind == "insert":
                        rows = self._insert_rows(op.analyzed,
                                                 op.parameter_sets)
                        total += len(self._apply_insert(
                            op.analyzed.class_name, rows))
                    elif op.kind == "update":
                        total += len(self._apply_update(
                            op.analyzed, op.bindings, op.targets))
                    else:
                        total += len(self._apply_delete(op.targets))
        return total

    def _matching_oids(self, analyzed: AnalyzedStatement,
                       bindings: Mapping[str, Any],
                       optimize: bool) -> list[OID]:
        """Run the mutation's WHERE-query and return the distinct targets."""
        where = analyzed.query
        sub_parameters = ({key: bindings[key] for key in where.parameters}
                          or None)
        with child_span("where-query"):
            result = self._run_query(where, sub_parameters, optimize)
        ref = result.output_ref
        return list(dict.fromkeys(row[ref] for row in result.rows))

    def _value_getter(self, expression: Expression, row_expr: bool = False):
        """Compile one DML value expression into a fast getter.

        Constants and bind parameters (the overwhelmingly common case,
        and the whole of every ``executemany`` INSERT batch) short-circuit
        to direct lookups; anything else — e.g. ``SET number = p.number + 1``
        — substitutes the bindings and evaluates against the database.
        """
        if isinstance(expression, Const):
            value = expression.value

            def constant(bindings, row=None, value=value):
                return value
            return constant
        if isinstance(expression, Parameter):
            key = expression.key

            def bound(bindings, row=None, key=key):
                return bindings[key]
            return bound
        database = self.database

        if row_expr:
            def general(bindings, row, expression=expression):
                return evaluate(bind_parameters(expression, bindings),
                                row, database)
            return general

        def general_const(bindings, row=None, expression=expression):
            return evaluate(bind_parameters(expression, bindings),
                            {}, database)
        return general_const

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _ddl(self, analyzed: AnalyzedStatement,
             parameters: ParameterValues) -> StatementResult:
        resolve_bindings((), parameters)  # DDL takes no bind parameters
        statement = analyzed.statement
        with self._write_guard():
            if analyzed.kind == "create_class":
                self.database.create_class(
                    statement.class_name, superclass=statement.superclass,
                    properties=analyzed.property_defs)
            elif analyzed.kind == "create_index":
                ddl.create_index(self.database, statement.kind,
                                 statement.class_name, statement.prop)
            elif analyzed.kind == "drop_index":
                ddl.drop_index(self.database, statement.class_name,
                               statement.prop,
                               text=statement.kind == "text")
            else:  # pragma: no cover - analyze_statement covers every kind
                raise ServiceError(f"unroutable statement {analyzed.kind!r}")
        return StatementResult(kind=analyzed.kind, description=str(statement))
