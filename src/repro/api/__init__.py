"""repro.api — the unified statement API.

Two layers live here:

* :mod:`repro.api.router` — the :class:`~repro.api.router.StatementRouter`
  that every entry point (``Session.execute``, ``QueryService.execute``,
  ``run_query``, the facade below) shares for statement classification,
  DML execution and DDL dispatch;
* :mod:`repro.api.connection` — the PEP-249-flavored facade:
  :func:`~repro.api.connection.connect` returning a
  :class:`~repro.api.connection.Connection` with streaming
  :class:`~repro.api.connection.Cursor` objects.

``connection`` is loaded lazily (PEP 562): it imports the service layer,
which itself imports the router from this package — eager loading here
would close that cycle.
"""

from repro.api.router import StatementResult, StatementRouter

__all__ = ["StatementResult", "StatementRouter",
           "connect", "Connection", "Cursor"]

_CONNECTION_EXPORTS = ("connect", "Connection", "Cursor")


def __getattr__(name: str):
    if name in _CONNECTION_EXPORTS:
        from repro.api import connection
        return getattr(connection, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
