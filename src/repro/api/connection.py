"""PEP-249-flavored facade over the query stack.

:func:`connect` opens a :class:`Connection` on a database; cursors execute
any statement of the unified language — queries, ``INSERT``/``UPDATE``/
``DELETE`` and index/class DDL — against one shared
:class:`~repro.service.service.QueryService`, so every query (and every
mutation's WHERE clause) is planned once per shape and served from the
plan cache.

Deviations from a literal PEP 249 (the substrate is an embedded in-memory
OODB, not a client/server SQL engine):

* rows produced by a cursor are the query's *output values* (the ACCESS
  expression per result row) rather than 1-tuples; since ``None`` is then
  a possible row value, ``Cursor.exhausted`` (or plain iteration) is the
  unambiguous end-of-results signal, not ``fetchone() is None``;
* transactions come in two strengths.  ``BEGIN``/``COMMIT``/``ROLLBACK``
  (or :meth:`Connection.begin`) open a **real transaction**: every
  statement inside reads the snapshot pinned at ``BEGIN``, mutations are
  buffered as a write set, and ``COMMIT`` validates first-writer-wins
  (losing raises :class:`~repro.errors.TransactionConflictError`) before
  applying everything atomically at one commit timestamp.  One deliberate
  deviation from read-your-writes SQL: because writes defer to commit, a
  transaction does not observe its own buffered mutations.
  ``autocommit=False`` is the lighter legacy mode: DML is buffered and
  ``commit()`` applies the whole batch atomically in one pass, collapsing
  runs of the same INSERT shape into bulk
  :meth:`~repro.datamodel.database.Database.create_many` loads
  (``rollback()`` discards the buffer) — but statements in between read
  the latest published state, not a ``BEGIN`` snapshot;
* reads are snapshot-isolated: every statement (and every open cursor
  stream, for its whole lifetime) executes against a consistent MVCC
  snapshot and is never blocked by — or exposed to — concurrent writers;
* cursors stream: ``fetchone``/``fetchmany``/``fetchall``/iteration pull
  rows lazily from the prepared plan's generator tree instead of a
  materialized row list.
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings
from collections import deque
from typing import Any, Iterable, Optional, Sequence

from repro.api.router import StatementResult
from repro.api.transaction import Transaction, TransactionOp
from repro.errors import ServiceError, TransactionError
from repro.datamodel.database import Database
from repro.optimizer.knowledge import SchemaKnowledge
from repro.optimizer.search import OptimizerOptions
from repro.service.service import QueryService, RowStream
from repro.storage import FileStorageAdapter
from repro.telemetry.spans import Tracer, activation
from repro.vql.analyzer import AnalyzedStatement
from repro.vql.bindings import ParameterValues

__all__ = ["connect", "Connection", "Cursor"]

#: durability spellings accepted by connect() / REPRO_DURABILITY
_MEMORY_MODES = ("", "memory", "none", "off")
_DURABLE_MODES = ("wal", "file")


def connect(database: Database,
            knowledge: Optional[SchemaKnowledge] = None,
            options: Optional[OptimizerOptions] = None,
            exclude_tags: Sequence[str] = (),
            parallelism: Optional[int] = None,
            autocommit: bool = True,
            service: Optional[QueryService] = None,
            tracing: Optional[bool] = None,
            slow_query_ms: Optional[float] = None,
            durability: Optional[str] = None,
            storage_path: Optional[str] = None,
            wal_fsync: Optional[str] = None,
            checkpoint_interval: Optional[int] = None) -> "Connection":
    """Open a statement-API connection on *database*.

    ``knowledge``/``options``/``exclude_tags``/``parallelism`` configure
    the underlying :class:`QueryService` (ignored when an existing
    *service* is supplied); ``autocommit=False`` buffers DML until
    :meth:`Connection.commit`.  ``tracing`` enables statement span trees
    (``None`` consults ``REPRO_TRACE``) and ``slow_query_ms`` overrides the
    ``REPRO_SLOW_QUERY_MS`` slow-query-log threshold — see
    :mod:`repro.telemetry`.

    ``durability`` selects the storage adapter (see :mod:`repro.storage`):
    ``"memory"`` (the default) keeps everything in RAM, ``"wal"`` attaches
    a :class:`~repro.storage.FileStorageAdapter` under *storage_path* (a
    fresh temp directory when omitted) — if that directory already holds a
    checkpoint or write-ahead log, **recovery runs here**, before the
    first statement.  ``None`` consults ``REPRO_DURABILITY``.
    ``wal_fsync`` picks the fsync policy (``always``/``interval``/
    ``never``; default ``interval`` = group commit, env
    ``REPRO_WAL_FSYNC``) and ``checkpoint_interval`` the number of
    commits between automatic checkpoints (0 disables; env
    ``REPRO_CHECKPOINT_INTERVAL``).  A database keeps at most one durable
    adapter: later connects reuse it and the knobs of the first attach
    win.
    """
    _ensure_storage(database, durability, storage_path, wal_fsync,
                    checkpoint_interval)
    if service is None:
        service = QueryService(database, knowledge=knowledge, options=options,
                               exclude_tags=exclude_tags,
                               parallelism=parallelism,
                               tracing=tracing, slow_query_ms=slow_query_ms)
    elif database.storage is not None:
        # a pre-built service predates the adapter: wire telemetry now
        database.storage.bind_telemetry(registry=service.registry,
                                        slow_log=service.slow_log,
                                        tracer=service.tracer)
    return Connection(service, autocommit=autocommit)


def _ensure_storage(database: Database, durability: Optional[str],
                    storage_path: Optional[str], wal_fsync: Optional[str],
                    checkpoint_interval: Optional[int]) -> None:
    """Attach (once) the storage adapter the durability mode asks for."""
    if durability is None:
        durability = os.environ.get("REPRO_DURABILITY", "")
    durability = durability.strip().lower()
    if durability in _MEMORY_MODES:
        return
    if durability not in _DURABLE_MODES:
        raise ServiceError(
            f"unknown durability mode {durability!r} — expected one of "
            f"memory, {', '.join(_DURABLE_MODES)}")
    if database.storage is not None and database.storage.durable:
        return  # one WAL per database; the first attach's knobs win
    if storage_path is None:
        base = os.environ.get("REPRO_STORAGE_DIR", "").strip() or None
        if base is not None:
            os.makedirs(base, exist_ok=True)
        storage_path = tempfile.mkdtemp(prefix="repro-wal-", dir=base)
    if wal_fsync is None:
        wal_fsync = os.environ.get("REPRO_WAL_FSYNC", "").strip().lower() \
            or "interval"
    if checkpoint_interval is None:
        raw = os.environ.get("REPRO_CHECKPOINT_INTERVAL", "").strip()
        checkpoint_interval = int(raw) if raw else None
    adapter = (FileStorageAdapter(storage_path, fsync=wal_fsync)
               if checkpoint_interval is None else
               FileStorageAdapter(storage_path, fsync=wal_fsync,
                                  checkpoint_interval=checkpoint_interval))
    database.attach_storage(adapter)


class Connection:
    """A connection: one query service plus cursor and batching state."""

    def __init__(self, service: QueryService, autocommit: bool = True):
        self.service = service
        self.database = service.database
        self.router = service.router
        self.autocommit = autocommit
        self._pending: deque[tuple[AnalyzedStatement, list[ParameterValues]]] = (
            deque())
        self._txn: Optional[Transaction] = None
        self._closed = False

    # ------------------------------------------------------------------
    # cursors & convenience execution (sqlite3-style)
    # ------------------------------------------------------------------
    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def execute(self, operation: str,
                parameters: ParameterValues = None) -> "Cursor":
        """Shorthand: ``connection.cursor().execute(...)``."""
        return self.cursor().execute(operation, parameters)

    def executemany(self, operation: str,
                    parameter_sets: Iterable[ParameterValues]) -> "Cursor":
        """Shorthand: ``connection.cursor().executemany(...)``."""
        return self.cursor().executemany(operation, parameter_sets)

    def explain(self, operation: str, optimize: bool = True,
                analyze: bool = False,
                parameters: ParameterValues = None) -> str:
        """Describe how *operation* would be evaluated (for UPDATE/DELETE:
        the optimizer's plan for the WHERE clause).

        ``analyze=True`` — equivalent to executing ``EXPLAIN ANALYZE
        <operation>`` — additionally runs the plan under per-operator
        instrumentation and reports estimated vs actual cardinalities;
        *parameters* binds any placeholders for that run.
        """
        self._check_open()
        return self.router.explain(operation, optimize=optimize,
                                   analyze=analyze, parameters=parameters)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Tracer:
        """The service's statement tracer (ring buffer of recent spans)."""
        return self.service.tracer

    def metrics(self, fmt: str = "json"):
        """Export the service's metrics registry.

        ``fmt="json"`` returns a dict (counters, gauges, latency
        histograms with p50/p90/p99, per-fingerprint top statements);
        ``fmt="prometheus"`` returns Prometheus text exposition format.
        """
        self._check_open()
        return self.service.registry.export(fmt)

    # ------------------------------------------------------------------
    # transactions (BEGIN/COMMIT/ROLLBACK) and the legacy batch flush
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Open an explicit transaction (``BEGIN``).

        Every statement until :meth:`commit`/:meth:`rollback` reads the
        snapshot pinned here; mutations buffer into the transaction's
        write set and apply atomically at commit after first-writer-wins
        validation.
        """
        self._check_open()
        if self._txn is not None:
            raise TransactionError("a transaction is already open")
        if self._pending:
            raise TransactionError(
                "cannot BEGIN while the autocommit=False buffer holds "
                "deferred mutations — commit() or rollback() them first")
        self._txn = self.service.begin_transaction()

    def commit(self) -> int:
        """Commit; returns the affected row count.

        With an open ``BEGIN`` transaction this validates the write set
        first-writer-wins and applies every buffered operation atomically
        — on :class:`~repro.errors.TransactionConflictError` the
        transaction is rolled back (nothing had applied) and the error
        propagates.  Without one, this flushes the ``autocommit=False``
        buffer: the whole batch applies under one commit scope, so a
        mid-flush failure undoes everything and leaves the buffer intact
        (fix the bindings and ``commit()`` again, or ``rollback()``).
        With ``autocommit=True`` and no transaction it is a no-op.
        """
        self._check_open()
        if self._txn is not None:
            txn, self._txn = self._txn, None
            return self.service.commit_transaction(txn)
        if not self._pending:
            return 0
        total = self.router.apply_batch(list(self._pending))
        self._pending.clear()
        return total

    def rollback(self) -> int:
        """Discard the open transaction or the deferred buffer; returns
        the number of discarded mutation statements."""
        self._check_open()
        if self._txn is not None:
            txn, self._txn = self._txn, None
            discarded = txn.mutation_count
            self.service.rollback_transaction(txn)
            return discarded
        discarded = sum(len(sets) for _, sets in self._pending)
        self._pending.clear()
        return discarded

    @property
    def in_transaction(self) -> bool:
        """True inside an explicit transaction, or while mutations are
        buffered awaiting :meth:`commit`."""
        return self._txn is not None or bool(self._pending)

    @property
    def transaction(self) -> Optional[Transaction]:
        """The open explicit transaction, if any."""
        return self._txn

    def _defer(self, analyzed: AnalyzedStatement,
               parameter_sets: list[ParameterValues]) -> None:
        if not parameter_sets:
            return  # an empty executemany batch is a no-op, don't buffer it
        if self._pending and self._pending[-1][0] is analyzed \
                and analyzed.kind == "insert":
            self._pending[-1][1].extend(parameter_sets)
        else:
            self._pending.append((analyzed, parameter_sets))

    def _transaction_execute(self, analyzed: AnalyzedStatement,
                             parameter_sets: list[ParameterValues]) -> int:
        """Buffer a mutation into the open transaction; returns the row
        count the statement reports (targets as of the begin snapshot)."""
        txn = self._txn
        if analyzed.kind == "insert":
            last = txn.operations[-1] if txn.operations else None
            if (last is not None and last.kind == "insert"
                    and last.analyzed is analyzed):
                last.parameter_sets.extend(parameter_sets)
            else:
                txn.operations.append(TransactionOp(
                    kind="insert", analyzed=analyzed,
                    parameter_sets=list(parameter_sets)))
            return len(parameter_sets)
        total = 0
        for parameters in parameter_sets:
            bindings, targets = self.service.transaction_targets(
                analyzed, parameters, at=txn.start_ts)
            txn.operations.append(TransactionOp(
                kind=analyzed.kind, analyzed=analyzed,
                bindings=bindings, targets=targets))
            txn.record_write(targets)
            total += len(targets)
        return total

    # ------------------------------------------------------------------
    # index DDL convenience (shared datamodel.ddl helper, service-gated)
    # ------------------------------------------------------------------
    def create_index(self, class_name: str, prop: str, kind: str = "hash"):
        """Create a ``hash``/``sorted``/``text`` index (write-gated)."""
        self._check_open()
        return self.service.create_index(class_name, prop, kind=kind)

    def drop_index(self, class_name: str, prop: str,
                   text: bool = False) -> None:
        """Drop the (text) index on ``class_name.prop`` (write-gated)."""
        self._check_open()
        self.service.drop_index(class_name, prop, text=text)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> Optional[int]:
        """Force a storage checkpoint (write-gated); returns the commit
        timestamp the snapshot covers, or None without a durable adapter.

        Snapshots the full database state, truncates the write-ahead log
        and prunes version chains up to the new watermark — see
        :mod:`repro.storage`.
        """
        self._check_open()
        return self.service.checkpoint()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent).

        An open transaction is rolled back and deferred mutations are
        discarded; either case emits a :class:`ResourceWarning` naming the
        discarded count, because silently dropping buffered writes on
        close is almost always a bug — ``commit()`` or ``rollback()``
        explicitly first.  With a durable storage adapter attached, any
        buffered WAL writes are flushed to stable storage *after* the
        rollback/discard, so a clean close never loses an acknowledged
        commit (and never persists an abandoned buffer).
        """
        if self._closed:
            return
        discarded = sum(len(sets) for _, sets in self._pending)
        if self._txn is not None:
            txn, self._txn = self._txn, None
            discarded += txn.mutation_count
            self.service.rollback_transaction(txn)
        self._pending.clear()
        self._closed = True
        storage = self.database.storage
        if storage is not None:
            storage.flush()
        if discarded:
            warnings.warn(
                f"Connection.close() discarded {discarded} uncommitted "
                "mutation(s) — call commit() or rollback() before closing",
                ResourceWarning, stacklevel=2)

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Mirror the transactional contract: a body that raised must not
        # half-commit its work on the way out — roll back instead.  The
        # rollback runs *before* close() flushes the WAL, so what reaches
        # stable storage is exactly the committed state.
        try:
            if not self._closed:
                if exc_type is None:
                    self.commit()
                else:
                    self.rollback()
        finally:
            self.close()

    def __str__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Connection({self.database}, {state})"


class Cursor:
    """A streaming cursor (PEP-249 shape) over one connection.

    Query results are pulled lazily from the service's
    :class:`~repro.service.service.RowStream` — ``fetchone`` advances the
    prepared plan's generator tree by one row.  ``description`` carries the
    single output column (the query's output reference); ``rowcount`` is
    the affected-row count for DML and -1 for queries (streaming results
    have no known cardinality up front, as PEP 249 permits).
    """

    #: default ``fetchmany`` size
    arraysize = 64

    def __init__(self, connection: Connection):
        self.connection = connection
        self.arraysize = type(self).arraysize
        self.description: Optional[tuple] = None
        self.rowcount: int = -1
        self.lastoid = None
        #: the textual report of the last ANALYZE / EXPLAIN statement this
        #: cursor executed (None for queries and plain DML/DDL)
        self.statement_report: Optional[str] = None
        self._stream: Optional[RowStream] = None
        self._closed = False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, operation: str,
                parameters: ParameterValues = None) -> "Cursor":
        """Execute one statement; returns the cursor (chainable)."""
        self._check_open()
        self._reset()
        connection = self.connection
        service = connection.service
        # Open the statement's root span before analysis so the analyze
        # child (recorded inside the router) attaches under it; for query
        # statements the span stays open and travels into the row stream.
        span = service.tracer.begin_root("statement", api="cursor")
        try:
            started = time.perf_counter()
            with activation(span):
                analyzed = connection.router.analyze(operation)
            analyze_seconds = time.perf_counter() - started
        except BaseException as exc:
            service.tracer.finish(span, error=exc)
            raise
        if analyzed.is_transaction_control:
            try:
                with activation(span):
                    self._transaction_control(analyzed.kind)
            except BaseException as exc:
                service.tracer.finish(span, error=exc)
                raise
            service.tracer.finish(span)
            return self
        txn = connection.transaction
        if analyzed.is_query:
            self._stream = service.stream_analyzed(
                analyzed.query, parameters,
                analyze_seconds=analyze_seconds, span=span,
                at=txn.start_ts if txn is not None else None)
            self.description = ((self._stream.output_ref,
                                 None, None, None, None, None, None),)
            return self
        if txn is not None and analyzed.kind != "explain":
            try:
                with activation(span):
                    self._transaction_mutation(analyzed, [parameters])
            except BaseException as exc:
                service.tracer.finish(span, error=exc)
                raise
            service.tracer.finish(span)
            return self
        if analyzed.is_mutation and not connection.autocommit:
            service.tracer.finish(span)
            connection._defer(analyzed, [parameters])
            return self
        try:
            with activation(span):
                self._finish(connection.router.execute(analyzed, parameters))
        except BaseException as exc:
            service.tracer.finish(span, error=exc)
            raise
        service.tracer.finish(span)
        return self

    def _transaction_control(self, kind: str) -> None:
        """Apply a ``BEGIN``/``COMMIT``/``ROLLBACK`` statement word."""
        connection = self.connection
        if kind == "begin":
            connection.begin()
            self.rowcount = 0
        elif kind == "commit":
            if connection.transaction is None and not connection._pending:
                raise TransactionError("COMMIT without an open transaction")
            self.rowcount = connection.commit()
        else:
            if connection.transaction is None and not connection._pending:
                raise TransactionError("ROLLBACK without an open transaction")
            self.rowcount = connection.rollback()

    def _transaction_mutation(self, analyzed: AnalyzedStatement,
                              parameter_sets: list[ParameterValues]) -> None:
        """Route a statement executed inside an open transaction."""
        connection = self.connection
        if analyzed.is_mutation:
            self.rowcount = connection._transaction_execute(analyzed,
                                                            parameter_sets)
            return
        # DDL (and ANALYZE, which mutates shared statistics) is not
        # transactional: it applies immediately and cannot be rolled back,
        # so allowing it inside BEGIN would silently break atomicity.
        raise TransactionError(
            f"{analyzed.kind.upper()} cannot run inside a transaction — "
            "COMMIT or ROLLBACK first")

    def executemany(self, operation: str,
                    parameter_sets: Iterable[ParameterValues]) -> "Cursor":
        """Execute a DML statement once per parameter set (bulk INSERT
        collapses into one ``create_many`` maintenance pass)."""
        self._check_open()
        self._reset()
        connection = self.connection
        analyzed = connection.router.analyze(operation)
        if not analyzed.is_mutation:
            raise ServiceError(
                f"executemany supports INSERT/UPDATE/DELETE, not "
                f"{analyzed.kind.upper()} statements")
        sets = list(parameter_sets)
        if connection.transaction is not None:
            self._transaction_mutation(analyzed, sets)
            return self
        if not connection.autocommit:
            connection._defer(analyzed, sets)
            return self
        self._finish(connection.router.executemany(analyzed, sets))
        return self

    def explain(self, operation: str, optimize: bool = True,
                analyze: bool = False,
                parameters: ParameterValues = None) -> str:
        """Describe (and with ``analyze=True`` profile) *operation* — see
        :meth:`Connection.explain`."""
        self._check_open()
        return self.connection.explain(operation, optimize=optimize,
                                       analyze=analyze, parameters=parameters)

    def _finish(self, result: StatementResult) -> None:
        self.rowcount = result.rowcount
        self.lastoid = result.lastoid
        # Only ANALYZE/EXPLAIN produce a *report*; DDL results also carry a
        # description (the echoed statement), which is not one.
        if result.kind in ("analyze", "explain"):
            self.statement_report = result.description or None

    def _reset(self) -> None:
        if self._stream is not None:
            self._stream.close()
        self._stream = None
        self.description = None
        self.rowcount = -1
        self.lastoid = None
        self.statement_report = None

    @property
    def statement_records(self) -> Optional[list]:
        """Structured per-operator estimate/actual records of the last
        ``EXPLAIN ANALYZE`` statement (None otherwise).

        The report string in :attr:`statement_report` carries the records
        it was rendered from (see
        :class:`repro.physical.profile.ExplainReport`); this accessor saves
        clients from parsing the text.
        """
        return getattr(self.statement_report, "records", None)

    # ------------------------------------------------------------------
    # fetching (streaming)
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once the current result set has no further rows.

        This is the unambiguous end-of-results signal: because cursor rows
        are bare output values (not PEP 249's 1-tuples), a query can
        legitimately yield ``None`` values, which :meth:`fetchone` cannot
        distinguish from exhaustion.  Iterate the cursor, or test this
        property, when ``None`` is a possible output value.
        """
        return self._stream is not None and self._stream.exhausted

    def fetchone(self) -> Any:
        """The next output value, or None when the result set is exhausted.

        Caveat: ``None`` is also returned for a row whose output value *is*
        None — check :attr:`exhausted` (or iterate the cursor, whose
        ``StopIteration`` is unambiguous) when that matters.
        """
        rows = self._feed().fetch(1)
        return self._value(rows[0]) if rows else None

    def fetchmany(self, size: Optional[int] = None) -> list[Any]:
        """Up to *size* (default :attr:`arraysize`) further output values."""
        rows = self._feed().fetch(self.arraysize if size is None else size)
        return [self._value(row) for row in rows]

    def fetchall(self) -> list[Any]:
        """Every remaining output value."""
        return [self._value(row) for row in self._feed().drain()]

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> Any:
        rows = self._feed().fetch(1)
        if not rows:
            raise StopIteration
        return self._value(rows[0])

    def _value(self, row: dict) -> Any:
        return row.get(self._stream.output_ref)

    def _feed(self) -> RowStream:
        self._check_open()
        if self._stream is None:
            raise ServiceError("no result set: execute a query first")
        return self._stream

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._reset()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("cursor is closed")
        self.connection._check_open()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
