"""JSON-safe encoding of datamodel values and dynamic-class types.

WAL records and checkpoints are JSON payloads (the container ships no
binary codec), but property values are richer than JSON: OIDs, sets of
OIDs, tuples, and dictionaries with non-string keys all occur.  The
encoding wraps every non-JSON-native value in a single-key marker object:

* ``{"$oid": [class_name, serial]}`` — an :class:`~repro.datamodel.oid.OID`;
* ``{"$set": [item, ...]}`` — a ``set``/``frozenset`` (items encoded
  recursively, order normalized where possible for determinism);
* ``{"$tuple": [item, ...]}`` — a ``tuple``;
* ``{"$map": [[key, value], ...]}`` — a ``dict`` (pairs, so keys need not
  be strings and round-trip exactly).

Scalars (str/int/float/bool/None) pass through untouched.  Dynamic-class
property types (``CREATE CLASS`` only ever builds primitives, object
references and sets thereof — see ``repro.vql.analyzer``) serialize to
the same compact spec strings the statement language uses: ``STRING``,
``INT``, ``REAL``, ``BOOL``, ``ANY``, a class name, or ``{inner}`` for a
set type.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.datamodel.oid import OID
from repro.datamodel.types import (
    ANY,
    BOOL,
    INT,
    REAL,
    STRING,
    ObjectType,
    SetType,
    VMLType,
)
from repro.errors import ServiceError

__all__ = ["encode_value", "decode_value", "encode_type", "decode_type"]

_PRIMITIVES = {"STRING": STRING, "INT": INT, "REAL": REAL, "BOOL": BOOL,
               "ANY": ANY}


def encode_value(value: Any) -> Any:
    """Encode one property value into JSON-representable form."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, OID):
        return {"$oid": [value.class_name, value.serial]}
    if isinstance(value, (set, frozenset)):
        items = [encode_value(item) for item in value]
        try:
            items.sort(key=repr)
        except TypeError:  # pragma: no cover - defensive
            pass
        return {"$set": items}
    if isinstance(value, tuple):
        return {"$tuple": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {"$map": [[encode_value(key), encode_value(item)]
                         for key, item in value.items()]}
    raise ServiceError(
        f"cannot serialize value of type {type(value).__name__!r} "
        "to the write-ahead log")


def decode_value(payload: Any) -> Any:
    """Invert :func:`encode_value`."""
    if payload is None or isinstance(payload, (str, int, float, bool)):
        return payload
    if isinstance(payload, list):
        return [decode_value(item) for item in payload]
    if isinstance(payload, dict):
        if "$oid" in payload:
            class_name, serial = payload["$oid"]
            return OID(class_name, serial)
        if "$set" in payload:
            return {decode_value(item) for item in payload["$set"]}
        if "$tuple" in payload:
            return tuple(decode_value(item) for item in payload["$tuple"])
        if "$map" in payload:
            return {decode_value(key): decode_value(item)
                    for key, item in payload["$map"]}
    raise ServiceError(f"malformed encoded value {payload!r}")


def encode_values(values: dict[str, Any]) -> dict[str, Any]:
    """Encode a property-value mapping (property names are plain strings)."""
    return {prop: encode_value(value) for prop, value in values.items()}


def decode_values(payload: dict[str, Any]) -> dict[str, Any]:
    """Invert :func:`encode_values`."""
    return {prop: decode_value(value) for prop, value in payload.items()}


def encode_type(vml_type: VMLType) -> str:
    """Serialize a dynamic-class property type to its spec string.

    Covers exactly the types ``CREATE CLASS`` can declare (primitives,
    ``ANY``, object references, and sets of those); anything richer is a
    statically-defined schema type that checkpoints never serialize.
    """
    if isinstance(vml_type, SetType):
        return "{" + encode_type(vml_type.element) + "}"
    if isinstance(vml_type, ObjectType):
        return vml_type.class_name or "ANY"
    name = getattr(vml_type, "name", None)
    if name in _PRIMITIVES:
        return name
    if vml_type == ANY:
        return "ANY"
    raise ServiceError(
        f"cannot serialize property type {vml_type} to a checkpoint")


def decode_type(spec: str) -> tuple[VMLType, Optional[str]]:
    """Invert :func:`encode_type`; returns ``(type, target_class)``."""
    if spec.startswith("{") and spec.endswith("}"):
        element, target = decode_type(spec[1:-1])
        return SetType(element), target
    primitive = _PRIMITIVES.get(spec)
    if primitive is not None:
        return primitive, None
    return ObjectType(spec), spec
