"""Checkpoint serialization: a full consistent snapshot of the database.

A checkpoint captures everything recovery cannot rebuild from the static
schema module alone, as of one pinned commit timestamp:

* dynamic classes (``CREATE CLASS`` DDL — properties only; runtime
  classes never carry method implementations, so nothing is lost);
* every live object, per class, as ``[serial, values]`` in serial order
  (serials are allocated in creation order, so restoring in this order
  reproduces extension and partition order exactly);
* the OID allocator counters (so serials of deleted objects are never
  reused after recovery);
* index definitions — hash, sorted and text — as ``(class, property,
  kind)`` triples (contents are rebuilt by the normal backfill on
  creation);
* the names of ANALYZE'd classes (distribution statistics are
  deterministic over identical data, so recovery re-runs ANALYZE instead
  of serializing histograms).

The writer holds the service's write gate, so the live structures *are*
the state at ``clock.published`` — MVCC readers keep running against
their own snapshots throughout.
"""

from __future__ import annotations

from typing import Any

from repro.datamodel.objects import DatabaseObject
from repro.datamodel.oid import OID
from repro.datamodel.schema import PropertyDef
from repro.errors import ServiceError
from repro.storage.encoding import (
    decode_type,
    decode_values,
    encode_type,
    encode_values,
)

__all__ = ["CHECKPOINT_FORMAT", "serialize_checkpoint", "restore_checkpoint"]

CHECKPOINT_FORMAT = 1


def serialize_checkpoint(database, base_classes: set[str]) -> dict[str, Any]:
    """Snapshot *database* at ``clock.published`` (write gate held)."""
    schema = database.schema
    classes: list[list[Any]] = []
    for name, class_def in schema.classes.items():
        if name in base_classes:
            continue
        props = [[prop.name, encode_type(prop.vml_type), prop.target_class]
                 for prop in class_def.properties.values()]
        classes.append([name, class_def.superclass, props])
    objects: dict[str, list[list[Any]]] = {}
    for class_name in schema.classes:
        extension = database._extensions.get(class_name)
        if not extension:
            continue
        rows = [[oid.serial, encode_values(database._objects[oid].values)]
                for oid in extension]
        objects[class_name] = rows
    indexes = [[index.class_name, index.property_name, index.kind]
               for index in database.indexes.all()]
    indexes.extend([class_name, prop, "text"]
                   for (class_name, prop), _ in database.text_indexes())
    return {
        "format": CHECKPOINT_FORMAT,
        "commit_ts": database.clock.published,
        "name": database.name,
        "classes": classes,
        "objects": objects,
        "allocators": database.oid_counters(),
        "indexes": indexes,
        "analyzed": list(database.stats_catalog.analyzed_classes()),
    }


def restore_checkpoint(database, state: dict[str, Any]) -> None:
    """Load *state* into a freshly constructed *database*.

    The database must carry the same static schema the checkpoint was
    taken under and hold no objects yet; the caller (the storage adapter)
    runs this with its ``recovering`` flag set so nothing re-logs.
    """
    if state.get("format") != CHECKPOINT_FORMAT:
        raise ServiceError(
            f"unsupported checkpoint format {state.get('format')!r}")
    if database.object_count():
        raise ServiceError(
            "cannot restore a checkpoint into a non-empty database")
    for name, superclass, props in state["classes"]:
        if database.schema.has_class(name):
            continue  # the static schema grew to include it
        property_defs = []
        for prop_name, spec, target in props:
            vml_type, _ = decode_type(spec)
            property_defs.append(
                PropertyDef(prop_name, vml_type, target_class=target))
        database.create_class(name, superclass, property_defs)
    restored = 0
    for class_name, rows in state["objects"].items():
        if not database.schema.has_class(class_name):
            raise ServiceError(
                f"checkpoint holds objects of unknown class {class_name!r} "
                "— was the database opened with the right schema?")
        extension = database._extensions[class_name]
        partitioned = database.partitions.for_class(class_name)
        for serial, values in rows:
            oid = OID(class_name, serial)
            # Restored objects predate every post-recovery snapshot, so
            # timestamp 0 makes them visible to all of them.
            obj = DatabaseObject(oid=oid, values=decode_values(values),
                                 begin_ts=0, created_ts=0)
            database._objects[oid] = obj
            extension.append(oid)
            partitioned.add(oid)
            restored += 1
    database.restore_oid_counters(state["allocators"])
    database.versions.data += restored
    database.clock.restore(state["commit_ts"])
    for class_name, prop, kind in state["indexes"]:
        if kind == "hash":
            database.create_hash_index(class_name, prop)
        elif kind == "sorted":
            database.create_sorted_index(class_name, prop)
        elif kind == "text":
            database.create_text_index(class_name, prop)
        else:  # pragma: no cover - format guard
            raise ServiceError(f"unknown index kind {kind!r} in checkpoint")
    for class_name in state["analyzed"]:
        if database.schema.has_class(class_name):
            database.analyze(class_name)
