"""Storage adapters: the pluggable durability seam of the database.

A :class:`~repro.datamodel.database.Database` owns at most one adapter
(attached via ``Database.attach_storage``, normally by
``connect(durability=...)``).  The database calls exactly three hooks:

* ``log_commit(ts, ops)`` — once per *published* commit scope with the
  scope's logical operations (creates/updates/deletes), so an autocommit
  statement, an ``executemany`` batch, a deferred-buffer flush and a
  transaction COMMIT each cost **one** WAL record and at most one fsync;
* ``log_ddl(op)`` — once per DDL/ANALYZE statement (class creation,
  index create/drop, statistics refresh), which run outside commit
  scopes;
* ``flush()`` — on clean connection/database close, so buffered
  group-commit writes never outlive the process unacknowledged.

:class:`MemoryAdapter` is the explicit spelling of the default: nothing
persists, every hook is a no-op.  :class:`FileStorageAdapter` keeps a
directory with a write-ahead log (``wal.log``) and the latest checkpoint
(``checkpoint.json``, atomically replaced); opening a database on a
directory that holds state runs recovery — load the checkpoint, replay
the WAL tail in fresh commit scopes, truncate a torn final record.

Crash-consistency argument, in one place: the checkpoint is written to a
temp file, fsynced, then atomically renamed; the WAL truncates only
*after* the rename.  A crash before the rename leaves the old
checkpoint + the full WAL (consistent); a crash after it leaves the new
checkpoint + a WAL whose records are all at or below the checkpoint's
``commit_ts`` — replay skips commit records with ``ts <=`` the restored
clock and DDL records that are already applied, so double-apply is
impossible.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from typing import Any, Optional

from repro.datamodel.oid import OID
from repro.errors import ServiceError
from repro.storage.checkpoint import restore_checkpoint, serialize_checkpoint
from repro.storage.encoding import decode_type, decode_values, encode_values
from repro.storage.wal import WriteAheadLog

__all__ = ["StorageAdapter", "MemoryAdapter", "FileStorageAdapter"]

#: commits between automatic checkpoints (0 disables auto-checkpointing)
DEFAULT_CHECKPOINT_INTERVAL = 1000


class StorageAdapter:
    """Interface every storage backend implements (no-op base).

    The base class *is* the contract: subclasses override what they
    persist.  ``durable`` tells the database whether to record logical
    ops at all; ``active`` is False while recovery replays the log, so
    replayed mutations never re-log themselves.
    """

    #: whether commits must be recorded (False short-circuits op capture)
    durable = False

    def __init__(self) -> None:
        #: True while recovery replays the checkpoint/WAL into the database
        self.recovering = False
        self._database = None

    @property
    def active(self) -> bool:
        """True when mutations should be captured into the log."""
        return self.durable and not self.recovering

    # -- lifecycle ------------------------------------------------------
    def attach(self, database) -> None:
        """Bind to *database* and run recovery if there is state on disk."""
        self._database = database

    def close(self) -> None:
        """Flush and release every resource (idempotent)."""

    # -- the three database-facing hooks --------------------------------
    def log_commit(self, ts: int, ops: list[tuple]) -> None:
        """Record one published commit scope (its logical operations)."""

    def log_ddl(self, op: tuple) -> None:
        """Record one DDL/ANALYZE statement (applied outside scopes)."""

    def flush(self) -> None:
        """Force buffered log writes to stable storage."""

    # -- maintenance ----------------------------------------------------
    def checkpoint(self) -> Optional[int]:
        """Snapshot the database and truncate the log; returns the
        checkpointed commit timestamp (None when not applicable)."""
        return None

    # -- telemetry ------------------------------------------------------
    def bind_telemetry(self, registry=None, slow_log=None,
                       tracer=None) -> None:
        """Wire metrics/slow-log/tracing sinks (service construction)."""

    def counters(self) -> dict[str, int]:
        """Lifetime counters (always available, registry or not)."""
        return {}


class MemoryAdapter(StorageAdapter):
    """Today's behavior, spelled out: everything lives in RAM only."""

    durable = False


class FileStorageAdapter(StorageAdapter):
    """File-backed durability: WAL + checkpoints in one directory."""

    durable = True

    def __init__(self, path: str, fsync: str = "interval",
                 flush_interval_ms: float = 5.0,
                 checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL):
        super().__init__()
        self.path = path
        os.makedirs(path, exist_ok=True)
        self.wal = WriteAheadLog(os.path.join(path, "wal.log"),
                                 fsync=fsync,
                                 flush_interval_ms=flush_interval_ms)
        self.checkpoint_path = os.path.join(path, "checkpoint.json")
        #: commits between automatic checkpoints (0/None disables)
        self.checkpoint_interval = checkpoint_interval
        self._commits_since_checkpoint = 0
        self._lock = threading.RLock()
        self._base_classes: set[str] = set()
        self._closed = False
        # telemetry: plain counters always; registry instruments when bound
        self._counters = {"wal_records": 0, "wal_bytes": 0, "wal_fsyncs": 0,
                          "checkpoints_completed": 0,
                          "recovery_replayed_records": 0,
                          "recovery_discarded_bytes": 0}
        self._registry = None
        self._slow_log = None
        self._tracer = None
        self._instruments: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, database) -> None:
        """Bind to *database*, remember its static classes, and recover."""
        self._database = database
        self._base_classes = set(database.schema.classes)
        self.recover()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.wal.close()

    # ------------------------------------------------------------------
    # logging hooks
    # ------------------------------------------------------------------
    def log_commit(self, ts: int, ops: list[tuple]) -> None:
        encoded_ops = []
        for op in ops:
            tag = op[0]
            if tag in ("create", "update"):
                encoded_ops.append([tag, op[1], op[2], encode_values(op[3])])
            else:  # delete
                encoded_ops.append([tag, op[1], op[2]])
        self._append({"kind": "commit", "ts": ts, "ops": encoded_ops})
        self._commits_since_checkpoint += 1
        if (self.checkpoint_interval
                and self._commits_since_checkpoint >= self.checkpoint_interval):
            self.checkpoint()

    def log_ddl(self, op: tuple) -> None:
        self._append({"kind": op[0], "args": list(op[1:])})

    def flush(self) -> None:
        """Flush + fsync pending appends (clean-close durability)."""
        with self._lock:
            if not self._closed:
                self._observe_fsync(self.wal.flush(fsync=True))

    def _append(self, payload: dict[str, Any]) -> None:
        with self._lock:
            if self._closed:
                raise ServiceError(
                    "storage adapter is closed — cannot append to the WAL")
            started = time.perf_counter()
            nbytes, fsync_seconds = self.wal.append(payload)
            append_seconds = time.perf_counter() - started
        self._inc("wal_records", 1)
        self._inc("wal_bytes", nbytes)
        histogram = self._instruments.get("append")
        if histogram is not None:
            histogram.observe(append_seconds)
        self._observe_fsync(fsync_seconds)

    def _observe_fsync(self, fsync_seconds: float) -> None:
        if fsync_seconds <= 0.0:
            return
        self._inc("wal_fsyncs", 1)
        histogram = self._instruments.get("fsync")
        if histogram is not None:
            histogram.observe(fsync_seconds)
        if self._slow_log is not None \
                and self._slow_log.would_log(fsync_seconds):
            self._slow_log.record(text="<wal fsync stall>",
                                  seconds=fsync_seconds)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> Optional[int]:
        """Snapshot the attached database and truncate the WAL.

        Runs on the committing thread (auto-trigger) or under the
        service's write gate (explicit ``Connection.checkpoint()``), so
        no commit scope is in flight; MVCC readers keep running.  The
        snapshot timestamp stays pin-registered for the duration, and on
        success the version chains are pruned up to the new watermark.
        """
        database = self._database
        if database is None or self.recovering:
            return None
        with self._lock:
            if self._closed:
                return None
            span = (self._tracer.span("checkpoint")
                    if self._tracer is not None else contextlib.nullcontext())
            with span:
                ts = database.clock.published
                with database.snapshot_scope(ts):
                    state = serialize_checkpoint(database, self._base_classes)
                    body = json.dumps(state, separators=(",", ":"),
                                      ensure_ascii=False).encode("utf-8")
                    tmp_path = self.checkpoint_path + ".tmp"
                    with open(tmp_path, "wb") as handle:
                        handle.write(body)
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp_path, self.checkpoint_path)
                    self._fsync_directory()
                    self.wal.truncate(0)
            self._commits_since_checkpoint = 0
        self._inc("checkpoints_completed", 1)
        database.prune_versions()
        return ts

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Load the latest checkpoint and replay the WAL tail.

        Returns the number of replayed records.  A torn final record
        (crash mid-append) is truncated away so appends resume cleanly.
        """
        database = self._database
        if database is None:
            raise ServiceError("recover() needs an attached database")
        self.recovering = True
        try:
            state = self._load_checkpoint()
            if state is not None:
                restore_checkpoint(database, state)
            records, valid, total = self.wal.read_all()
            if valid < total:
                self.wal.truncate(valid)
                self._inc("recovery_discarded_bytes", total - valid)
            replayed = 0
            for record in records:
                if self._replay(database, record):
                    replayed += 1
            self._inc("recovery_replayed_records", replayed)
            return replayed
        finally:
            self.recovering = False

    def _load_checkpoint(self) -> Optional[dict[str, Any]]:
        try:
            with open(self.checkpoint_path, "rb") as handle:
                return json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            return None
        except (ValueError, UnicodeDecodeError) as exc:
            # A half-written checkpoint cannot exist (temp file + atomic
            # rename), so a parse failure is real corruption, not a crash
            # artifact — refuse to guess.
            raise ServiceError(
                f"corrupt checkpoint {self.checkpoint_path!r}: {exc}"
            ) from exc

    def _replay(self, database, record: dict[str, Any]) -> bool:
        kind = record["kind"]
        if kind == "commit":
            ts = record["ts"]
            if ts <= database.clock.published:
                return False  # already captured by the checkpoint
            with database.commit_scope():
                for op in record["ops"]:
                    self._replay_op(database, op)
            # Replay allocates dense timestamps from the restored clock;
            # pin the clock to the record's original stamp so subsequent
            # records (and the final published state) line up exactly.
            database.clock.restore(ts)
            return True
        if kind == "create_class":
            name, superclass, props = record["args"]
            if database.schema.has_class(name):
                return False
            property_defs = []
            from repro.datamodel.schema import PropertyDef
            for prop_name, spec, target in props:
                vml_type, _ = decode_type(spec)
                property_defs.append(
                    PropertyDef(prop_name, vml_type, target_class=target))
            database.create_class(name, superclass, property_defs)
            return True
        if kind == "create_index":
            index_kind, class_name, prop = record["args"]
            if index_kind == "text":
                if database.text_index(class_name, prop) is None:
                    database.create_text_index(class_name, prop)
                    return True
                return False
            if database.indexes.get(class_name, prop) is None:
                if index_kind == "hash":
                    database.create_hash_index(class_name, prop)
                else:
                    database.create_sorted_index(class_name, prop)
                return True
            return False
        if kind == "drop_index":
            class_name, prop, text = record["args"]
            if text:
                if database.text_index(class_name, prop) is not None:
                    database.drop_text_index(class_name, prop)
                    return True
            elif database.indexes.get(class_name, prop) is not None:
                database.drop_index(class_name, prop)
                return True
            return False
        if kind == "analyze":
            class_name, = record["args"]
            if class_name is None or database.schema.has_class(class_name):
                database.analyze(class_name)
                return True
            return False
        raise ServiceError(f"unknown WAL record kind {kind!r}")

    def _replay_op(self, database, op: list[Any]) -> None:
        tag = op[0]
        if tag == "create":
            _, class_name, serial, values = op
            oid = database.create(class_name, **decode_values(values))
            if oid.serial != serial:
                raise ServiceError(
                    f"WAL replay drift: created {oid}, expected serial "
                    f"{serial} — log and checkpoint disagree")
        elif tag == "update":
            _, class_name, serial, values = op
            database.update(OID(class_name, serial),
                            **decode_values(values))
        elif tag == "delete":
            _, class_name, serial = op
            database.delete(OID(class_name, serial))
        else:
            raise ServiceError(f"unknown WAL op {tag!r}")

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def bind_telemetry(self, registry=None, slow_log=None,
                       tracer=None) -> None:
        """Wire service telemetry into the adapter.

        Registry counters are seeded with the adapter's lifetime totals
        at bind time (recovery runs before any service exists, so its
        counts would otherwise never surface in ``Connection.metrics()``).
        """
        if slow_log is not None:
            self._slow_log = slow_log
        if tracer is not None:
            self._tracer = tracer
        if registry is None or registry is self._registry:
            return
        self._registry = registry
        self._instruments = {
            "append": registry.histogram(
                "repro_wal_append_seconds", "WAL record append latency"),
            "fsync": registry.histogram(
                "repro_wal_fsync_seconds", "WAL fsync latency"),
        }
        for name, help_text in (
                ("wal_records", "WAL records appended"),
                ("wal_bytes", "WAL bytes appended"),
                ("wal_fsyncs", "WAL fsync barriers"),
                ("checkpoints_completed", "checkpoints written"),
                ("recovery_replayed_records", "WAL records replayed"),
                ("recovery_discarded_bytes", "torn WAL bytes discarded")):
            counter = registry.counter(f"repro_{name}", help_text)
            if self._counters[name]:
                counter.inc(self._counters[name])
            self._instruments[name] = counter

    def counters(self) -> dict[str, int]:
        return dict(self._counters)

    def _inc(self, name: str, amount: int) -> None:
        if not amount:
            return
        self._counters[name] += amount
        counter = self._instruments.get(name)
        if counter is not None:
            counter.inc(amount)
