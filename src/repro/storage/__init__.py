"""Durable storage: write-ahead logging, checkpoints, crash recovery.

The database is in-memory first; this package makes its state survive
the process when asked to.  ``connect(durability="wal")`` (or the
``REPRO_DURABILITY`` environment variable) attaches a
:class:`FileStorageAdapter` to the database: every published commit
scope appends one checksummed record to a write-ahead log, periodic
checkpoints snapshot the full state and truncate the log, and opening a
database over an existing directory replays the surviving log tail on
top of the latest checkpoint.  ``durability="memory"`` (the default) is
the historical behavior — :class:`MemoryAdapter` persists nothing.

See DESIGN.md ("Durable storage") for the record format, the fsync
policies and the crash-consistency argument.
"""

from repro.storage.adapter import (
    FileStorageAdapter,
    MemoryAdapter,
    StorageAdapter,
)
from repro.storage.wal import WriteAheadLog, encode_record, read_records

__all__ = [
    "StorageAdapter",
    "MemoryAdapter",
    "FileStorageAdapter",
    "WriteAheadLog",
    "encode_record",
    "read_records",
]
