"""The write-ahead log: framed, checksummed, append-only records.

Record framing on disk is ``[4-byte big-endian payload length]
[4-byte CRC-32 of the payload][UTF-8 JSON payload]``.  A reader walks the
file front to back validating each frame; the first frame whose header is
short, whose payload is truncated, or whose checksum mismatches marks the
torn tail — everything before it is intact (appends are sequential, so a
crash can only tear the final record) and everything from it on is
discarded by recovery.

Fsync policy decides when an append becomes durable:

* ``always`` — fsync after every record (one fsync per commit scope);
* ``interval`` — group commit: data is written and flushed to the OS on
  every append, but fsync runs only when ``flush_interval_ms`` has passed
  since the last one, amortizing the disk barrier over a burst of
  commits;
* ``never`` — leave durability to the OS page cache (fastest; a crash
  may lose the tail even of acknowledged commits).

:meth:`WriteAheadLog.flush` forces write-out (and an fsync under any
policy but with ``fsync=True`` explicitly), which is what a clean
connection/database close calls so acknowledged commits are never lost
to buffering.
"""

from __future__ import annotations

import io
import json
import os
import struct
import threading
import time
import zlib
from typing import Any, Iterator, Optional

from repro.errors import ServiceError

__all__ = ["WriteAheadLog", "encode_record", "read_records", "FSYNC_POLICIES"]

_HEADER = struct.Struct(">II")
FSYNC_POLICIES = ("always", "interval", "never")


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame *payload* as one length-prefixed, checksummed WAL record."""
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def read_records(data: bytes) -> Iterator[tuple[dict[str, Any], int]]:
    """Yield ``(payload, end_offset)`` for every intact record in *data*.

    Stops silently at the first torn or corrupt frame: the byte offset of
    the last yielded record is the length recovery truncates the log to.
    """
    view = memoryview(data)
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, checksum = _HEADER.unpack_from(view, offset)
        end = offset + _HEADER.size + length
        if end > total:
            return  # torn tail: the final append never completed
        body = bytes(view[offset + _HEADER.size:end])
        if zlib.crc32(body) != checksum:
            return  # corrupt frame (torn overwrite) — discard from here
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        yield payload, end
        offset = end


class WriteAheadLog:
    """An append-only record log on one file with a configurable fsync
    policy (see the module docstring)."""

    def __init__(self, path: str, fsync: str = "interval",
                 flush_interval_ms: float = 5.0):
        if fsync not in FSYNC_POLICIES:
            raise ServiceError(
                f"unknown fsync policy {fsync!r} — expected one of "
                f"{', '.join(FSYNC_POLICIES)}")
        self.path = path
        self.fsync_policy = fsync
        self.flush_interval = max(flush_interval_ms, 0.0) / 1000.0
        self._lock = threading.RLock()
        self._file: Optional[io.BufferedWriter] = None
        self._last_fsync = time.monotonic()
        #: counters the adapter folds into its telemetry
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, payload: dict[str, Any]) -> tuple[int, float]:
        """Append one record; returns ``(bytes_written, fsync_seconds)``.

        The record is written and flushed to the OS unconditionally;
        whether an fsync follows is the policy's call.  ``fsync_seconds``
        is 0.0 when no barrier ran.
        """
        frame = encode_record(payload)
        with self._lock:
            handle = self._handle()
            handle.write(frame)
            handle.flush()
            self.records_appended += 1
            self.bytes_appended += len(frame)
            fsync_seconds = 0.0
            if self.fsync_policy == "always":
                fsync_seconds = self._fsync(handle)
            elif self.fsync_policy == "interval":
                now = time.monotonic()
                if now - self._last_fsync >= self.flush_interval:
                    fsync_seconds = self._fsync(handle)
        return len(frame), fsync_seconds

    def flush(self, fsync: bool = True) -> float:
        """Force buffered data out; returns fsync seconds (0.0 if none)."""
        with self._lock:
            if self._file is None:
                return 0.0
            self._file.flush()
            return self._fsync(self._file) if fsync else 0.0

    def _fsync(self, handle) -> float:
        started = time.perf_counter()
        os.fsync(handle.fileno())
        self.fsyncs += 1
        self._last_fsync = time.monotonic()
        return time.perf_counter() - started

    def _handle(self) -> io.BufferedWriter:
        if self._file is None:
            self._file = open(self.path, "ab")
        return self._file

    # ------------------------------------------------------------------
    # reading and maintenance
    # ------------------------------------------------------------------
    def read_all(self) -> tuple[list[dict[str, Any]], int, int]:
        """Every intact record plus ``(valid_length, file_length)``.

        ``valid_length < file_length`` signals a torn tail the caller
        should truncate away before appending resumes.
        """
        with self._lock:
            self.flush(fsync=False)
            try:
                with open(self.path, "rb") as handle:
                    data = handle.read()
            except FileNotFoundError:
                return [], 0, 0
        records: list[dict[str, Any]] = []
        valid = 0
        for payload, end in read_records(data):
            records.append(payload)
            valid = end
        return records, valid, len(data)

    def truncate(self, length: int = 0) -> None:
        """Cut the log to *length* bytes (0 = empty, after a checkpoint)."""
        with self._lock:
            self._close_handle()
            with open(self.path, "ab") as handle:
                handle.truncate(length)
                handle.flush()
                os.fsync(handle.fileno())

    def size(self) -> int:
        """Current on-disk length in bytes (buffered data flushed first)."""
        with self._lock:
            self.flush(fsync=False)
            try:
                return os.path.getsize(self.path)
            except FileNotFoundError:
                return 0

    def close(self) -> None:
        """Flush, fsync and release the file handle (idempotent)."""
        with self._lock:
            if self._file is not None:
                self.flush(fsync=True)
            self._close_handle()

    def _close_handle(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None
