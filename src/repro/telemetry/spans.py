"""Statement tracing: one span tree per statement.

A :class:`TraceSpan` is one timed stage of a statement's lifecycle —
analyze → plan-cache lookup → optimize → compile → execute — plus
cross-cutting children such as write-gate waits, parallel-morsel dispatch
and adaptive-feedback replans.  A :class:`Tracer` owns a bounded ring
buffer of finished statement trees and fans each one out to pluggable
sinks (:mod:`repro.telemetry.sinks`).

The design constraint is that tracing *off* must cost one branch per
instrumentation point: deep layers never talk to a tracer directly, they
call :func:`child_span`, which reads the thread-local *current span* and
returns a shared no-op singleton (no allocation) unless a statement span
is active on the calling thread.  Only statement entry points (the query
service, the cursor facade, the session) consult a :class:`Tracer` and
open root spans.

Thread model: a span tree is built by the one thread executing its
statement (``current span`` is thread-local, saved and restored around
every nesting, so service re-entry from method implementations nests
correctly).  Parallel morsel dispatch is recorded as a child on the
dispatching thread; worker threads themselves are not traced.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from collections import deque
from typing import Any, Iterable, Optional

__all__ = ["TraceSpan", "Tracer", "NOOP_SPAN", "current_span", "child_span",
           "annotate_current", "activation"]

logger = logging.getLogger("repro.telemetry")

_state = threading.local()
_ids = itertools.count(1)


def current_span() -> Optional["TraceSpan"]:
    """The span active on the calling thread (None = tracing inactive)."""
    return getattr(_state, "span", None)


class TraceSpan:
    """One timed, attributed stage of a statement's execution."""

    __slots__ = ("name", "span_id", "trace_id", "parent_id", "started",
                 "ended", "start_time", "attributes", "children", "status",
                 "error")

    def __init__(self, name: str, trace_id: int,
                 parent_id: Optional[int] = None, **attributes: Any):
        self.name = name
        self.span_id = next(_ids)
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.started = time.perf_counter()
        self.start_time = time.time()
        self.ended: Optional[float] = None
        self.attributes = attributes
        self.children: list[TraceSpan] = []
        self.status = "ok"
        self.error: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def child(self, name: str, **attributes: Any) -> "TraceSpan":
        """Create (and attach) a child span, started now."""
        child = TraceSpan(name, trace_id=self.trace_id,
                          parent_id=self.span_id, **attributes)
        self.children.append(child)
        return child

    def child_event(self, name: str, seconds: float,
                    **attributes: Any) -> "TraceSpan":
        """Attach a child for work measured elsewhere (e.g. the accumulated
        fetch time of a streamed cursor): it ends now and started *seconds*
        ago."""
        child = self.child(name, **attributes)
        child.started = child.started - max(seconds, 0.0)
        child.start_time = child.start_time - max(seconds, 0.0)
        child.ended = time.perf_counter()
        return child

    def annotate(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def finish(self, error: Optional[BaseException] = None) -> None:
        """Close the span (idempotent); *error* marks it failed."""
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"
        if self.ended is None:
            self.ended = time.perf_counter()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def duration_seconds(self) -> float:
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    def find(self, name: str) -> Optional["TraceSpan"]:
        """First span named *name* in this subtree (pre-order), or None."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def names(self) -> list[str]:
        """Pre-order span names of the subtree (the shape tests' golden)."""
        collected = [self.name]
        for child in self.children:
            collected.extend(child.names())
        return collected

    def to_dict(self) -> dict:
        """JSON-serializable representation of the subtree."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration_ms": round(self.duration_seconds * 1000.0, 4),
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __str__(self) -> str:
        return (f"TraceSpan({self.name}, {self.duration_ms:.3f}ms, "
                f"{self.status}, {len(self.children)} children)")

    @property
    def duration_ms(self) -> float:
        return self.duration_seconds * 1000.0


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-off fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager activating a span as the thread's current span and
    finishing it on exit (error status on exception, which re-raises)."""

    __slots__ = ("span", "_previous", "_tracer")

    def __init__(self, span: TraceSpan, tracer: Optional["Tracer"] = None):
        self.span = span
        self._tracer = tracer

    def __enter__(self) -> TraceSpan:
        self._previous = getattr(_state, "span", None)
        _state.span = self.span
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _state.span = self._previous
        self.span.finish(error=exc)
        if self._tracer is not None:
            self._tracer.record(self.span)
        return False


class _Activation:
    """Activate an already-open span without finishing it on exit.

    Used by the streamed-cursor path, where the statement span stays open
    until the stream exhausts but plan preparation must nest under it.
    An exception inside the body marks the span failed (and re-raises).
    """

    __slots__ = ("span", "_previous")

    def __init__(self, span: TraceSpan):
        self.span = span

    def __enter__(self) -> TraceSpan:
        self._previous = getattr(_state, "span", None)
        _state.span = self.span
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _state.span = self._previous
        if exc is not None:
            self.span.status = "error"
            self.span.error = f"{exc_type.__name__}: {exc}"
        return False


def child_span(name: str, **attributes: Any):
    """Open a child of the thread's current span — or a shared no-op when
    no statement span is active (the single-branch tracing-off path)."""
    parent = getattr(_state, "span", None)
    if parent is None:
        return NOOP_SPAN
    return _ActiveSpan(parent.child(name, **attributes))


def annotate_current(**attributes: Any) -> None:
    """Attach attributes to the current span; no-op when tracing is off."""
    span = getattr(_state, "span", None)
    if span is not None:
        span.attributes.update(attributes)


def activation(span: Optional[TraceSpan]):
    """Make *span* current for the ``with`` body without finishing it
    (no-op for ``span=None``) — see :class:`_Activation`."""
    if span is None:
        return NOOP_SPAN
    return _Activation(span)


class Tracer:
    """Records statement span trees into a ring buffer and sinks.

    Disabled by default: :meth:`span` and :meth:`begin_root` return the
    no-op singleton / None without allocating.  Enable per service
    (``QueryService(tracing=True)``, ``connect(..., tracing=True)``) or
    globally via the ``REPRO_TRACE`` environment variable.
    """

    def __init__(self, enabled: bool = False, capacity: int = 256,
                 sinks: Iterable[Any] = ()):
        self.enabled = enabled
        self._ring: deque[TraceSpan] = deque(maxlen=max(capacity, 1))
        self._lock = threading.Lock()
        self.sinks = list(sinks)

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        """Context manager for one statement span.

        Auto-nests: when a span is already active on this thread (service
        re-entry, a DML statement's WHERE-query), the new span becomes a
        child of it instead of a second root.
        """
        if not self.enabled:
            return NOOP_SPAN
        parent = getattr(_state, "span", None)
        if parent is not None:
            return _ActiveSpan(parent.child(name, **attributes))
        return _ActiveSpan(TraceSpan(name, trace_id=next(_ids), **attributes),
                           tracer=self)

    def begin_root(self, name: str, **attributes: Any) -> Optional[TraceSpan]:
        """Open a root span with a manual lifecycle (the streamed-cursor
        path): returns None when disabled *or* when a span is already
        active on this thread (nested statements are traced by their
        owner's context managers instead).  Pair with :meth:`finish`."""
        if not self.enabled or getattr(_state, "span", None) is not None:
            return None
        return TraceSpan(name, trace_id=next(_ids), **attributes)

    def finish(self, span: Optional[TraceSpan],
               error: Optional[BaseException] = None) -> None:
        """Finish a :meth:`begin_root` span and record it (idempotent)."""
        if span is None or span.ended is not None:
            return
        span.finish(error=error)
        self.record(span)

    def record(self, span: TraceSpan) -> None:
        """Append a finished root span to the ring and emit it to sinks."""
        with self._lock:
            self._ring.append(span)
        for sink in self.sinks:
            try:
                sink.emit(span)
            except Exception:  # a broken sink must never fail a statement
                logger.exception("span sink %r failed", sink)

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def recent(self, n: Optional[int] = None) -> list[TraceSpan]:
        """The most recent finished statement spans, oldest first."""
        with self._lock:
            spans = list(self._ring)
        return spans if n is None else spans[-n:]

    def export_jsonl(self, n: Optional[int] = None) -> str:
        """The recent span trees as JSON Lines (one tree per line)."""
        return "\n".join(json.dumps(span.to_dict(), default=str)
                         for span in self.recent(n))

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __str__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self)} spans, {len(self.sinks)} sinks)"
