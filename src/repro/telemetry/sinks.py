"""Pluggable span sinks: where finished statement traces go.

A sink is any object with ``emit(span)``; the :class:`~repro.telemetry.spans.Tracer`
calls it once per finished root span (exceptions are logged, never raised
into the statement).  Two implementations cover the common cases:
:class:`MemorySink` for tests and ad-hoc inspection, :class:`JsonlSink`
for durable JSON-Lines traces (one span tree per line).
"""

from __future__ import annotations

import json
import os
import threading
from typing import IO, Optional, Union

__all__ = ["JsonlSink", "MemorySink"]


class MemorySink:
    """Collects emitted span trees in a list (handy in tests)."""

    def __init__(self):
        self.spans = []
        self._lock = threading.Lock()

    def emit(self, span) -> None:
        with self._lock:
            self.spans.append(span)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)


class JsonlSink:
    """Writes each finished span tree as one JSON line.

    Accepts either a path (opened lazily in append mode, so a sink can be
    configured before the directory's first trace) or an already-open
    text stream such as ``sys.stderr``.
    """

    def __init__(self, target: Union[str, "os.PathLike[str]", IO[str]]):
        self._path: Optional[str] = None
        self._stream: Optional[IO[str]] = None
        if hasattr(target, "write"):
            self._stream = target
        else:
            self._path = os.fspath(target)
        self._lock = threading.Lock()

    def emit(self, span) -> None:
        line = json.dumps(span.to_dict(), default=str)
        with self._lock:
            if self._stream is None:
                self._stream = open(self._path, "a", encoding="utf-8")
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._path is not None and self._stream is not None:
                self._stream.close()
                self._stream = None

    def __str__(self) -> str:
        target = self._path if self._path is not None else self._stream
        return f"JsonlSink({target!r})"
