"""End-to-end telemetry: statement tracing, metrics, slow-query log.

Three cooperating pieces (see DESIGN.md "Telemetry"):

- :mod:`repro.telemetry.spans` — one :class:`TraceSpan` tree per
  statement (analyze → plan-cache → optimize → compile → execute),
  ring-buffered by a :class:`Tracer`, exported as JSONL via sinks.
- :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with
  counters, gauges, latency histograms (p50/p90/p99) and per-fingerprint
  top-K statement stats; Prometheus-text and JSON export.
- :mod:`repro.telemetry.slowlog` — threshold-gated structured logging of
  slow statements (``REPRO_SLOW_QUERY_MS``).

:func:`dump` renders a one-stop human-readable report for a
``Connection``, ``QueryService``, ``Tracer`` or ``MetricsRegistry``.
"""

from repro.telemetry.metrics import (Counter, DEFAULT_LATENCY_BUCKETS, Gauge,
                                     Histogram, MetricsRegistry)
from repro.telemetry.sinks import JsonlSink, MemorySink
from repro.telemetry.slowlog import SLOW_QUERY_ENV, SlowQueryLog
from repro.telemetry.spans import (NOOP_SPAN, TraceSpan, Tracer,
                                   annotate_current, child_span, current_span)

__all__ = [
    "TraceSpan", "Tracer", "NOOP_SPAN", "current_span", "child_span",
    "annotate_current",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "JsonlSink", "MemorySink",
    "SlowQueryLog", "SLOW_QUERY_ENV",
    "dump",
]


def dump(target, recent_spans: int = 5) -> str:
    """Render a human-readable telemetry report for *target*.

    Duck-typed: accepts a ``Connection`` (or anything exposing
    ``.service``), a ``QueryService`` (``.registry`` / ``.tracer``), a
    bare :class:`MetricsRegistry` or a bare :class:`Tracer`.
    """
    service = getattr(target, "service", target)
    registry = getattr(service, "registry", None)
    tracer = getattr(service, "tracer", None)
    if registry is None and isinstance(target, MetricsRegistry):
        registry = target
    if tracer is None and isinstance(target, Tracer):
        tracer = target

    sections: list[str] = []
    if registry is not None:
        sections.append("== metrics ==")
        sections.append(registry.export_prometheus().rstrip("\n"))
        top = registry.top_statements(5)
        if top:
            sections.append("== top statements ==")
            for stats in top:
                sections.append(
                    f"{stats['fingerprint']}: {stats['count']} calls, "
                    f"{stats['total_seconds'] * 1000.0:.2f}ms total, "
                    f"{stats['max_seconds'] * 1000.0:.2f}ms max, "
                    f"{stats['errors']} errors")
    if tracer is not None:
        spans = tracer.recent(recent_spans)
        sections.append(f"== recent traces ({len(spans)}) ==")
        for span in spans:
            sections.append(_render_span(span))
    if not sections:
        raise TypeError(
            f"cannot dump telemetry for {type(target).__name__}: expected a "
            "Connection, QueryService, MetricsRegistry or Tracer")
    return "\n".join(sections)


def _render_span(span: TraceSpan, indent: int = 0) -> str:
    detail = ""
    if span.attributes:
        rendered = ", ".join(f"{key}={value!r}"
                             for key, value in sorted(span.attributes.items()))
        detail = f" [{rendered}]"
    marker = "" if span.status == "ok" else f" !{span.status}: {span.error}"
    lines = [f"{'  ' * indent}{span.name} {span.duration_ms:.3f}ms"
             f"{detail}{marker}"]
    for child in span.children:
        lines.append(_render_span(child, indent + 1))
    return "\n".join(lines)
