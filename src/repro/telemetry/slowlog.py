"""Threshold-gated structured slow-query log.

Statements whose execute time crosses a millisecond threshold are logged
(as WARNING) through the standard :mod:`logging` channel
``repro.telemetry.slowlog`` with a structured payload: statement text,
query fingerprint, bind parameters (redacted by default — values are
replaced by their type names), cache-hit flag, row count, the chosen
plan and — when the per-operator profile was armed — estimated-vs-actual
cardinality records.

The threshold comes from the ``REPRO_SLOW_QUERY_MS`` environment
variable unless given explicitly; unset/blank means disabled, so the
off-path is one comparison per statement.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Any, Optional

__all__ = ["SlowQueryLog", "SLOW_QUERY_ENV", "slow_logger"]

SLOW_QUERY_ENV = "REPRO_SLOW_QUERY_MS"

slow_logger = logging.getLogger("repro.telemetry.slowlog")


def _threshold_from_env() -> Optional[float]:
    raw = os.environ.get(SLOW_QUERY_ENV, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        slow_logger.warning("ignoring non-numeric %s=%r", SLOW_QUERY_ENV, raw)
        return None


class SlowQueryLog:
    """Gate + formatter for slow-statement records.

    ``threshold_ms=None`` reads ``REPRO_SLOW_QUERY_MS`` once at
    construction; pass a number to override (0 logs every statement).
    """

    def __init__(self, threshold_ms: Optional[float] = None,
                 redact_parameters: bool = True,
                 logger: Optional[logging.Logger] = None):
        if threshold_ms is None:
            threshold_ms = _threshold_from_env()
        self.threshold_ms = threshold_ms
        self.redact_parameters = redact_parameters
        self.logger = logger if logger is not None else slow_logger

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def would_log(self, seconds: float) -> bool:
        """The per-statement gate: one comparison when disabled."""
        return (self.threshold_ms is not None
                and seconds * 1000.0 >= self.threshold_ms)

    def record(self, *, text: str, seconds: float,
               fingerprint: Optional[str] = None,
               parameters: Optional[dict] = None,
               plan: Optional[str] = None,
               cache_hit: Optional[bool] = None,
               rows: Optional[int] = None,
               profile: Optional[list] = None) -> Optional[dict]:
        """Log one slow statement; returns the payload (None if gated)."""
        if not self.would_log(seconds):
            return None
        payload: dict[str, Any] = {
            "event": "slow_query",
            "elapsed_ms": round(seconds * 1000.0, 3),
            "threshold_ms": self.threshold_ms,
            "statement": text,
        }
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if parameters:
            payload["parameters"] = self._render_parameters(parameters)
        if cache_hit is not None:
            payload["cache_hit"] = cache_hit
        if rows is not None:
            payload["rows"] = rows
        if plan is not None:
            payload["plan"] = plan
        if profile:
            payload["estimated_vs_actual"] = profile
        self.logger.warning("slow query (%.1fms): %s",
                            payload["elapsed_ms"],
                            json.dumps(payload, default=str))
        return payload

    def _render_parameters(self, parameters: dict) -> dict:
        if not self.redact_parameters:
            return dict(parameters)
        # Redacted form keeps the shape without leaking values: a slow-query
        # log routinely outlives the data-retention story of the data itself.
        return {name: f"<{type(value).__name__}>"
                for name, value in parameters.items()}

    def __str__(self) -> str:
        state = (f"threshold={self.threshold_ms}ms" if self.enabled
                 else "disabled")
        return f"SlowQueryLog({state}, redact={self.redact_parameters})"
