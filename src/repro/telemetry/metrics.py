"""Counters, gauges and fixed-bucket latency histograms.

A :class:`MetricsRegistry` is one service's metric namespace: counters
(monotonic totals), gauges (point-in-time values, optionally backed by a
callback so e.g. the plan-cache size is always read live) and
:class:`Histogram` latency distributions with p50/p90/p99 estimation by
linear interpolation inside fixed buckets.  Per-statement top-K stats are
tracked by query fingerprint.

Exports: :meth:`MetricsRegistry.export_json` (nested dict, the
machine-readable form) and :meth:`MetricsRegistry.export_prometheus`
(Prometheus text exposition: counters, gauges, histogram buckets plus
derived ``_p50``/``_p90``/``_p99`` gauges so percentiles are scrapeable
without server-side histogram_quantile support).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS"]

#: latency bucket upper bounds in seconds (an implicit +Inf bucket closes
#: the range) — 100µs to 10s, roughly logarithmic, chosen so sub-ms cached
#: executions and multi-second cold optimizations both resolve
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: either set explicitly (thread-safe) or backed
    by a zero-argument callback read at export time."""

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(self, name: str, help: str = "",
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket latency histogram with percentile estimation.

    Observations land in the first bucket whose upper bound is >= the
    value (one overflow bucket catches the rest).  ``percentile(q)``
    interpolates linearly inside the winning bucket; the overflow bucket
    reports the maximum observed value, so a pathological tail cannot be
    understated as the last finite bound.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.buckets = tuple(float(bound) for bound in buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimated value at quantile *q* in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target and bucket_count:
                    if index >= len(self.buckets):  # overflow bucket
                        return self._max
                    low = self.buckets[index - 1] if index else 0.0
                    high = self.buckets[index]
                    fraction = (target - (cumulative - bucket_count)) / bucket_count
                    return low + (high - low) * min(max(fraction, 0.0), 1.0)
            return self._max

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
            maximum = self._max if count else 0.0
        cumulative, buckets = 0, {}
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            buckets[bound] = cumulative
        return {
            "count": count,
            "sum": total,
            "max": maximum,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "buckets": buckets,
        }


class _StatementStats:
    """Per-fingerprint aggregate (guarded by the registry's statement lock)."""

    __slots__ = ("fingerprint", "count", "errors", "total_seconds",
                 "max_seconds")

    def __init__(self, fingerprint: str):
        self.fingerprint = fingerprint
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "count": self.count,
            "errors": self.errors,
            "total_seconds": self.total_seconds,
            "mean_seconds": (self.total_seconds / self.count
                             if self.count else 0.0),
            "max_seconds": self.max_seconds,
        }


class MetricsRegistry:
    """One namespace of counters, gauges, histograms and statement stats."""

    def __init__(self, max_statements: int = 512):
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._statements: dict[str, _StatementStats] = {}
        self._statements_lock = threading.Lock()
        self.max_statements = max(max_statements, 1)

    # ------------------------------------------------------------------
    # registration (get-or-create; names are unique across metric kinds)
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._register(name, lambda: Gauge(name, help, fn=fn), Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help, buckets=buckets), Histogram)

    def _register(self, name: str, factory, expected_type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected_type):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}")
            return metric

    # ------------------------------------------------------------------
    # per-statement top-K stats
    # ------------------------------------------------------------------
    def record_statement(self, fingerprint: str, seconds: float,
                         error: bool = False) -> None:
        """Fold one execution into the per-fingerprint aggregates.

        The table is bounded: beyond ``max_statements`` distinct
        fingerprints, the entry with the least accumulated time makes room
        — top-K reporting only needs the heavy hitters to survive.
        """
        with self._statements_lock:
            stats = self._statements.get(fingerprint)
            if stats is None:
                if len(self._statements) >= self.max_statements:
                    coldest = min(self._statements.values(),
                                  key=lambda s: s.total_seconds)
                    del self._statements[coldest.fingerprint]
                stats = _StatementStats(fingerprint)
                self._statements[fingerprint] = stats
            stats.count += 1
            stats.total_seconds += seconds
            if seconds > stats.max_seconds:
                stats.max_seconds = seconds
            if error:
                stats.errors += 1

    def top_statements(self, k: int = 10) -> list[dict[str, Any]]:
        """The *k* statements with the most accumulated execution time."""
        with self._statements_lock:
            ranked = sorted(self._statements.values(),
                            key=lambda s: s.total_seconds, reverse=True)
        return [stats.as_dict() for stats in ranked[:k]]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_json(self, top_statements: int = 10) -> dict[str, Any]:
        """Nested-dict snapshot of every metric plus the top-K statements."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.value
            else:
                histograms[metric.name] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "statements": self.top_statements(top_statements),
        }

    def export_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        lines: list[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {metric.name} counter")
                lines.append(f"{metric.name} {_format(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {metric.name} gauge")
                lines.append(f"{metric.name} {_format(metric.value)}")
            else:
                snapshot = metric.snapshot()
                lines.append(f"# TYPE {metric.name} histogram")
                for bound, cumulative in snapshot["buckets"].items():
                    lines.append(f'{metric.name}_bucket{{le="{_format(bound)}"}} '
                                 f"{cumulative}")
                lines.append(f'{metric.name}_bucket{{le="+Inf"}} '
                             f"{snapshot['count']}")
                lines.append(f"{metric.name}_sum {_format(snapshot['sum'])}")
                lines.append(f"{metric.name}_count {snapshot['count']}")
                for quantile in ("p50", "p90", "p99"):
                    lines.append(f"{metric.name}_{quantile} "
                                 f"{_format(snapshot[quantile])}")
        return "\n".join(lines) + "\n"

    def export(self, fmt: str = "json"):
        """Dispatch to :meth:`export_json` / :meth:`export_prometheus`."""
        if fmt == "json":
            return self.export_json()
        if fmt == "prometheus":
            return self.export_prometheus()
        raise ValueError(f"unknown metrics export format {fmt!r}")

    def __str__(self) -> str:
        with self._lock:
            return f"MetricsRegistry({len(self._metrics)} metrics)"


def _format(value: float) -> str:
    """Prometheus number formatting: integers without the trailing .0."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
