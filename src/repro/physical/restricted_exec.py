"""Direct interpreter for restricted-algebra plans.

The restricted algebra (Section 6.1) is executable on its own; this
interpreter is used by the expressive-power experiments (EXP-6) and by tests
that check normalization preserves query results.  It reuses the shared
expression evaluator for constants and the lifted access semantics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.algebra.expressions import Const
from repro.algebra.operators import (
    Diff,
    ExpressionSource,
    Get,
    LogicalOperator,
    NaturalJoin,
    Project,
    Union,
)
from repro.algebra.restricted import (
    CrossProduct,
    FlatMethod,
    FlatProperty,
    FlatRef,
    JoinCmp,
    MapClassMethod,
    MapConst,
    MapExtent,
    MapMethod,
    MapOperator,
    MapProperty,
    Operand,
    SelectCmp,
)
from repro.datamodel.database import Database
from repro.datamodel.oid import OID
from repro.errors import ExecutionError
from repro.physical.evaluator import evaluate, make_hashable
from repro.physical.executor import Row
from repro.physical.interpreter import _distinct, _iterate_set

__all__ = ["execute_restricted"]


def execute_restricted(plan: LogicalOperator, database: Database) -> list[Row]:
    """Execute a restricted-algebra plan directly."""
    if isinstance(plan, Get):
        return [{plan.ref: oid} for oid in database.extension(plan.class_name)]

    if isinstance(plan, ExpressionSource):
        value = evaluate(plan.expression, {}, database)
        return [{plan.ref: element} for element in _iterate_set(value, plan)]

    if isinstance(plan, Project):
        rows = execute_restricted(plan.input, database)
        return _distinct([{ref: row.get(ref) for ref in plan.kept} for row in rows])

    if isinstance(plan, (NaturalJoin, Union, Diff, CrossProduct)):
        return _execute_binary(plan, database)

    if isinstance(plan, SelectCmp):
        rows = execute_restricted(plan.input, database)
        return [row for row in rows
                if _compare(plan.op,
                            _operand_value(plan.left, row),
                            _operand_value(plan.right, row))]

    if isinstance(plan, JoinCmp):
        left_rows = execute_restricted(plan.left, database)
        right_rows = execute_restricted(plan.right, database)
        if plan.op == "==":
            table: dict[Any, list[Row]] = defaultdict(list)
            for right_row in right_rows:
                table[make_hashable(right_row.get(plan.right_ref))].append(right_row)
            result: list[Row] = []
            for left_row in left_rows:
                key = make_hashable(left_row.get(plan.left_ref))
                for right_row in table.get(key, ()):
                    result.append({**left_row, **right_row})
            return result
        result = []
        for left_row in left_rows:
            for right_row in right_rows:
                if _compare(plan.op, left_row.get(plan.left_ref),
                            right_row.get(plan.right_ref)):
                    result.append({**left_row, **right_row})
        return result

    if isinstance(plan, MapConst):
        rows = execute_restricted(plan.input, database)
        return [{**row, plan.new_ref: plan.value.value} for row in rows]

    if isinstance(plan, MapExtent):
        rows = execute_restricted(plan.input, database)
        extent = set(database.extension(plan.class_name))
        return [{**row, plan.new_ref: extent} for row in rows]

    if isinstance(plan, MapProperty):
        rows = execute_restricted(plan.input, database)
        return [{**row, plan.new_ref: _access(row.get(plan.src_ref),
                                              plan.prop, database)}
                for row in rows]

    if isinstance(plan, MapMethod):
        rows = execute_restricted(plan.input, database)
        result = []
        for row in rows:
            args = [_operand_value(arg, row) for arg in plan.args]
            receiver = row.get(plan.receiver_ref)
            result.append({**row, plan.new_ref: _invoke(receiver, plan.method,
                                                        args, database)})
        return result

    if isinstance(plan, MapClassMethod):
        rows = execute_restricted(plan.input, database)
        result = []
        for row in rows:
            args = [_operand_value(arg, row) for arg in plan.args]
            value = database.invoke_class_method(plan.class_name, plan.method, *args)
            result.append({**row, plan.new_ref: value})
        return result

    if isinstance(plan, MapOperator):
        rows = execute_restricted(plan.input, database)
        return [{**row, plan.new_ref: _apply_operator(
            plan.op, [_operand_value(op, row) for op in plan.operands])}
            for row in rows]

    if isinstance(plan, FlatProperty):
        rows = execute_restricted(plan.input, database)
        result = []
        for row in rows:
            value = _access(row.get(plan.src_ref), plan.prop, database)
            for element in _iterate_set(value, plan, allow_none=True):
                result.append({**row, plan.new_ref: element})
        return result

    if isinstance(plan, FlatMethod):
        rows = execute_restricted(plan.input, database)
        result = []
        for row in rows:
            args = [_operand_value(arg, row) for arg in plan.args]
            value = _invoke(row.get(plan.receiver_ref), plan.method, args, database)
            for element in _iterate_set(value, plan, allow_none=True):
                result.append({**row, plan.new_ref: element})
        return result

    if isinstance(plan, FlatRef):
        rows = execute_restricted(plan.input, database)
        result = []
        for row in rows:
            for element in _iterate_set(row.get(plan.src_ref), plan, allow_none=True):
                result.append({**row, plan.new_ref: element})
        return result

    raise ExecutionError(
        f"operator {plan.describe()} is not executable by the restricted "
        "interpreter")


def _execute_binary(plan: LogicalOperator, database: Database) -> list[Row]:
    left_rows = execute_restricted(plan.inputs()[0], database)
    right_rows = execute_restricted(plan.inputs()[1], database)
    if isinstance(plan, CrossProduct):
        return [{**l, **r} for l in left_rows for r in right_rows]
    if isinstance(plan, Union):
        return _distinct(left_rows + right_rows)
    if isinstance(plan, Diff):
        right_keys = {make_hashable(row) for row in right_rows}
        return [row for row in _distinct(left_rows)
                if make_hashable(row) not in right_keys]
    if isinstance(plan, NaturalJoin):
        common = plan.common_refs()
        if not common:
            return [{**l, **r} for l in left_rows for r in right_rows]
        table: dict[Any, list[Row]] = defaultdict(list)
        for right_row in right_rows:
            key = tuple(make_hashable(right_row.get(ref)) for ref in common)
            table[key].append(right_row)
        result: list[Row] = []
        for left_row in left_rows:
            key = tuple(make_hashable(left_row.get(ref)) for ref in common)
            for right_row in table.get(key, ()):
                result.append({**left_row, **right_row})
        return result
    raise ExecutionError(f"unexpected binary operator {plan.describe()}")


def _operand_value(operand: Operand, row: Row) -> Any:
    if isinstance(operand, Const):
        return operand.value
    return row.get(operand)


def _access(base: Any, prop: str, database: Database) -> Any:
    if base is None:
        return None
    if isinstance(base, OID):
        return database.value(base, prop)
    if isinstance(base, (set, frozenset, list, tuple)):
        collected: set = set()
        for member in base:
            value = _access(member, prop, database)
            if value is None:
                continue
            if isinstance(value, (set, frozenset, list, tuple)):
                collected.update(value)
            else:
                collected.add(value)
        return collected
    raise ExecutionError(f"cannot access property {prop!r} on {base!r}")


def _invoke(receiver: Any, method: str, args: list[Any],
            database: Database) -> Any:
    if receiver is None:
        return None
    if isinstance(receiver, OID):
        return database.invoke(receiver, method, *args)
    if isinstance(receiver, (set, frozenset, list, tuple)):
        collected: set = set()
        for member in receiver:
            value = _invoke(member, method, args, database)
            if value is None:
                continue
            if isinstance(value, (set, frozenset, list, tuple)):
                collected.update(value)
            else:
                collected.add(value)
        return collected
    raise ExecutionError(f"cannot invoke {method!r} on {receiver!r}")


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return False
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    if op == "IS-IN":
        if right is None:
            return False
        return left in right
    if op == "IS-SUBSET":
        left_set = left if isinstance(left, (set, frozenset)) else {left}
        right_set = right if isinstance(right, (set, frozenset)) else {right}
        return set(left_set).issubset(set(right_set))
    raise ExecutionError(f"unknown comparison {op!r}")


def _apply_operator(op: str, values: list[Any]) -> Any:
    if op == "IDENTITY":
        return values[0]
    if op == "NOT":
        return not bool(values[0])
    if op == "AND":
        return all(bool(v) for v in values)
    if op == "OR":
        return any(bool(v) for v in values)
    if op in ("==", "!=", "<", "<=", ">", ">=", "IS-IN", "IS-SUBSET"):
        return _compare(op, values[0], values[1])
    if op == "+":
        return values[0] + values[1]
    if op == "-":
        return values[0] - values[1] if len(values) == 2 else -values[0]
    if op == "*":
        return values[0] * values[1]
    if op == "/":
        return values[0] / values[1]
    if op in ("INTERSECT", "UNION", "DIFF"):
        left = set(values[0]) if values[0] is not None else set()
        right = set(values[1]) if values[1] is not None else set()
        if op == "INTERSECT":
            return left & right
        if op == "UNION":
            return left | right
        return left - right
    raise ExecutionError(f"unknown map_operator operation {op!r}")
