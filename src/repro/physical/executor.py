"""Compiled, pipelined execution of physical plans.

This is the production engine: each operator becomes a generator that pulls
rows from its input (Volcano-style pipelining), so Filter→Map→Project
chains stream without materializing intermediate lists, and every
expression parameter is compiled once per :func:`execute_plan` call by
:mod:`repro.physical.compiler` instead of being re-interpreted per row.

The public contract is unchanged from the seed interpreter (retained in
:mod:`repro.physical.interpreter` as the differential-testing reference):
``execute_plan`` returns a list of rows — mappings from references to
values — with the algebra's set semantics: duplicate elimination happens at
projections, unions and set scans, while the other operators preserve
distinctness of their inputs.  Row order and database work counters match
the reference engine.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator

from repro.algebra.expressions import Expression
from repro.datamodel.database import Database
from repro.errors import ExecutionError
from repro.physical.compiler import ExpressionCompiler
from repro.physical.evaluator import EMPTY_ROW, make_hashable
from repro.physical.interpreter import _iterate_set, _require_index
from repro.physical.parallel import (
    merge_hash_join,
    run_filter_morsels,
    run_key_morsels,
    run_map_morsels,
)
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    IndexEqScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    ParallelHashJoin,
    ParallelIndexEqScan,
    ParallelIndexRangeScan,
    ParallelMap,
    ParallelScan,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
)
from repro.telemetry.spans import child_span

__all__ = ["execute_plan", "Row"]

Row = dict[str, Any]


def execute_plan(plan: PhysicalOperator, database: Database,
                 profile=None) -> list[Row]:
    """Execute *plan* against *database* and return the result rows.

    *profile* (a :class:`repro.physical.profile.PlanProfile`) enables
    per-operator row/open/elapsed instrumentation — the EXPLAIN ANALYZE
    counters.  Profiling wraps every operator's iterator; work counters and
    results are unaffected.
    """
    compiler = ExpressionCompiler(database, profile=profile)
    with child_span("execute", engine="compiled") as span:
        rows = list(_open(plan, database, compiler))
        if span is not None:
            span.annotate(rows=len(rows))
    return rows


def _open(plan: PhysicalOperator, database: Database,
          compiler: ExpressionCompiler) -> Iterator[Row]:
    """Open *plan* as a row iterator (expressions compiled once)."""
    builder = _BUILDERS.get(type(plan))
    if builder is None:
        raise ExecutionError(f"unknown physical operator {plan!r}")
    iterator = builder(plan, database, compiler)
    if compiler.profile is not None:
        return compiler.profile.wrap(plan, iterator)
    return iterator


# ----------------------------------------------------------------------
# access paths
# ----------------------------------------------------------------------
def _class_scan(plan: ClassScan, database: Database,
                compiler: ExpressionCompiler) -> Iterator[Row]:
    ref = plan.ref
    for oid in database.extension(plan.class_name):
        yield {ref: oid}


def _index_eq_scan(plan: IndexEqScan, database: Database,
                   compiler: ExpressionCompiler) -> Iterator[Row]:
    index = _require_index(plan, database)
    key = plan.key
    if isinstance(key, Expression):
        # Expression keys (bind parameters) are resolved once per execution.
        key = compiler.compile(key)(EMPTY_ROW)
    database.statistics.record_index_lookup()
    ref = plan.ref
    for oid in sorted(index.lookup(key)):
        yield {ref: oid}


def _index_range_scan(plan: IndexRangeScan, database: Database,
                      compiler: ExpressionCompiler) -> Iterator[Row]:
    index = _require_index(plan, database)
    if index.kind != "sorted":
        raise ExecutionError(
            f"{plan.describe()} requires a sorted index, found "
            f"{index.kind!r}")
    database.statistics.record_index_lookup()
    ref = plan.ref
    oids = index.range(plan.low, plan.high,
                       include_low=plan.include_low,
                       include_high=plan.include_high)
    for oid in sorted(oids):
        yield {ref: oid}


def _expression_set_scan(plan: ExpressionSetScan, database: Database,
                         compiler: ExpressionCompiler) -> Iterator[Row]:
    value = compiler.compile(plan.expression)(EMPTY_ROW)
    ref = plan.ref
    for element in _iterate_set(value, plan):
        yield {ref: element}


# ----------------------------------------------------------------------
# streaming unary operators
# ----------------------------------------------------------------------
def _filter(plan: Filter, database: Database,
            compiler: ExpressionCompiler) -> Iterator[Row]:
    predicate = compiler.compile_predicate(plan.condition)
    for row in _open(plan.input, database, compiler):
        if predicate(row):
            yield row


def _set_probe_filter(plan: SetProbeFilter, database: Database,
                      compiler: ExpressionCompiler) -> Iterator[Row]:
    # The probe set is reference-free; build it once (always, matching the
    # reference engine's work counters even for empty inputs).
    value = compiler.compile(plan.set_expression)(EMPTY_ROW)
    members = {make_hashable(v) for v in _iterate_set(value, plan)}
    ref = plan.ref
    for row in _open(plan.input, database, compiler):
        if make_hashable(row.get(ref)) in members:
            yield row


def _map_eval(plan: MapEval, database: Database,
              compiler: ExpressionCompiler) -> Iterator[Row]:
    expression = compiler.compile(plan.expression)
    ref = plan.ref
    for row in _open(plan.input, database, compiler):
        yield {**row, ref: expression(row)}


def _flatten_eval(plan: FlattenEval, database: Database,
                  compiler: ExpressionCompiler) -> Iterator[Row]:
    expression = compiler.compile(plan.expression)
    ref = plan.ref
    for row in _open(plan.input, database, compiler):
        value = expression(row)
        for element in _iterate_set(value, plan, allow_none=True):
            yield {**row, ref: element}


def _project(plan: ProjectOp, database: Database,
             compiler: ExpressionCompiler) -> Iterator[Row]:
    kept = plan.kept  # sorted by construction, so keys make a stable dedup key
    seen: set[Any] = set()
    for row in _open(plan.input, database, compiler):
        key = tuple(make_hashable(row.get(ref)) for ref in kept)
        if key not in seen:
            seen.add(key)
            yield {ref: row.get(ref) for ref in kept}


# ----------------------------------------------------------------------
# joins (build side materialized once, probe side streamed)
# ----------------------------------------------------------------------
def _nested_loop_join(plan: NestedLoopJoin, database: Database,
                      compiler: ExpressionCompiler) -> Iterator[Row]:
    predicate = compiler.compile_predicate(plan.condition)
    right_rows = list(_open(plan.right, database, compiler))
    for left_row in _open(plan.left, database, compiler):
        for right_row in right_rows:
            combined = {**left_row, **right_row}
            if predicate(combined):
                yield combined


def _hash_join(plan: HashJoin, database: Database,
               compiler: ExpressionCompiler) -> Iterator[Row]:
    left_key = compiler.compile(plan.left_key)
    right_key = compiler.compile(plan.right_key)
    table: dict[Any, list[Row]] = defaultdict(list)
    for right_row in _open(plan.right, database, compiler):
        table[make_hashable(right_key(right_row))].append(right_row)
    for left_row in _open(plan.left, database, compiler):
        matches = table.get(make_hashable(left_key(left_row)))
        if matches:
            for right_row in matches:
                yield {**left_row, **right_row}


def _index_nested_loop_join(plan: IndexNestedLoopJoin, database: Database,
                            compiler: ExpressionCompiler) -> Iterator[Row]:
    index = _require_index(plan, database)
    left_key = compiler.compile(plan.left_key)
    ref = plan.ref
    statistics = database.statistics
    for left_row in _open(plan.left, database, compiler):
        statistics.record_index_lookup()
        # OID-sorted probe result, matching IndexEqScan's deterministic order.
        for oid in sorted(index.lookup(left_key(left_row))):
            yield {**left_row, ref: oid}


def _natural_merge_join(plan: NaturalMergeJoin, database: Database,
                        compiler: ExpressionCompiler) -> Iterator[Row]:
    common = plan.common_refs()
    right_rows = list(_open(plan.right, database, compiler))
    if not common:
        # Degenerates to a cartesian product, as in the logical algebra.
        for left_row in _open(plan.left, database, compiler):
            for right_row in right_rows:
                yield {**left_row, **right_row}
        return
    table: dict[Any, list[Row]] = defaultdict(list)
    for right_row in right_rows:
        key = tuple(make_hashable(right_row.get(ref)) for ref in common)
        table[key].append(right_row)
    for left_row in _open(plan.left, database, compiler):
        key = tuple(make_hashable(left_row.get(ref)) for ref in common)
        matches = table.get(key)
        if matches:
            for right_row in matches:
                yield {**left_row, **right_row}


# ----------------------------------------------------------------------
# set operators (streaming dedup)
# ----------------------------------------------------------------------
def _union(plan: UnionOp, database: Database,
           compiler: ExpressionCompiler) -> Iterator[Row]:
    seen: set[Any] = set()
    for side in (plan.left, plan.right):
        for row in _open(side, database, compiler):
            key = make_hashable(row)
            if key not in seen:
                seen.add(key)
                yield row


def _diff(plan: DiffOp, database: Database,
          compiler: ExpressionCompiler) -> Iterator[Row]:
    right_keys = {make_hashable(row)
                  for row in _open(plan.right, database, compiler)}
    seen: set[Any] = set()
    for row in _open(plan.left, database, compiler):
        key = make_hashable(row)
        if key in seen:
            continue
        seen.add(key)
        if key not in right_keys:
            yield row


# ----------------------------------------------------------------------
# parallel operators (morsel-driven, ordered merge; shared bodies live in
# repro.physical.parallel so the prepared engine stays in lock-step)
# ----------------------------------------------------------------------
def _parallel_scan(plan: ParallelScan, database: Database,
                   compiler: ExpressionCompiler) -> Iterator[Row]:
    predicate = (compiler.compile_predicate(plan.condition)
                 if plan.condition is not None else None)
    partitions = database.extension_partitions(plan.class_name)
    return iter(run_filter_morsels(partitions, predicate, plan.ref,
                                   plan.degree))


def _parallel_index_eq_scan(plan: ParallelIndexEqScan, database: Database,
                            compiler: ExpressionCompiler) -> Iterator[Row]:
    index = _require_index(plan, database)
    key = plan.key
    if isinstance(key, Expression):
        key = compiler.compile(key)(EMPTY_ROW)
    database.statistics.record_index_lookup()
    predicate = (compiler.compile_predicate(plan.condition)
                 if plan.condition is not None else None)
    return iter(run_filter_morsels([sorted(index.lookup(key))], predicate,
                                   plan.ref, plan.degree))


def _parallel_index_range_scan(plan: ParallelIndexRangeScan, database: Database,
                               compiler: ExpressionCompiler) -> Iterator[Row]:
    index = _require_index(plan, database)
    if index.kind != "sorted":
        raise ExecutionError(
            f"{plan.describe()} requires a sorted index, found "
            f"{index.kind!r}")
    database.statistics.record_index_lookup()
    oids = index.range(plan.low, plan.high,
                       include_low=plan.include_low,
                       include_high=plan.include_high)
    predicate = (compiler.compile_predicate(plan.condition)
                 if plan.condition is not None else None)
    return iter(run_filter_morsels([sorted(oids)], predicate,
                                   plan.ref, plan.degree))


def _parallel_map(plan: ParallelMap, database: Database,
                  compiler: ExpressionCompiler) -> Iterator[Row]:
    expression = compiler.compile(plan.expression)
    rows = list(_open(plan.input, database, compiler))
    return iter(run_map_morsels(rows, expression, plan.ref, plan.degree))


def _parallel_hash_join(plan: ParallelHashJoin, database: Database,
                        compiler: ExpressionCompiler) -> Iterator[Row]:
    left_key = compiler.compile(plan.left_key)
    right_key = compiler.compile(plan.right_key)
    degree = plan.degree
    # Build side first, then probe side: the sequential HashJoin's work
    # ordering, so statistics interleave the same way.
    right_rows = list(_open(plan.right, database, compiler))
    right_keys = run_key_morsels(right_rows, right_key, degree)
    left_rows = list(_open(plan.left, database, compiler))
    left_keys = run_key_morsels(left_rows, left_key, degree)
    return merge_hash_join(left_rows, left_keys, right_rows, right_keys)


_BUILDERS = {
    ClassScan: _class_scan,
    IndexEqScan: _index_eq_scan,
    IndexRangeScan: _index_range_scan,
    ExpressionSetScan: _expression_set_scan,
    Filter: _filter,
    SetProbeFilter: _set_probe_filter,
    MapEval: _map_eval,
    FlattenEval: _flatten_eval,
    ProjectOp: _project,
    NestedLoopJoin: _nested_loop_join,
    IndexNestedLoopJoin: _index_nested_loop_join,
    HashJoin: _hash_join,
    NaturalMergeJoin: _natural_merge_join,
    UnionOp: _union,
    DiffOp: _diff,
    ParallelScan: _parallel_scan,
    ParallelIndexEqScan: _parallel_index_eq_scan,
    ParallelIndexRangeScan: _parallel_index_range_scan,
    ParallelMap: _parallel_map,
    ParallelHashJoin: _parallel_hash_join,
}
