"""Execution of physical plans.

The executor interprets physical plan trees bottom-up, producing lists of
rows (mappings from references to values).  The algebra has set semantics;
duplicate elimination happens at projections, unions and set scans, while
the other operators preserve distinctness of their inputs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.datamodel.database import Database
from repro.errors import ExecutionError
from repro.physical.evaluator import evaluate, evaluate_predicate, make_hashable
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
)

__all__ = ["execute_plan", "Row"]

Row = dict[str, Any]


def execute_plan(plan: PhysicalOperator, database: Database) -> list[Row]:
    """Execute *plan* against *database* and return the result rows."""
    if isinstance(plan, ClassScan):
        return [{plan.ref: oid} for oid in database.extension(plan.class_name)]

    if isinstance(plan, ExpressionSetScan):
        value = evaluate(plan.expression, {}, database)
        return [{plan.ref: element} for element in _iterate_set(value, plan)]

    if isinstance(plan, Filter):
        rows = execute_plan(plan.input, database)
        return [row for row in rows
                if evaluate_predicate(plan.condition, row, database)]

    if isinstance(plan, SetProbeFilter):
        rows = execute_plan(plan.input, database)
        members = {make_hashable(v)
                   for v in _iterate_set(
                       evaluate(plan.set_expression, {}, database), plan)}
        return [row for row in rows
                if make_hashable(row.get(plan.ref)) in members]

    if isinstance(plan, NestedLoopJoin):
        left_rows = execute_plan(plan.left, database)
        right_rows = execute_plan(plan.right, database)
        result: list[Row] = []
        for left_row in left_rows:
            for right_row in right_rows:
                combined = {**left_row, **right_row}
                if evaluate_predicate(plan.condition, combined, database):
                    result.append(combined)
        return result

    if isinstance(plan, HashJoin):
        left_rows = execute_plan(plan.left, database)
        right_rows = execute_plan(plan.right, database)
        table: dict[Any, list[Row]] = defaultdict(list)
        for right_row in right_rows:
            key = make_hashable(evaluate(plan.right_key, right_row, database))
            table[key].append(right_row)
        result = []
        for left_row in left_rows:
            key = make_hashable(evaluate(plan.left_key, left_row, database))
            for right_row in table.get(key, ()):
                result.append({**left_row, **right_row})
        return result

    if isinstance(plan, NaturalMergeJoin):
        left_rows = execute_plan(plan.left, database)
        right_rows = execute_plan(plan.right, database)
        common = plan.common_refs()
        if not common:
            # Degenerates to a cartesian product, as in the logical algebra.
            return [{**l, **r} for l in left_rows for r in right_rows]
        table = defaultdict(list)
        for right_row in right_rows:
            key = tuple(make_hashable(right_row.get(ref)) for ref in common)
            table[key].append(right_row)
        result = []
        for left_row in left_rows:
            key = tuple(make_hashable(left_row.get(ref)) for ref in common)
            for right_row in table.get(key, ()):
                result.append({**left_row, **right_row})
        return result

    if isinstance(plan, MapEval):
        rows = execute_plan(plan.input, database)
        return [{**row, plan.ref: evaluate(plan.expression, row, database)}
                for row in rows]

    if isinstance(plan, FlattenEval):
        rows = execute_plan(plan.input, database)
        result = []
        for row in rows:
            value = evaluate(plan.expression, row, database)
            for element in _iterate_set(value, plan, allow_none=True):
                result.append({**row, plan.ref: element})
        return result

    if isinstance(plan, ProjectOp):
        rows = execute_plan(plan.input, database)
        return _distinct([{ref: row.get(ref) for ref in plan.kept} for row in rows])

    if isinstance(plan, UnionOp):
        left_rows = execute_plan(plan.left, database)
        right_rows = execute_plan(plan.right, database)
        return _distinct(left_rows + right_rows)

    if isinstance(plan, DiffOp):
        left_rows = execute_plan(plan.left, database)
        right_rows = execute_plan(plan.right, database)
        right_keys = {make_hashable(row) for row in right_rows}
        return [row for row in _distinct(left_rows)
                if make_hashable(row) not in right_keys]

    raise ExecutionError(f"unknown physical operator {plan!r}")


def _iterate_set(value: Any, plan: PhysicalOperator,
                 allow_none: bool = False) -> list[Any]:
    """Interpret *value* as a set of elements for scanning/flattening."""
    if value is None:
        if allow_none:
            return []
        raise ExecutionError(
            f"{plan.describe()} evaluated to None instead of a set")
    if isinstance(value, (set, frozenset, list, tuple)):
        seen: set[Any] = set()
        elements: list[Any] = []
        for element in value:
            key = make_hashable(element)
            if key not in seen:
                seen.add(key)
                elements.append(element)
        return elements
    # A scalar is treated as a singleton set, which keeps single-valued
    # expressions (e.g. a path ending in a single object) usable in FROM.
    return [value]


def _distinct(rows: list[Row]) -> list[Row]:
    seen: set[Any] = set()
    result: list[Row] = []
    for row in rows:
        key = make_hashable(row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result
