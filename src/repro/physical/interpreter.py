"""Reference interpreter for physical plans (the seed execution engine).

This module preserves the original interpretive executor: every operator
fully materializes its input into a list of rows and every expression is
evaluated by the recursive tree-walking :mod:`repro.physical.evaluator`.

It is retained for two purposes:

* as the *semantic reference* the compiled pipelined engine in
  :mod:`repro.physical.executor` is differentially tested against
  (``tests/test_property_based.py``), and
* as the baseline of the engine benchmark
  (``benchmarks/bench_exp8_engine.py``), which quantifies what compilation
  and pipelining buy on identical physical plans.

Production code should use :func:`repro.physical.executor.execute_plan`;
both entry points implement exactly the same list-of-Row contract with set
semantics (duplicate elimination at projections, unions and set scans).

The helpers ``_iterate_set``, ``_distinct`` and ``_require_index`` are
imported by the compiled engine and the restricted executor so that the
set-coercion and index-lookup semantics are defined in exactly one place.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Any

from repro.algebra.expressions import Expression
from repro.datamodel.database import Database
from repro.errors import ExecutionError
from repro.physical.evaluator import (
    EMPTY_ROW,
    evaluate,
    evaluate_predicate,
    make_hashable,
)
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    IndexEqScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    ParallelIndexEqScan,
    ParallelIndexRangeScan,
    ParallelScan,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
)
from repro.telemetry.spans import child_span

__all__ = ["execute_plan_interpreted", "Row"]

Row = dict[str, Any]


def execute_plan_interpreted(plan: PhysicalOperator,
                             database: Database,
                             profile=None) -> list[Row]:
    """Execute *plan* against *database* interpretively (reference engine).

    Parallel operators are executed *sequentially* with identical semantics
    (partition order for :class:`ParallelScan`, OID order for the parallel
    index scans) — this is what makes the interpreter the oracle every
    parallel plan is differentially checked against.  ``ParallelMap`` and
    ``ParallelHashJoin`` need no cases of their own: their sequential
    semantics are exactly their parent operators', which the isinstance
    dispatch in :func:`_interpret_node` already covers.

    *profile* (a :class:`repro.physical.profile.PlanProfile`) enables the
    per-operator EXPLAIN ANALYZE counters; since this engine materializes
    rather than streams, each operator records its whole (inclusive)
    evaluation in one step.
    """
    with child_span("execute", engine="interpreter") as span:
        rows = _interpret(plan, database, profile)
        if span is not None:
            span.annotate(rows=len(rows))
    return rows


def _interpret(plan: PhysicalOperator, database: Database,
               profile) -> list[Row]:
    """One recursion step: evaluate *plan*, recording counters if asked."""
    if profile is None:
        return _interpret_node(plan, database, profile)
    started = time.perf_counter()
    rows = _interpret_node(plan, database, profile)
    profile.record(plan, len(rows), time.perf_counter() - started)
    return rows


def _interpret_node(plan: PhysicalOperator, database: Database,
                    profile) -> list[Row]:
    """The operator dispatch of the reference engine."""
    if isinstance(plan, ParallelScan):
        rows: list[Row] = []
        for partition in database.extension_partitions(plan.class_name):
            for oid in partition:
                row = {plan.ref: oid}
                if plan.condition is None or evaluate_predicate(
                        plan.condition, row, database):
                    rows.append(row)
        return rows

    if isinstance(plan, ClassScan):
        return [{plan.ref: oid} for oid in database.extension(plan.class_name)]

    if isinstance(plan, IndexEqScan):
        index = _require_index(plan, database)
        key = plan.key
        if isinstance(key, Expression):
            # Expression keys (bind parameters) are resolved per execution;
            # an unbound Parameter raises, as everywhere in this engine.
            key = evaluate(key, EMPTY_ROW, database)
        database.statistics.record_index_lookup()
        rows = [{plan.ref: oid} for oid in sorted(index.lookup(key))]
        # The parallel variant only adds a residual predicate on top of the
        # identical lookup semantics (same for the range scan below).
        if isinstance(plan, ParallelIndexEqScan) and plan.condition is not None:
            rows = [row for row in rows
                    if evaluate_predicate(plan.condition, row, database)]
        return rows

    if isinstance(plan, IndexRangeScan):
        index = _require_index(plan, database)
        if index.kind != "sorted":
            raise ExecutionError(
                f"{plan.describe()} requires a sorted index, found "
                f"{index.kind!r}")
        database.statistics.record_index_lookup()
        oids = index.range(plan.low, plan.high,
                           include_low=plan.include_low,
                           include_high=plan.include_high)
        rows = [{plan.ref: oid} for oid in sorted(oids)]
        if isinstance(plan, ParallelIndexRangeScan) and plan.condition is not None:
            rows = [row for row in rows
                    if evaluate_predicate(plan.condition, row, database)]
        return rows

    if isinstance(plan, ExpressionSetScan):
        value = evaluate(plan.expression, {}, database)
        return [{plan.ref: element} for element in _iterate_set(value, plan)]

    if isinstance(plan, Filter):
        rows = _interpret(plan.input, database, profile)
        return [row for row in rows
                if evaluate_predicate(plan.condition, row, database)]

    if isinstance(plan, SetProbeFilter):
        rows = _interpret(plan.input, database, profile)
        members = {make_hashable(v)
                   for v in _iterate_set(
                       evaluate(plan.set_expression, {}, database), plan)}
        return [row for row in rows
                if make_hashable(row.get(plan.ref)) in members]

    if isinstance(plan, NestedLoopJoin):
        left_rows = _interpret(plan.left, database, profile)
        right_rows = _interpret(plan.right, database, profile)
        result: list[Row] = []
        for left_row in left_rows:
            for right_row in right_rows:
                combined = {**left_row, **right_row}
                if evaluate_predicate(plan.condition, combined, database):
                    result.append(combined)
        return result

    if isinstance(plan, IndexNestedLoopJoin):
        index = _require_index(plan, database)
        left_rows = _interpret(plan.left, database, profile)
        result = []
        for left_row in left_rows:
            key = evaluate(plan.left_key, left_row, database)
            database.statistics.record_index_lookup()
            for oid in sorted(index.lookup(key)):
                result.append({**left_row, plan.ref: oid})
        return result

    if isinstance(plan, HashJoin):
        left_rows = _interpret(plan.left, database, profile)
        right_rows = _interpret(plan.right, database, profile)
        table: dict[Any, list[Row]] = defaultdict(list)
        for right_row in right_rows:
            key = make_hashable(evaluate(plan.right_key, right_row, database))
            table[key].append(right_row)
        result = []
        for left_row in left_rows:
            key = make_hashable(evaluate(plan.left_key, left_row, database))
            for right_row in table.get(key, ()):
                result.append({**left_row, **right_row})
        return result

    if isinstance(plan, NaturalMergeJoin):
        left_rows = _interpret(plan.left, database, profile)
        right_rows = _interpret(plan.right, database, profile)
        common = plan.common_refs()
        if not common:
            # Degenerates to a cartesian product, as in the logical algebra.
            return [{**l, **r} for l in left_rows for r in right_rows]
        table = defaultdict(list)
        for right_row in right_rows:
            key = tuple(make_hashable(right_row.get(ref)) for ref in common)
            table[key].append(right_row)
        result = []
        for left_row in left_rows:
            key = tuple(make_hashable(left_row.get(ref)) for ref in common)
            for right_row in table.get(key, ()):
                result.append({**left_row, **right_row})
        return result

    if isinstance(plan, MapEval):
        rows = _interpret(plan.input, database, profile)
        return [{**row, plan.ref: evaluate(plan.expression, row, database)}
                for row in rows]

    if isinstance(plan, FlattenEval):
        rows = _interpret(plan.input, database, profile)
        result = []
        for row in rows:
            value = evaluate(plan.expression, row, database)
            for element in _iterate_set(value, plan, allow_none=True):
                result.append({**row, plan.ref: element})
        return result

    if isinstance(plan, ProjectOp):
        rows = _interpret(plan.input, database, profile)
        return _distinct([{ref: row.get(ref) for ref in plan.kept} for row in rows])

    if isinstance(plan, UnionOp):
        left_rows = _interpret(plan.left, database, profile)
        right_rows = _interpret(plan.right, database, profile)
        return _distinct(left_rows + right_rows)

    if isinstance(plan, DiffOp):
        left_rows = _interpret(plan.left, database, profile)
        right_rows = _interpret(plan.right, database, profile)
        right_keys = {make_hashable(row) for row in right_rows}
        return [row for row in _distinct(left_rows)
                if make_hashable(row) not in right_keys]

    raise ExecutionError(f"unknown physical operator {plan!r}")


def _require_index(plan: IndexEqScan | IndexRangeScan, database: Database):
    index = database.indexes.get(plan.class_name, plan.prop)
    if index is None:
        raise ExecutionError(
            f"{plan.describe()} needs an index on "
            f"{plan.class_name}.{plan.prop}, but none is registered")
    # When the calling thread is pinned to a snapshot, wrap the index so
    # lookups answer as of that snapshot (the raw index otherwise).
    return database.index_view(index)


def _iterate_set(value: Any, plan: PhysicalOperator,
                 allow_none: bool = False) -> list[Any]:
    """Interpret *value* as a set of elements for scanning/flattening."""
    if value is None:
        if allow_none:
            return []
        raise ExecutionError(
            f"{plan.describe()} evaluated to None instead of a set")
    if isinstance(value, (set, frozenset, list, tuple)):
        seen: set[Any] = set()
        elements: list[Any] = []
        for element in value:
            key = make_hashable(element)
            if key not in seen:
                seen.add(key)
                elements.append(element)
        return elements
    # A scalar is treated as a singleton set, which keeps single-valued
    # expressions (e.g. a path ending in a single object) usable in FROM.
    return [value]


def _distinct(rows: list[Row]) -> list[Row]:
    seen: set[Any] = set()
    result: list[Row] = []
    for row in rows:
        key = make_hashable(row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result
