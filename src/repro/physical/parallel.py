"""Morsel-driven parallel execution support.

The parallel operators of :mod:`repro.physical.plans` split their input into
*morsels* (small batches of OIDs or rows) and evaluate the expensive part of
the operator — method-bearing predicates, map expressions, join keys — on a
shared worker pool.  Results are merged in submission order (the *ordered
merge*), so a parallel plan produces exactly the same row sequence on every
run, and the same multiset of rows as its sequential counterpart.

Scheduling notes:

* Worker pools are shared per degree and live for the process; threads are
  created lazily by the executor.
* A task submitted from *inside* a worker thread (a method implementation
  that re-enters the service and executes another parallel plan) is run
  inline instead — submitting would risk exhausting the pool with tasks
  that all wait on each other.
* Exceptions raised in a worker propagate to the caller unchanged, after
  all morsels of the batch have settled; the first failure in submission
  order wins.  ``BaseException`` on the waiting thread (KeyboardInterrupt)
  propagates immediately, cancelling still-pending morsels.

Speedup model: CPython's GIL serializes pure-Python bytecode, so parallel
morsel evaluation pays off for methods that *block* — externally implemented
engine calls, I/O, simulated latency (see
:func:`repro.workloads.latency.simulate_method_latency`) — which is exactly
the paper's setting of expensive externally implemented methods.  The
optimizer's parallel rules therefore only fire for method-bearing
expressions (see :mod:`repro.optimizer.builtin_rules`).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterator, Optional, Sequence, TypeVar

from repro.physical.evaluator import make_hashable
from repro.telemetry.spans import child_span

__all__ = ["DEFAULT_MORSEL_SIZE", "MAX_WORKERS", "default_parallelism",
           "make_morsels", "process_morsels", "worker_pool",
           "run_filter_morsels", "run_map_morsels", "run_key_morsels",
           "merge_hash_join"]

Item = TypeVar("Item")
Result = TypeVar("Result")

#: upper bound on items per morsel (smaller morsels balance load better)
DEFAULT_MORSEL_SIZE = 64
#: hard cap on worker threads per pool
MAX_WORKERS = 32
#: thread-name prefix identifying pool workers (re-entrancy guard)
_WORKER_PREFIX = "repro-parallel"


def default_parallelism() -> int:
    """The session/service default degree: ``REPRO_PARALLEL_DEFAULT`` or 1."""
    raw = os.environ.get("REPRO_PARALLEL_DEFAULT", "").strip()
    if not raw:
        return 1
    try:
        return max(int(raw), 1)
    except ValueError:
        return 1


_pools: dict[int, ThreadPoolExecutor] = {}
_pools_lock = threading.Lock()


def worker_pool(workers: int) -> ThreadPoolExecutor:
    """The shared pool for *workers* concurrent threads (created lazily)."""
    workers = min(max(workers, 1), MAX_WORKERS)
    with _pools_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"{_WORKER_PREFIX}-{workers}")
            _pools[workers] = pool
        return pool


def make_morsels(items: Sequence[Item], degree: int,
                 morsel_size: int = DEFAULT_MORSEL_SIZE) -> list[list[Item]]:
    """Chunk *items* into morsels sized for *degree* workers.

    The chunk size aims at a few morsels per worker (load balancing against
    skewed per-item cost) but never exceeds *morsel_size*.
    """
    if not items:
        return []
    degree = max(degree, 1)
    per_worker = -(-len(items) // (degree * 2))  # ceil division
    size = max(1, min(morsel_size, per_worker))
    return [list(items[start:start + size])
            for start in range(0, len(items), size)]


def _in_worker_thread() -> bool:
    return threading.current_thread().name.startswith(_WORKER_PREFIX)


def process_morsels(morsels: Sequence[Sequence[Item]],
                    worker: Callable[[Sequence[Item]], list[Result]],
                    degree: int) -> list[Result]:
    """Apply *worker* to every morsel and concatenate results in order.

    With ``degree <= 1``, a single morsel, or when called from inside a
    worker thread (nested parallel execution), the morsels are processed
    inline on the calling thread — same results, no pool round-trip.
    """
    if degree <= 1 or len(morsels) <= 1 or _in_worker_thread():
        merged: list[Result] = []
        for morsel in morsels:
            merged.extend(worker(morsel))
        return merged

    with child_span("morsel-dispatch", morsels=len(morsels), degree=degree):
        pool = worker_pool(degree)
        futures = [pool.submit(worker, morsel) for morsel in morsels]
        outputs: list[list[Result]] = []
        first_error: Optional[Exception] = None
        try:
            for future in futures:
                try:
                    outputs.append(future.result())
                except Exception as exc:  # worker errors settle with the batch
                    if first_error is None:
                        first_error = exc
        except BaseException:  # KeyboardInterrupt etc.: leave immediately
            for future in futures:
                future.cancel()
            raise
        if first_error is not None:
            raise first_error
        merged = []
        for output in outputs:
            merged.extend(output)
        return merged


# ----------------------------------------------------------------------
# shared operator bodies (used by the compiled executor and the prepared
# executables; `wrap` lets the prepared engine re-push thread-local
# bindings inside each worker)
# ----------------------------------------------------------------------
Row = dict[str, Any]
WorkerWrap = Callable[[Callable[[list], list]], Callable[[list], list]]


def run_filter_morsels(oid_batches: Sequence[Sequence[Any]],
                       predicate: Optional[Callable[[Row], bool]],
                       ref: str, degree: int,
                       wrap: Optional[WorkerWrap] = None) -> list[Row]:
    """Emit ``{ref: oid}`` rows for the OIDs passing *predicate*, evaluated
    over morsels in parallel; batch (partition) order is preserved."""
    morsels: list[list[Any]] = []
    for batch in oid_batches:
        morsels.extend(make_morsels(batch, degree))

    if predicate is None:
        def work(morsel):
            return [{ref: oid} for oid in morsel]
    else:
        def work(morsel):
            rows = ({ref: oid} for oid in morsel)
            return [row for row in rows if predicate(row)]

    return process_morsels(morsels, wrap(work) if wrap else work, degree)


def run_map_morsels(rows: Sequence[Row], expression: Callable[[Row], Any],
                    ref: str, degree: int,
                    wrap: Optional[WorkerWrap] = None) -> list[Row]:
    """Extend every row with ``ref = expression(row)``, in input order."""
    def work(morsel):
        return [{**row, ref: expression(row)} for row in morsel]

    return process_morsels(make_morsels(rows, degree),
                           wrap(work) if wrap else work, degree)


def run_key_morsels(rows: Sequence[Row], key: Callable[[Row], Any],
                    degree: int,
                    wrap: Optional[WorkerWrap] = None) -> list[Any]:
    """Hashable join keys for *rows*, evaluated in parallel, in row order."""
    def work(morsel):
        return [make_hashable(key(row)) for row in morsel]

    return process_morsels(make_morsels(rows, degree),
                           wrap(work) if wrap else work, degree)


def merge_hash_join(left_rows: Sequence[Row], left_keys: Sequence[Any],
                    right_rows: Sequence[Row], right_keys: Sequence[Any]
                    ) -> Iterator[Row]:
    """Sequential build + probe over pre-evaluated keys; output order
    matches the sequential hash join (left order × right insertion order)."""
    table: dict[Any, list[Row]] = {}
    for row, key in zip(right_rows, right_keys):
        table.setdefault(key, []).append(row)
    for left_row, key in zip(left_rows, left_keys):
        matches = table.get(key)
        if matches:
            for right_row in matches:
                yield {**left_row, **right_row}
