"""Expression evaluation against database objects.

The evaluator interprets :mod:`repro.algebra.expressions` nodes for one input
tuple (a mapping from references to values) against a database.  It
implements the paper's conventions:

* property access and method calls are *lifted* over set values
  (``D.sections`` is the union of the sections of all documents in ``D``);
* ``IS-IN`` is membership, ``IS-SUBSET`` is set inclusion;
* all database work (property reads, method calls) goes through the
  database so that it is charged to the work counters.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    Parameter,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
)
from repro.datamodel.database import Database
from repro.datamodel.oid import OID
from repro.errors import ExecutionError

__all__ = ["evaluate", "evaluate_predicate", "make_hashable", "EMPTY_ROW"]

EMPTY_ROW: Mapping[str, Any] = {}


def evaluate(expression: Expression, row: Mapping[str, Any],
             database: Database) -> Any:
    """Evaluate *expression* for the input tuple *row*."""
    if isinstance(expression, Const):
        return expression.value
    if isinstance(expression, Parameter):
        # The interpretive engines run on fully bound plans; substitute the
        # binding first (algebra.expressions.bind_parameters) or execute via
        # the service layer's prepared path.
        raise ExecutionError(
            f"bind parameter {expression} has no bound value")
    if isinstance(expression, Var):
        if expression.name not in row:
            raise ExecutionError(
                f"reference {expression.name!r} is not bound in the input tuple")
        return row[expression.name]
    if isinstance(expression, ClassExtent):
        return set(database.extension(expression.class_name))
    if isinstance(expression, PropertyAccess):
        base = evaluate(expression.base, row, database)
        return _access_property(base, expression.prop, database)
    if isinstance(expression, MethodCall):
        receiver = evaluate(expression.receiver, row, database)
        args = [evaluate(arg, row, database) for arg in expression.args]
        return _invoke_method(receiver, expression.method, args, database)
    if isinstance(expression, ClassMethodCall):
        args = [evaluate(arg, row, database) for arg in expression.args]
        return database.invoke_class_method(expression.class_name,
                                            expression.method, *args)
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, row, database)
    if isinstance(expression, UnaryOp):
        if expression.op == "NOT":
            return not _truthy(evaluate(expression.operand, row, database))
        if expression.op == "-":
            return -evaluate(expression.operand, row, database)
        raise ExecutionError(f"unknown unary operator {expression.op!r}")
    if isinstance(expression, TupleConstructor):
        return {name: evaluate(value, row, database)
                for name, value in expression.fields}
    if isinstance(expression, SetConstructor):
        return {make_hashable(evaluate(element, row, database))
                for element in expression.elements}
    raise ExecutionError(f"cannot evaluate expression {expression!r}")


def evaluate_predicate(condition: Expression, row: Mapping[str, Any],
                       database: Database) -> bool:
    """Evaluate a boolean condition, treating ``None`` as false."""
    return _truthy(evaluate(condition, row, database))


def _truthy(value: Any) -> bool:
    if value is None:
        return False
    return bool(value)


def _access_property(base: Any, prop: str, database: Database) -> Any:
    """Property access, lifted over sets of objects."""
    if base is None:
        return None
    if isinstance(base, OID):
        return database.value(base, prop)
    if isinstance(base, (set, frozenset, list, tuple)):
        collected: set = set()
        for member in base:
            value = _access_property(member, prop, database)
            if value is None:
                continue
            if isinstance(value, (set, frozenset, list, tuple)):
                collected.update(value)
            else:
                collected.add(value)
        return collected
    raise ExecutionError(
        f"cannot access property {prop!r} on non-object value {base!r}")


def _invoke_method(receiver: Any, method: str, args: list[Any],
                   database: Database) -> Any:
    """Method invocation, lifted over sets of objects."""
    if receiver is None:
        return None
    if isinstance(receiver, OID):
        return database.invoke(receiver, method, *args)
    if isinstance(receiver, (set, frozenset, list, tuple)):
        collected: set = set()
        for member in receiver:
            value = _invoke_method(member, method, args, database)
            if value is None:
                continue
            if isinstance(value, (set, frozenset, list, tuple)):
                collected.update(value)
            else:
                collected.add(value)
        return collected
    raise ExecutionError(
        f"cannot invoke method {method!r} on non-object value {receiver!r}")


def _evaluate_binary(expression: BinaryOp, row: Mapping[str, Any],
                     database: Database) -> Any:
    op = expression.op
    if op == "AND":
        return (_truthy(evaluate(expression.left, row, database))
                and _truthy(evaluate(expression.right, row, database)))
    if op == "OR":
        return (_truthy(evaluate(expression.left, row, database))
                or _truthy(evaluate(expression.right, row, database)))

    left = evaluate(expression.left, row, database)
    right = evaluate(expression.right, row, database)

    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return False
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    if op == "IS-IN":
        if right is None:
            return False
        if not isinstance(right, (set, frozenset, list, tuple, dict)):
            raise ExecutionError(
                f"right operand of IS-IN is not a collection: {right!r}")
        return left in right
    if op == "IS-SUBSET":
        left_set = _as_set(left)
        right_set = _as_set(right)
        return left_set.issubset(right_set)
    if op in ("INTERSECT", "UNION", "DIFF"):
        left_set = _as_set(left)
        right_set = _as_set(right)
        if op == "INTERSECT":
            return left_set & right_set
        if op == "UNION":
            return left_set | right_set
        return left_set - right_set
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        return left / right
    raise ExecutionError(f"unknown binary operator {op!r}")


def _as_set(value: Any) -> set:
    if value is None:
        return set()
    if isinstance(value, (set, frozenset)):
        return set(value)
    if isinstance(value, (list, tuple)):
        return set(value)
    return {value}


def make_hashable(value: Any) -> Any:
    """Convert a value into a hashable representation for deduplication."""
    if isinstance(value, dict):
        return tuple(sorted((key, make_hashable(val)) for key, val in value.items()))
    if isinstance(value, (set, frozenset)):
        return frozenset(make_hashable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return tuple(make_hashable(v) for v in value)
    return value
