"""Naive (non-optimized) lowering of logical plans.

The paper compares the optimized plan against "a straightforward evaluation
of the query without transformation".  This module provides that baseline:
each logical operator is mapped to its default physical algorithm, with no
transformation rules and no cost-based choice — get becomes a class scan,
select a per-tuple filter (invoking whatever methods the condition contains),
join a nested-loop join, and so on.
"""

from __future__ import annotations

from repro.algebra.operators import (
    Diff,
    ExpressionSource,
    Flat,
    Get,
    Join,
    LogicalOperator,
    Map,
    NaturalJoin,
    Project,
    Select,
    Union,
)
from repro.errors import ExecutionError
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    PhysicalOperator,
    ProjectOp,
    UnionOp,
)

__all__ = ["naive_implementation"]


def naive_implementation(plan: LogicalOperator) -> PhysicalOperator:
    """Map *plan* to physical operators one-to-one, without optimization."""
    if isinstance(plan, Get):
        return ClassScan(plan.ref, plan.class_name)
    if isinstance(plan, ExpressionSource):
        return ExpressionSetScan(plan.ref, plan.expression)
    if isinstance(plan, Select):
        return Filter(plan.condition, naive_implementation(plan.input))
    if isinstance(plan, Join):
        return NestedLoopJoin(plan.condition,
                              naive_implementation(plan.left),
                              naive_implementation(plan.right))
    if isinstance(plan, NaturalJoin):
        return NaturalMergeJoin(naive_implementation(plan.left),
                                naive_implementation(plan.right))
    if isinstance(plan, Union):
        return UnionOp(naive_implementation(plan.left),
                       naive_implementation(plan.right))
    if isinstance(plan, Diff):
        return DiffOp(naive_implementation(plan.left),
                      naive_implementation(plan.right))
    if isinstance(plan, Map):
        return MapEval(plan.ref, plan.expression, naive_implementation(plan.input))
    if isinstance(plan, Flat):
        return FlattenEval(plan.ref, plan.expression,
                           naive_implementation(plan.input))
    if isinstance(plan, Project):
        return ProjectOp(plan.kept, naive_implementation(plan.input))
    raise ExecutionError(
        f"operator {plan.describe()} has no naive implementation")
