"""Physical algebra and execution engine."""

from repro.physical.evaluator import evaluate, evaluate_predicate, make_hashable
from repro.physical.compiler import CompiledExpr, ExpressionCompiler
from repro.physical.executor import Row, execute_plan
from repro.physical.interpreter import execute_plan_interpreted
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    IndexEqScan,
    IndexRangeScan,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
    walk_physical,
)
from repro.physical.profile import (
    OperatorCounters,
    PlanProfile,
    estimated_vs_actual,
    render_explain_analyze,
)
from repro.physical.restricted_exec import execute_restricted

__all__ = [
    "evaluate",
    "evaluate_predicate",
    "make_hashable",
    "Row",
    "execute_plan",
    "execute_plan_interpreted",
    "CompiledExpr",
    "ExpressionCompiler",
    "execute_restricted",
    "PhysicalOperator",
    "ClassScan",
    "IndexEqScan",
    "IndexRangeScan",
    "ExpressionSetScan",
    "Filter",
    "SetProbeFilter",
    "NestedLoopJoin",
    "HashJoin",
    "NaturalMergeJoin",
    "MapEval",
    "FlattenEval",
    "ProjectOp",
    "UnionOp",
    "DiffOp",
    "walk_physical",
    "OperatorCounters",
    "PlanProfile",
    "estimated_vs_actual",
    "render_explain_analyze",
]
