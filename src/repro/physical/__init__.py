"""Physical algebra and execution engine."""

from repro.physical.evaluator import evaluate, evaluate_predicate, make_hashable
from repro.physical.executor import Row, execute_plan
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
    walk_physical,
)
from repro.physical.restricted_exec import execute_restricted

__all__ = [
    "evaluate",
    "evaluate_predicate",
    "make_hashable",
    "Row",
    "execute_plan",
    "execute_restricted",
    "PhysicalOperator",
    "ClassScan",
    "ExpressionSetScan",
    "Filter",
    "SetProbeFilter",
    "NestedLoopJoin",
    "HashJoin",
    "NaturalMergeJoin",
    "MapEval",
    "FlattenEval",
    "ProjectOp",
    "UnionOp",
    "DiffOp",
    "walk_physical",
]
