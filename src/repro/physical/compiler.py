"""One-pass compilation of algebra expressions into Python closures.

The interpretive evaluator (:mod:`repro.physical.evaluator`) re-walks the
expression tree with an ``isinstance`` dispatch chain for every input row.
This module translates an expression once per plan into a closure
``Row -> value`` so that per-row evaluation is a direct chain of calls:

* **constant hoisting** — subexpressions that are reference-free and touch
  no database state (no property reads, method calls or extents) are folded
  to a value at compile time;
* **pre-bound dispatch** — property reads and method calls resolve their
  target once per receiver class via :meth:`Database.property_reader` /
  :meth:`Database.instance_invoker` instead of re-resolving per row (the
  same statistics are charged, so work counters match the interpreter);
* **specialized predicates** — comparisons against constants capture the
  constant directly, and ``IS-IN`` against a constant collection probes a
  prebuilt hashed set.

Compilation itself performs *no* database work and raises no errors the
interpreter would not raise: anything that can fail at runtime (unknown
methods, bad operand types) fails on first evaluation, exactly as the
interpreter fails on the first row.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Mapping

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    Parameter,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
    walk,
)
from repro.datamodel.database import Database
from repro.datamodel.oid import OID
from repro.errors import ExecutionError
from repro.physical.evaluator import (
    EMPTY_ROW,
    _access_property,
    _as_set,
    _invoke_method,
    evaluate,
    make_hashable,
)

__all__ = ["CompiledExpr", "ExpressionCompiler"]

CompiledExpr = Callable[[Mapping[str, Any]], Any]

_COLLECTIONS = (set, frozenset, list, tuple)
_DATABASE_NODES = (PropertyAccess, MethodCall, ClassMethodCall, ClassExtent)

_COMPARATORS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _is_pure(expression: Expression) -> bool:
    """True when *expression* uses no references, no database state and no
    bind parameters (a parameter's value changes between executions of one
    compiled plan, so it must never be folded into a constant)."""
    return not any(isinstance(node, (Var, Parameter, *_DATABASE_NODES))
                   for node in walk(expression))


def _truthy(value: Any) -> bool:
    return value is not None and bool(value)


class ExpressionCompiler:
    """Compiles expressions into closures bound to one database.

    ``parameter_resolver`` supplies bind-parameter values at evaluation time
    (``key -> value``); the service layer passes a thread-local binding
    environment so that one compiled plan can serve many concurrent
    executions with different bindings.  Without a resolver, evaluating a
    :class:`~repro.algebra.expressions.Parameter` raises, exactly like the
    interpreter does on an unbound plan.
    """

    def __init__(self, database: Database,
                 parameter_resolver: Callable[[str], Any] | None = None,
                 profile=None):
        self._database = database
        self._parameter_resolver = parameter_resolver
        #: optional :class:`repro.physical.profile.PlanProfile` the engines
        #: thread to their operator builders (the compiler itself never
        #: consults it; it rides here because one compiler instance spans
        #: exactly one plan build, the granularity profiling needs)
        self.profile = profile

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compile(self, expression: Expression) -> CompiledExpr:
        """Compile *expression* into a ``Row -> value`` closure."""
        folded = self._fold(expression)
        if folded is not None:
            return folded
        return self._compile(expression)

    def compile_predicate(self, expression: Expression
                          ) -> Callable[[Mapping[str, Any]], bool]:
        """Compile a boolean condition (``None`` counts as false)."""
        compiled = self.compile(expression)

        def predicate(row: Mapping[str, Any]) -> bool:
            value = compiled(row)
            return value is not None and bool(value)

        return predicate

    # ------------------------------------------------------------------
    # constant hoisting
    # ------------------------------------------------------------------
    def _fold(self, expression: Expression) -> CompiledExpr | None:
        """Fold a pure subexpression into a constant closure, or None."""
        if not _is_pure(expression):
            return None
        try:
            value = evaluate(expression, EMPTY_ROW, self._database)
        except Exception:
            # A pure expression that fails (e.g. 1/0) must keep failing at
            # evaluation time, not at compile time.
            return None

        def constant(row: Mapping[str, Any]) -> Any:
            return value

        constant.constant_value = value  # type: ignore[attr-defined]
        return constant

    def _const_value(self, expression: Expression) -> tuple[bool, Any]:
        """(True, value) when *expression* folds to a constant."""
        folded = self._fold(expression)
        if folded is None:
            return False, None
        return True, folded.constant_value  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # node compilation
    # ------------------------------------------------------------------
    def _compile(self, expression: Expression) -> CompiledExpr:
        if isinstance(expression, Const):
            value = expression.value
            return lambda row: value
        if isinstance(expression, Var):
            return self._compile_var(expression)
        if isinstance(expression, Parameter):
            return self._compile_parameter(expression)
        if isinstance(expression, ClassExtent):
            extension = self._database.extension
            class_name = expression.class_name
            return lambda row: set(extension(class_name))
        if isinstance(expression, PropertyAccess):
            return self._compile_property(expression)
        if isinstance(expression, MethodCall):
            return self._compile_method_call(expression)
        if isinstance(expression, ClassMethodCall):
            return self._compile_class_method_call(expression)
        if isinstance(expression, BinaryOp):
            return self._compile_binary(expression)
        if isinstance(expression, UnaryOp):
            return self._compile_unary(expression)
        if isinstance(expression, TupleConstructor):
            fields = [(name, self.compile(value))
                      for name, value in expression.fields]
            return lambda row: {name: fn(row) for name, fn in fields}
        if isinstance(expression, SetConstructor):
            elements = [self.compile(element)
                        for element in expression.elements]
            return lambda row: {make_hashable(fn(row)) for fn in elements}
        # Unknown nodes fall back to the interpreter so that any error is
        # raised at evaluation time, like the reference engine does.
        database = self._database
        return lambda row: evaluate(expression, row, database)

    def _compile_var(self, expression: Var) -> CompiledExpr:
        name = expression.name

        def read_var(row: Mapping[str, Any]) -> Any:
            try:
                return row[name]
            except KeyError:
                raise ExecutionError(
                    f"reference {name!r} is not bound in the input tuple"
                ) from None

        return read_var

    def _compile_parameter(self, expression: Parameter) -> CompiledExpr:
        resolver = self._parameter_resolver
        key = expression.key
        if resolver is None:
            message = f"bind parameter {expression} has no bound value"

            def unbound(row: Mapping[str, Any]) -> Any:
                raise ExecutionError(message)

            return unbound
        return lambda row: resolver(key)

    def _compile_property(self, expression: PropertyAccess) -> CompiledExpr:
        base = self.compile(expression.base)
        prop = expression.prop
        database = self._database
        readers: dict[str, Callable[[OID], Any]] = {}

        def read_property(row: Mapping[str, Any]) -> Any:
            obj = base(row)
            if isinstance(obj, OID):
                reader = readers.get(obj.class_name)
                if reader is None:
                    reader = database.property_reader(obj.class_name, prop)
                    readers[obj.class_name] = reader
                return reader(obj)
            if obj is None:
                return None
            if isinstance(obj, _COLLECTIONS):
                return _access_property(obj, prop, database)
            raise ExecutionError(
                f"cannot access property {prop!r} on non-object value {obj!r}")

        return read_property

    def _compile_method_call(self, expression: MethodCall) -> CompiledExpr:
        receiver = self.compile(expression.receiver)
        method = expression.method
        database = self._database
        invokers: dict[str, Callable[[Any, tuple], Any]] = {}

        # When every argument folds to a constant (the common case for
        # predicates like ``p->contains_string('term')``), the argument
        # tuple is built once at compile time instead of per row.
        folded_args = [self._const_value(arg) for arg in expression.args]
        if all(is_const for is_const, _ in folded_args):
            const_args = tuple(value for _, value in folded_args)

            def call_method_const(row: Mapping[str, Any]) -> Any:
                obj = receiver(row)
                if isinstance(obj, OID):
                    invoke = invokers.get(obj.class_name)
                    if invoke is None:
                        invoke = database.instance_invoker(obj.class_name, method)
                        invokers[obj.class_name] = invoke
                    return invoke(obj, const_args)
                if obj is None:
                    return None
                if isinstance(obj, _COLLECTIONS):
                    return _invoke_method(obj, method, list(const_args), database)
                raise ExecutionError(
                    f"cannot invoke method {method!r} on non-object value {obj!r}")

            return call_method_const

        arg_fns = tuple(self.compile(arg) for arg in expression.args)

        def call_method(row: Mapping[str, Any]) -> Any:
            obj = receiver(row)
            args = tuple(fn(row) for fn in arg_fns)
            if isinstance(obj, OID):
                invoke = invokers.get(obj.class_name)
                if invoke is None:
                    invoke = database.instance_invoker(obj.class_name, method)
                    invokers[obj.class_name] = invoke
                return invoke(obj, args)
            if obj is None:
                return None
            if isinstance(obj, _COLLECTIONS):
                return _invoke_method(obj, method, list(args), database)
            raise ExecutionError(
                f"cannot invoke method {method!r} on non-object value {obj!r}")

        return call_method

    def _compile_class_method_call(self, expression: ClassMethodCall
                                   ) -> CompiledExpr:
        arg_fns = tuple(self.compile(arg) for arg in expression.args)
        class_name = expression.class_name
        method = expression.method
        database = self._database
        cell: list[Callable[[Any, tuple], Any]] = []

        def call_class_method(row: Mapping[str, Any]) -> Any:
            args = tuple(fn(row) for fn in arg_fns)
            if not cell:
                cell.append(database.class_invoker(class_name, method))
            return cell[0](class_name, args)

        return call_class_method

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def _compile_binary(self, expression: BinaryOp) -> CompiledExpr:
        op = expression.op
        if op == "AND":
            left = self.compile(expression.left)
            right = self.compile(expression.right)
            return lambda row: _truthy(left(row)) and _truthy(right(row))
        if op == "OR":
            left = self.compile(expression.left)
            right = self.compile(expression.right)
            return lambda row: _truthy(left(row)) or _truthy(right(row))

        left = self.compile(expression.left)
        # Fold the right operand once; the non-const paths below still need
        # it as a closure, which for a folded value is a plain capture.
        right_is_const, right_value = self._const_value(expression.right)
        if right_is_const:
            captured = right_value

            def right(row: Mapping[str, Any], _value=captured) -> Any:
                return _value
        else:
            right = self.compile(expression.right)

        if op == "==":
            if right_is_const:
                return lambda row: left(row) == right_value
            return lambda row: left(row) == right(row)
        if op == "!=":
            if right_is_const:
                return lambda row: left(row) != right_value
            return lambda row: left(row) != right(row)

        if op in _COMPARATORS:
            compare = _COMPARATORS[op]
            if right_is_const and right_value is not None:
                def compare_const(row: Mapping[str, Any]) -> bool:
                    value = left(row)
                    return value is not None and compare(value, right_value)
                return compare_const

            def compare_general(row: Mapping[str, Any]) -> bool:
                left_value = left(row)
                right_value = right(row)
                if left_value is None or right_value is None:
                    return False
                return compare(left_value, right_value)

            return compare_general

        if op == "IS-IN":
            return self._compile_membership(left, right,
                                            right_is_const, right_value)

        if op == "IS-SUBSET":
            return lambda row: _as_set(left(row)).issubset(_as_set(right(row)))
        if op == "INTERSECT":
            return lambda row: _as_set(left(row)) & _as_set(right(row))
        if op == "UNION":
            return lambda row: _as_set(left(row)) | _as_set(right(row))
        if op == "DIFF":
            return lambda row: _as_set(left(row)) - _as_set(right(row))

        if op in ("+", "-", "*", "/"):
            arithmetic = {"+": operator.add, "-": operator.sub,
                          "*": operator.mul, "/": operator.truediv}[op]

            def compute(row: Mapping[str, Any]) -> Any:
                left_value = left(row)
                right_value = right(row)
                if left_value is None or right_value is None:
                    return None
                return arithmetic(left_value, right_value)

            return compute

        def unknown(row: Mapping[str, Any]) -> Any:
            raise ExecutionError(f"unknown binary operator {op!r}")

        return unknown

    def _compile_membership(self, left: CompiledExpr, right: CompiledExpr,
                            right_is_const: bool, right_value: Any
                            ) -> CompiledExpr:
        """``IS-IN`` — probe a prebuilt hashed set for constant collections."""
        if right_is_const and isinstance(right_value, (*_COLLECTIONS, dict)):
            try:
                members = frozenset(right_value)
            except TypeError:
                members = None
            if members is not None:
                def probe(row: Mapping[str, Any]) -> bool:
                    value = left(row)
                    try:
                        return value in members
                    except TypeError:
                        # unhashable probe values fall back to the linear
                        # semantics of the original collection
                        return value in right_value
                return probe

        def membership(row: Mapping[str, Any]) -> bool:
            # Evaluate the probe value first, like the interpreter, so that
            # any database work on the left side is charged identically.
            value = left(row)
            container = right(row)
            if container is None:
                return False
            if not isinstance(container, (*_COLLECTIONS, dict)):
                raise ExecutionError(
                    f"right operand of IS-IN is not a collection: {container!r}")
            return value in container

        return membership

    def _compile_unary(self, expression: UnaryOp) -> CompiledExpr:
        operand = self.compile(expression.operand)
        if expression.op == "NOT":
            return lambda row: not _truthy(operand(row))
        if expression.op == "-":
            return lambda row: -operand(row)
        op = expression.op

        def unknown(row: Mapping[str, Any]) -> Any:
            raise ExecutionError(f"unknown unary operator {op!r}")

        return unknown
