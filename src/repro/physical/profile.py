"""Per-operator runtime instrumentation (the EXPLAIN ANALYZE substrate).

A :class:`PlanProfile` collects, for every physical operator of one plan
execution, how often the operator was opened, how many rows it produced,
and how much wall-clock time was spent pulling those rows (*inclusive* of
the operator's children, the conventional EXPLAIN ANALYZE accounting).

All three execution engines thread an optional profile through their
operator builders:

* the compiled executor (:func:`repro.physical.executor.execute_plan`),
* the prepared executables (:class:`repro.service.prepared.
  PreparedExecutable`), and
* the reference interpreter (:func:`repro.physical.interpreter.
  execute_plan_interpreted`),

so estimated-vs-actual reports can be produced for any plan on any engine.
:func:`render_explain_analyze` renders the plan tree with the cost model's
estimates next to the measured counters; :func:`estimated_vs_actual`
returns the same comparison as structured records (the differential fuzz
harness' sanity oracle).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.physical.plans import PhysicalOperator

__all__ = ["OperatorCounters", "PlanProfile", "ExplainReport",
           "estimated_vs_actual", "divergent_operators",
           "profile_summary", "render_explain_analyze"]


class ExplainReport(str):
    """The rendered text of an EXPLAIN / EXPLAIN ANALYZE, carrying the
    structured per-operator records alongside.

    A plain ``str`` subclass: every existing consumer (statement router,
    cursors, tests comparing report text) keeps working unchanged, while
    programmatic callers read ``.records`` — the
    :func:`estimated_vs_actual` dict list — instead of parsing the text.
    """

    records: Optional[list[dict]]

    def __new__(cls, text: str, records: Optional[list[dict]] = None):
        report = super().__new__(cls, text)
        report.records = records
        return report


@dataclass
class OperatorCounters:
    """Measured execution counters of one physical operator."""

    opens: int = 0
    rows: int = 0
    seconds: float = 0.0


class PlanProfile:
    """Collects :class:`OperatorCounters` per operator of one plan.

    Counters are keyed by operator *identity*: structurally equal operators
    appearing at different positions of one plan keep separate counters as
    long as they are distinct objects (which plan construction guarantees
    for all practically occurring plans).
    """

    def __init__(self) -> None:
        self._counters: dict[int, tuple[PhysicalOperator,
                                        OperatorCounters]] = {}

    def counters_for(self, plan: PhysicalOperator) -> OperatorCounters:
        """The (shared, mutable) counters of *plan*, created on first use."""
        entry = self._counters.get(id(plan))
        if entry is None:
            entry = (plan, OperatorCounters())
            self._counters[id(plan)] = entry
        return entry[1]

    def wrap(self, plan: PhysicalOperator,
             iterator: Iterator[Any]) -> Iterator[Any]:
        """Wrap *iterator* so rows and (inclusive) time are counted."""
        counters = self.counters_for(plan)
        counters.opens += 1
        return self._count(iterator, counters)

    @staticmethod
    def _count(iterator: Iterator[Any],
               counters: OperatorCounters) -> Iterator[Any]:
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                counters.seconds += time.perf_counter() - started
                return
            counters.seconds += time.perf_counter() - started
            counters.rows += 1
            yield row

    def record(self, plan: PhysicalOperator, rows: int,
               seconds: float) -> None:
        """Record one materialized execution (the interpreter's accounting,
        which produces whole row lists instead of streaming)."""
        counters = self.counters_for(plan)
        counters.opens += 1
        counters.rows += rows
        counters.seconds += seconds

    def actual_rows(self, plan: PhysicalOperator) -> int:
        """Rows *plan* produced (0 when it never ran)."""
        entry = self._counters.get(id(plan))
        return entry[1].rows if entry is not None else 0

    def __len__(self) -> int:
        return len(self._counters)


def estimated_vs_actual(plan: PhysicalOperator, profile: PlanProfile,
                        cost_model=None) -> list[dict]:
    """Per-operator estimate/actual records, root first (pre-order).

    Each record carries the operator description, the cost model's
    estimated output cardinality (None without a cost model), and the
    measured rows/opens/seconds.  ``ratio`` is ``max(est, actual) /
    min(est, actual)`` with both sides clamped to at least one row — the
    symmetric misestimation factor the sanity oracles bound.
    """
    records: list[dict] = []

    def visit(node: PhysicalOperator, depth: int) -> None:
        counters = profile.counters_for(node)
        estimated: Optional[float] = None
        ratio: Optional[float] = None
        if cost_model is not None:
            estimated = cost_model.estimate(node).cardinality
            low = max(min(estimated, counters.rows), 1.0)
            high = max(estimated, counters.rows, 1.0)
            ratio = high / low
        records.append({
            "operator": node.describe(),
            "depth": depth,
            "estimated_rows": estimated,
            "actual_rows": counters.rows,
            "opens": counters.opens,
            "seconds": counters.seconds,
            "ratio": ratio,
        })
        for child in node.inputs():
            visit(child, depth + 1)

    visit(plan, 0)
    return records


def divergent_operators(plan: PhysicalOperator, profile: PlanProfile,
                        cost_model, threshold: float = 10.0) -> list[dict]:
    """Operators whose estimate diverged from the measurement by more than
    *threshold* — the trigger records of the adaptive feedback loop.

    Unlike :func:`estimated_vs_actual` the records carry the operator
    *objects* (and the measured output rows of their children), which the
    feedback loop needs to translate a divergence into a statistics
    correction: an observed join selectivity is ``actual_out /
    (actual_left × actual_right)`` and an observed filter selectivity is
    ``actual_out / actual_in``.  Operators that never ran (opens == 0,
    e.g. the inner build side of a short-circuited join) are skipped — a
    zero actual against any estimate is starvation, not misestimation.
    """
    divergences: list[dict] = []

    def visit(node: PhysicalOperator) -> None:
        counters = profile.counters_for(node)
        if counters.opens > 0:
            estimated = cost_model.estimate(node).cardinality
            low = max(min(estimated, counters.rows), 1.0)
            high = max(estimated, counters.rows, 1.0)
            ratio = high / low
            if ratio > threshold:
                divergences.append({
                    "operator": node,
                    "estimated_rows": estimated,
                    "actual_rows": counters.rows,
                    "ratio": ratio,
                    "child_actual_rows": tuple(
                        profile.actual_rows(child) for child in node.inputs()),
                })
        for child in node.inputs():
            visit(child)

    visit(plan)
    return divergences


def profile_summary(plan: PhysicalOperator, profile: PlanProfile,
                    cost_model=None, top: int = 3) -> list[dict]:
    """The *top* worst-misestimated operators of a profiled run, compacted
    for structured logging (the slow-query log's estimated-vs-actual
    payload): operator description, estimated and actual rows, ratio.

    Without a cost model the ratio is unknown; records then fall back to
    the slowest operators by measured time.
    """
    records = estimated_vs_actual(plan, profile, cost_model=cost_model)
    if cost_model is not None:
        records.sort(key=lambda r: r["ratio"] or 1.0, reverse=True)
    else:
        records.sort(key=lambda r: r["seconds"], reverse=True)
    return [{"operator": record["operator"],
             "estimated_rows": record["estimated_rows"],
             "actual_rows": record["actual_rows"],
             "seconds": round(record["seconds"], 6),
             "ratio": (round(record["ratio"], 2)
                       if record["ratio"] is not None else None)}
            for record in records[:max(top, 1)]]


def render_explain_analyze(plan: PhysicalOperator, profile: PlanProfile,
                           cost_model=None) -> str:
    """Render the plan tree with estimated and measured counters per node."""
    lines = []
    for record in estimated_vs_actual(plan, profile, cost_model):
        indent = "  " * record["depth"]
        if record["estimated_rows"] is None:
            estimate = ""
        else:
            estimate = f"  (estimated rows={record['estimated_rows']:.1f})"
        lines.append(
            f"{indent}{record['operator']}{estimate}  "
            f"[actual rows={record['actual_rows']}, "
            f"opens={record['opens']}, "
            f"time={record['seconds'] * 1000.0:.3f}ms]")
    return "\n".join(lines)
