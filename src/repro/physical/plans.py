"""Physical algebra: executable plan nodes.

Physical operators correspond to concrete algorithms with cost functions,
exactly as in the Volcano optimizer generator.  Implementation rules map
logical operators onto these nodes; the executor
(:mod:`repro.physical.executor`) interprets them against a database.

The physically interesting nodes for the paper's experiments are:

* :class:`ExpressionSetScan` — produce tuples from a reference-free
  set-valued expression evaluated once (this is how an externally implemented
  bulk method such as ``Paragraph→retrieve_by_string`` becomes a physical
  operator, Section 3.2 / Section 4.2 "implementation rules");
* :class:`SetProbeFilter` — precompute a reference-free set once and keep
  only input tuples whose reference value belongs to it (the physical
  counterpart of a semantically derived ``IS-IN`` restriction);
* :class:`Filter` with a method call in the predicate — the naive expensive
  evaluation the semantic rules are designed to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.algebra.expressions import Expression, cached_hash, free_vars
from repro.errors import AlgebraError

__all__ = [
    "PhysicalOperator",
    "ClassScan",
    "IndexEqScan",
    "IndexRangeScan",
    "ExpressionSetScan",
    "Filter",
    "SetProbeFilter",
    "NestedLoopJoin",
    "IndexNestedLoopJoin",
    "HashJoin",
    "NaturalMergeJoin",
    "MapEval",
    "FlattenEval",
    "ProjectOp",
    "UnionOp",
    "DiffOp",
    "ParallelScan",
    "ParallelIndexEqScan",
    "ParallelIndexRangeScan",
    "ParallelMap",
    "ParallelHashJoin",
    "PARALLEL_OPERATORS",
    "walk_physical",
    "describe_physical_tree",
    "uses_parallelism",
]


class PhysicalOperator:
    """Abstract base class of physical plan nodes."""

    name: str = "physical"

    def inputs(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def with_inputs(self, inputs: Sequence["PhysicalOperator"]) -> "PhysicalOperator":
        if self.inputs():
            raise NotImplementedError(type(self).__name__)
        return self

    def refs(self) -> tuple[str, ...]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@cached_hash
@dataclass(frozen=True)
class ClassScan(PhysicalOperator):
    """Sequential scan over a class extension."""

    ref: str
    class_name: str
    name = "class_scan"

    def refs(self) -> tuple[str, ...]:
        return (self.ref,)

    def describe(self) -> str:
        return f"class_scan<{self.ref}, {self.class_name}>"


@cached_hash
@dataclass(frozen=True)
class IndexEqScan(PhysicalOperator):
    """Exact-match lookup in a user-defined index on one property.

    Produces the instances of *class_name* whose *prop* equals *key*, in
    OID order, without scanning the class extension.  Implementation rules
    create this node for ``select<a.prop == const>(get<a, C>)`` shapes when
    the database's :class:`~repro.datamodel.indexes.IndexRegistry` holds a
    matching index (hash or sorted — both support equality lookups)."""

    ref: str
    class_name: str
    prop: str
    key: Any
    name = "index_eq_scan"

    def refs(self) -> tuple[str, ...]:
        return (self.ref,)

    def describe(self) -> str:
        return f"index_eq_scan<{self.ref}, {self.class_name}.{self.prop} == {self.key!r}>"


@cached_hash
@dataclass(frozen=True)
class IndexRangeScan(PhysicalOperator):
    """Range lookup in a sorted index on one property.

    Produces the instances of *class_name* whose *prop* falls into the
    interval described by ``low``/``high`` (``None`` means open-ended),
    in OID order.  Requires a :class:`~repro.datamodel.indexes.SortedIndex`."""

    ref: str
    class_name: str
    prop: str
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    name = "index_range_scan"

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise AlgebraError("IndexRangeScan needs at least one bound")

    def refs(self) -> tuple[str, ...]:
        return (self.ref,)

    def describe(self) -> str:
        low_bracket = "[" if self.include_low else "("
        high_bracket = "]" if self.include_high else ")"
        return (f"index_range_scan<{self.ref}, {self.class_name}.{self.prop} IN "
                f"{low_bracket}{self.low!r}, {self.high!r}{high_bracket}>")


@cached_hash
@dataclass(frozen=True)
class ExpressionSetScan(PhysicalOperator):
    """Evaluate a reference-free set-valued expression once and emit one
    tuple per element (e.g. ``Paragraph→retrieve_by_string('x')``)."""

    ref: str
    expression: Expression
    name = "expr_set_scan"

    def __post_init__(self) -> None:
        if free_vars(self.expression):
            raise AlgebraError(
                "ExpressionSetScan expression must be reference-free, got "
                f"{self.expression}")

    def refs(self) -> tuple[str, ...]:
        return (self.ref,)

    def describe(self) -> str:
        return f"expr_set_scan<{self.ref}, {self.expression}>"


@cached_hash
@dataclass(frozen=True)
class Filter(PhysicalOperator):
    """Per-tuple predicate evaluation (may invoke methods per tuple)."""

    condition: Expression
    input: PhysicalOperator
    name = "filter"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "Filter":
        (only,) = inputs
        return Filter(self.condition, only)

    def refs(self) -> tuple[str, ...]:
        return self.input.refs()

    def describe(self) -> str:
        return f"filter<{self.condition}>"


@cached_hash
@dataclass(frozen=True)
class SetProbeFilter(PhysicalOperator):
    """Precompute ``set_expression`` once, keep tuples with
    ``row[ref] ∈ set``."""

    ref: str
    set_expression: Expression
    input: PhysicalOperator
    name = "set_probe"

    def __post_init__(self) -> None:
        if free_vars(self.set_expression):
            raise AlgebraError(
                "SetProbeFilter set expression must be reference-free, got "
                f"{self.set_expression}")
        if self.ref not in self.input.refs():
            raise AlgebraError(
                f"SetProbeFilter probes unknown reference {self.ref!r}")

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "SetProbeFilter":
        (only,) = inputs
        return SetProbeFilter(self.ref, self.set_expression, only)

    def refs(self) -> tuple[str, ...]:
        return self.input.refs()

    def describe(self) -> str:
        return f"set_probe<{self.ref} IS-IN {self.set_expression}>"


@cached_hash
@dataclass(frozen=True)
class NestedLoopJoin(PhysicalOperator):
    """Nested-loop θ-join; the condition is evaluated per tuple pair."""

    condition: Expression
    left: PhysicalOperator
    right: PhysicalOperator
    name = "nested_loop_join"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "NestedLoopJoin":
        left, right = inputs
        return NestedLoopJoin(self.condition, left, right)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.left.refs()) | set(self.right.refs())))

    def describe(self) -> str:
        return f"nested_loop_join<{self.condition}>"


@cached_hash
@dataclass(frozen=True)
class IndexNestedLoopJoin(PhysicalOperator):
    """Equi-join that probes a user-defined index per outer tuple.

    For every tuple of *left*, evaluate *left_key* and look the value up in
    the index on ``class_name.prop``; each matching instance extends the
    tuple under *ref*.  This is the index-nested-loop strategy the join
    enumerator emits when the inner side is a bare class extension with a
    registered index on the join property — it reuses the same index
    machinery as :class:`IndexEqScan`, just keyed per outer row."""

    left_key: Expression
    ref: str
    class_name: str
    prop: str
    left: PhysicalOperator
    name = "index_nested_loop_join"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.left,)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]
                    ) -> "IndexNestedLoopJoin":
        (only,) = inputs
        return IndexNestedLoopJoin(self.left_key, self.ref, self.class_name,
                                   self.prop, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.left.refs()) | {self.ref}))

    def describe(self) -> str:
        return (f"index_nested_loop_join<{self.left_key} == "
                f"{self.ref}:{self.class_name}.{self.prop}>")


@cached_hash
@dataclass(frozen=True)
class HashJoin(PhysicalOperator):
    """Equi-join on computed key expressions (build on the right input)."""

    left_key: Expression
    right_key: Expression
    left: PhysicalOperator
    right: PhysicalOperator
    name = "hash_join"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "HashJoin":
        left, right = inputs
        return HashJoin(self.left_key, self.right_key, left, right)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.left.refs()) | set(self.right.refs())))

    def describe(self) -> str:
        return f"hash_join<{self.left_key} == {self.right_key}>"


@cached_hash
@dataclass(frozen=True)
class NaturalMergeJoin(PhysicalOperator):
    """Natural join on the shared references (hash-based implementation)."""

    left: PhysicalOperator
    right: PhysicalOperator
    name = "natural_join_impl"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "NaturalMergeJoin":
        left, right = inputs
        return NaturalMergeJoin(left, right)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.left.refs()) | set(self.right.refs())))

    def common_refs(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.left.refs()) & set(self.right.refs())))

    def describe(self) -> str:
        return "natural_join_impl"


@cached_hash
@dataclass(frozen=True)
class MapEval(PhysicalOperator):
    """Per-tuple computation of an expression into a new reference."""

    ref: str
    expression: Expression
    input: PhysicalOperator
    name = "map_eval"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "MapEval":
        (only,) = inputs
        return MapEval(self.ref, self.expression, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.input.refs()) | {self.ref}))

    def describe(self) -> str:
        return f"map_eval<{self.ref}, {self.expression}>"


@cached_hash
@dataclass(frozen=True)
class FlattenEval(PhysicalOperator):
    """Per-tuple evaluation of a set-valued expression, emitting one tuple
    per element."""

    ref: str
    expression: Expression
    input: PhysicalOperator
    name = "flatten_eval"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "FlattenEval":
        (only,) = inputs
        return FlattenEval(self.ref, self.expression, only)

    def refs(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.input.refs()) | {self.ref}))

    def describe(self) -> str:
        return f"flatten_eval<{self.ref}, {self.expression}>"


@cached_hash
@dataclass(frozen=True)
class ProjectOp(PhysicalOperator):
    """Projection with duplicate elimination (set semantics)."""

    kept: tuple[str, ...]
    input: PhysicalOperator
    name = "project_impl"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kept", tuple(sorted(set(self.kept))))

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.input,)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "ProjectOp":
        (only,) = inputs
        return ProjectOp(self.kept, only)

    def refs(self) -> tuple[str, ...]:
        return self.kept

    def describe(self) -> str:
        return f"project_impl<{', '.join(self.kept)}>"


@cached_hash
@dataclass(frozen=True)
class UnionOp(PhysicalOperator):
    """Set union of two inputs over identical references."""

    left: PhysicalOperator
    right: PhysicalOperator
    name = "union_impl"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "UnionOp":
        left, right = inputs
        return UnionOp(left, right)

    def refs(self) -> tuple[str, ...]:
        return self.left.refs()

    def describe(self) -> str:
        return "union_impl"


@cached_hash
@dataclass(frozen=True)
class DiffOp(PhysicalOperator):
    """Set difference of two inputs over identical references."""

    left: PhysicalOperator
    right: PhysicalOperator
    name = "diff_impl"

    def inputs(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "DiffOp":
        left, right = inputs
        return DiffOp(left, right)

    def refs(self) -> tuple[str, ...]:
        return self.left.refs()

    def describe(self) -> str:
        return "diff_impl"


# ----------------------------------------------------------------------
# parallel variants (morsel-driven, ThreadPoolExecutor-backed)
# ----------------------------------------------------------------------
# Each parallel operator *subclasses* its sequential counterpart: existing
# isinstance-based dispatch (plan inspection, tests) keeps working on
# parallel plans, while the engines and the cost model dispatch on the
# concrete type.  ``degree`` is the number of worker threads and is part of
# the physical plan — the service's plan cache key never mentions it.


def _check_degree(degree: int) -> None:
    if degree < 1:
        raise AlgebraError(f"parallel degree must be >= 1, got {degree}")


@cached_hash
@dataclass(frozen=True)
class ParallelScan(ClassScan):
    """Partitioned parallel scan with an embedded (optional) predicate.

    Reads the hash partitions of the class extension
    (:meth:`~repro.datamodel.database.Database.extension_partitions`),
    splits them into morsels, evaluates *condition* on worker threads and
    merges results deterministically in partition order."""

    condition: Optional[Expression] = None
    degree: int = 2
    name = "parallel_scan"

    def __post_init__(self) -> None:
        _check_degree(self.degree)

    def describe(self) -> str:
        predicate = "" if self.condition is None else f", {self.condition}"
        return (f"parallel_scan<{self.ref}, {self.class_name}{predicate}, "
                f"degree={self.degree}>")


@cached_hash
@dataclass(frozen=True)
class ParallelIndexEqScan(IndexEqScan):
    """Partition-aware equality index scan.

    Looks the key up once, then evaluates the residual *condition* over
    morsels of the matching OIDs on worker threads (ordered merge over the
    OID-sorted lookup result)."""

    condition: Optional[Expression] = None
    degree: int = 2
    name = "parallel_index_eq_scan"

    def __post_init__(self) -> None:
        _check_degree(self.degree)

    def describe(self) -> str:
        predicate = "" if self.condition is None else f" WHERE {self.condition}"
        return (f"parallel_index_eq_scan<{self.ref}, "
                f"{self.class_name}.{self.prop} == {self.key!r}{predicate}, "
                f"degree={self.degree}>")


@cached_hash
@dataclass(frozen=True)
class ParallelIndexRangeScan(IndexRangeScan):
    """Partition-aware range index scan (parallel residual evaluation)."""

    condition: Optional[Expression] = None
    degree: int = 2
    name = "parallel_index_range_scan"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_degree(self.degree)

    def describe(self) -> str:
        base = IndexRangeScan.describe(self)
        predicate = "" if self.condition is None else f" WHERE {self.condition}"
        return f"parallel_{base[:-1]}{predicate}, degree={self.degree}>"


@cached_hash
@dataclass(frozen=True)
class ParallelMap(MapEval):
    """Morsel-driven parallel evaluation of a map expression."""

    degree: int = 2
    name = "parallel_map"

    def __post_init__(self) -> None:
        _check_degree(self.degree)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "ParallelMap":
        (only,) = inputs
        return ParallelMap(self.ref, self.expression, only, self.degree)

    def describe(self) -> str:
        return (f"parallel_map<{self.ref}, {self.expression}, "
                f"degree={self.degree}>")


@cached_hash
@dataclass(frozen=True)
class ParallelHashJoin(HashJoin):
    """Hash join whose key expressions are evaluated on worker threads.

    Both inputs are materialized, the (method-bearing) key expressions are
    computed over morsels in parallel, and build + probe run sequentially in
    input order — output order matches :class:`HashJoin` exactly."""

    degree: int = 2
    name = "parallel_hash_join"

    def __post_init__(self) -> None:
        _check_degree(self.degree)

    def with_inputs(self, inputs: Sequence[PhysicalOperator]) -> "ParallelHashJoin":
        left, right = inputs
        return ParallelHashJoin(self.left_key, self.right_key, left, right,
                                self.degree)

    def describe(self) -> str:
        return (f"parallel_hash_join<{self.left_key} == {self.right_key}, "
                f"degree={self.degree}>")


#: the parallel operator family (checked before the sequential parents in
#: isinstance dispatch chains)
PARALLEL_OPERATORS = (ParallelScan, ParallelIndexEqScan,
                      ParallelIndexRangeScan, ParallelMap, ParallelHashJoin)


def walk_physical(plan: PhysicalOperator):
    """Yield *plan* and all nodes below it, pre-order."""
    yield plan
    for child in plan.inputs():
        yield from walk_physical(child)


def describe_physical_tree(plan: PhysicalOperator, depth: int = 0) -> str:
    """Render the whole operator tree, one indented line per node."""
    lines = ["  " * depth + plan.describe()]
    for child in plan.inputs():
        lines.append(describe_physical_tree(child, depth + 1))
    return "\n".join(lines)


def uses_parallelism(plan: PhysicalOperator) -> bool:
    """True when *plan* contains at least one parallel operator."""
    return any(isinstance(node, PARALLEL_OPERATORS)
               for node in walk_physical(plan))
