"""Predefined (schema-independent) transformation and implementation rules.

Section 6.1: "For query transformation based on the restricted algebra, a
predefined set of transformation rules is provided.  These are on the one
hand many well-known rules from relational query optimization, e.g.
associativity and commutativity of join or interchangeability of selection
and join."  This module provides that predefined rule set for our general
algebra, plus the implementation rules mapping logical operators to the
physical algorithms of :mod:`repro.physical.plans`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.algebra.expressions import (
    BinaryOp,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    Parameter,
    PropertyAccess,
    Var,
    conjuncts,
    free_vars,
    make_conjunction,
    walk,
)
from repro.algebra.operators import (
    Diff,
    ExpressionSource,
    Flat,
    Get,
    Join,
    LogicalOperator,
    Map,
    NaturalJoin,
    Project,
    Select,
    Union,
)
from repro.errors import ReproError
from repro.optimizer.rules import (
    CallableImplementationRule,
    CallableTransformationRule,
    RuleContext,
    RuleSet,
)
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    IndexEqScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    ParallelHashJoin,
    ParallelIndexEqScan,
    ParallelIndexRangeScan,
    ParallelMap,
    ParallelScan,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
)

__all__ = ["standard_rules", "standard_transformations", "standard_implementations",
           "parallel_implementations"]

_BUILTIN = frozenset({"builtin"})
_PARALLEL = frozenset({"builtin", "parallel"})


# ----------------------------------------------------------------------
# transformation rules
# ----------------------------------------------------------------------
def _select_split(plan: LogicalOperator, _ctx: RuleContext
                  ) -> Optional[Iterable[LogicalOperator]]:
    """select<c1 AND c2>(S) ⇔ select<c1>(select<c2>(S)) — both groupings."""
    if not isinstance(plan, Select):
        return None
    parts = conjuncts(plan.condition)
    if len(parts) < 2:
        return None
    alternatives = []
    for index in range(len(parts)):
        outer = parts[index]
        rest = parts[:index] + parts[index + 1:]
        inner_condition = make_conjunction(rest)
        assert inner_condition is not None
        alternatives.append(Select(outer, Select(inner_condition, plan.input)))
    return alternatives


def _select_merge(plan: LogicalOperator, _ctx: RuleContext
                  ) -> Optional[Iterable[LogicalOperator]]:
    """select<c1>(select<c2>(S)) → select<c1 AND c2>(S)."""
    if not isinstance(plan, Select) or not isinstance(plan.input, Select):
        return None
    merged = BinaryOp("AND", plan.condition, plan.input.condition)
    return [Select(merged, plan.input.input)]


def _select_commute(plan: LogicalOperator, _ctx: RuleContext
                    ) -> Optional[Iterable[LogicalOperator]]:
    """select<c1>(select<c2>(S)) → select<c2>(select<c1>(S))."""
    if not isinstance(plan, Select) or not isinstance(plan.input, Select):
        return None
    inner = plan.input
    return [Select(inner.condition, Select(plan.condition, inner.input))]


def _select_true_elimination(plan: LogicalOperator, _ctx: RuleContext
                             ) -> Optional[Iterable[LogicalOperator]]:
    """select<TRUE>(S) → S."""
    if isinstance(plan, Select) and plan.condition == Const(True):
        return [plan.input]
    return None


def _select_pushdown_join(plan: LogicalOperator, _ctx: RuleContext
                          ) -> Optional[Iterable[LogicalOperator]]:
    """Push a selection below a join when it only refers to one side."""
    if not isinstance(plan, Select) or not isinstance(plan.input, Join):
        return None
    join = plan.input
    condition_refs = free_vars(plan.condition)
    alternatives: list[LogicalOperator] = []
    if condition_refs <= set(join.left.refs()):
        alternatives.append(
            Join(join.condition, Select(plan.condition, join.left), join.right))
    if condition_refs <= set(join.right.refs()):
        alternatives.append(
            Join(join.condition, join.left, Select(plan.condition, join.right)))
    return alternatives or None


def _select_into_join(plan: LogicalOperator, _ctx: RuleContext
                      ) -> Optional[Iterable[LogicalOperator]]:
    """select<c>(join<true>(A, B)) → join<c>(A, B) when c spans both sides."""
    if not isinstance(plan, Select) or not isinstance(plan.input, Join):
        return None
    join = plan.input
    if join.condition != Const(True):
        return None
    condition_refs = free_vars(plan.condition)
    left_refs = set(join.left.refs())
    right_refs = set(join.right.refs())
    if condition_refs & left_refs and condition_refs & right_refs:
        return [Join(plan.condition, join.left, join.right)]
    return None


def _join_condition_to_select(plan: LogicalOperator, _ctx: RuleContext
                              ) -> Optional[Iterable[LogicalOperator]]:
    """join<c>(A, B) → select<c>(join<true>(A, B)) — the inverse direction,
    needed so that semantic rules that rewrite selection conditions can reach
    conditions that entered the plan as join predicates."""
    if not isinstance(plan, Join) or plan.condition == Const(True):
        return None
    return [Select(plan.condition, Join(Const(True), plan.left, plan.right))]


def _join_commute(plan: LogicalOperator, _ctx: RuleContext
                  ) -> Optional[Iterable[LogicalOperator]]:
    """join<c>(A, B) → join<c>(B, A)."""
    if not isinstance(plan, Join):
        return None
    return [Join(plan.condition, plan.right, plan.left)]


def _select_pushdown_unary(plan: LogicalOperator, _ctx: RuleContext
                           ) -> Optional[Iterable[LogicalOperator]]:
    """Push a selection below map/flat when it does not use the new ref."""
    if not isinstance(plan, Select):
        return None
    inner = plan.input
    condition_refs = free_vars(plan.condition)
    if isinstance(inner, Map) and inner.ref not in condition_refs:
        return [Map(inner.ref, inner.expression, Select(plan.condition, inner.input))]
    if isinstance(inner, Flat) and inner.ref not in condition_refs:
        return [Flat(inner.ref, inner.expression, Select(plan.condition, inner.input))]
    return None


def _select_pullup_unary(plan: LogicalOperator, _ctx: RuleContext
                         ) -> Optional[Iterable[LogicalOperator]]:
    """The inverse of pushing a selection below map/flat."""
    if isinstance(plan, Map) and isinstance(plan.input, Select):
        inner = plan.input
        return [Select(inner.condition, Map(plan.ref, plan.expression, inner.input))]
    if isinstance(plan, Flat) and isinstance(plan.input, Select):
        inner = plan.input
        return [Select(inner.condition, Flat(plan.ref, plan.expression, inner.input))]
    return None


def standard_transformations() -> list[CallableTransformationRule]:
    """The predefined transformation rules."""
    specs = [
        ("select-split", "split a conjunctive selection", _select_split),
        ("select-merge", "merge stacked selections", _select_merge),
        ("select-commute", "commute stacked selections", _select_commute),
        ("select-true-elim", "drop select<TRUE>", _select_true_elimination),
        ("select-pushdown-join", "push selection below a join", _select_pushdown_join),
        ("select-into-join", "turn selection over cross join into θ-join",
         _select_into_join),
        ("join-condition-to-select", "pull a join condition into a selection",
         _join_condition_to_select),
        ("join-commute", "commute join inputs", _join_commute),
        ("select-pushdown-map-flat", "push selection below map/flat",
         _select_pushdown_unary),
        ("select-pullup-map-flat", "pull selection above map/flat",
         _select_pullup_unary),
    ]
    return [CallableTransformationRule(name=name, description=description,
                                       tags=_BUILTIN, function=function)
            for name, description, function in specs]


# ----------------------------------------------------------------------
# implementation rules
# ----------------------------------------------------------------------
def _implement_get(plan: LogicalOperator, _children: tuple[PhysicalOperator, ...],
                   _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, Get):
        return [ClassScan(plan.ref, plan.class_name)]
    return None


def _implement_source(plan: LogicalOperator, _children: tuple[PhysicalOperator, ...],
                      _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, ExpressionSource):
        return [ExpressionSetScan(plan.ref, plan.expression)]
    return None


def _implement_select_filter(plan: LogicalOperator,
                             children: tuple[PhysicalOperator, ...],
                             _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, Select):
        return [Filter(plan.condition, children[0])]
    return None


def _membership_condition(condition: Expression) -> Optional[tuple[str, Expression]]:
    """Decompose ``a IS-IN E`` with reference-free E into (a, E)."""
    if (isinstance(condition, BinaryOp) and condition.op == "IS-IN"
            and isinstance(condition.left, Var)
            and not free_vars(condition.right)):
        return condition.left.name, condition.right
    return None


def _implement_select_probe(plan: LogicalOperator,
                            children: tuple[PhysicalOperator, ...],
                            _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    """select<a IS-IN E>(S) → set_probe when E does not depend on S."""
    if not isinstance(plan, Select):
        return None
    decomposed = _membership_condition(plan.condition)
    if decomposed is None:
        return None
    ref, expression = decomposed
    if ref not in plan.input.refs():
        return None
    return [SetProbeFilter(ref, expression, children[0])]


def _implement_select_membership_scan(plan: LogicalOperator,
                                      _children: tuple[PhysicalOperator, ...],
                                      ctx: RuleContext
                                      ) -> Optional[Iterable[PhysicalOperator]]:
    """select<a IS-IN E>(get<a, C>) → expr_set_scan<a, E>.

    Sound because E's elements are instances of C (checked via type
    inference), so intersecting with the full extension is the identity.
    """
    if not isinstance(plan, Select) or not isinstance(plan.input, Get):
        return None
    decomposed = _membership_condition(plan.condition)
    if decomposed is None:
        return None
    ref, expression = decomposed
    leaf = plan.input
    if ref != leaf.ref:
        return None
    element_class = ctx.expression_class(expression, leaf)
    if element_class is None:
        return None
    if element_class != leaf.class_name and not _is_subclass(
            ctx, element_class, leaf.class_name):
        return None
    return [ExpressionSetScan(ref, expression)]


def _is_subclass(ctx: RuleContext, class_name: str, ancestor: str) -> bool:
    current: Optional[str] = class_name
    while current is not None:
        if current == ancestor:
            return True
        current = ctx.schema.get_class(current).superclass
    return False


# -- index access paths -------------------------------------------------
_FLIPPED_COMPARISON = {"==": "==", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _property_comparison(conjunct: Expression, ref: str,
                         allow_parameter: bool = False
                         ) -> Optional[tuple[str, str, object]]:
    """Match ``ref.prop OP const`` (either orientation) in a conjunct.

    Returns ``(prop, op, value)`` with the comparison oriented so that the
    property is on the left, or ``None``.  With *allow_parameter* a bind
    parameter also matches and is returned as the :class:`Parameter`
    expression itself — only equality scans can defer key resolution to
    execution time, range bounds must be comparable during rule application.
    """
    if not isinstance(conjunct, BinaryOp):
        return None
    if conjunct.op not in _FLIPPED_COMPARISON:
        return None
    orientations = (
        (conjunct.left, conjunct.right, conjunct.op),
        (conjunct.right, conjunct.left, _FLIPPED_COMPARISON[conjunct.op]),
    )
    for prop_side, const_side, op in orientations:
        if (isinstance(prop_side, PropertyAccess)
                and isinstance(prop_side.base, Var)
                and prop_side.base.name == ref):
            if isinstance(const_side, Const) and const_side.value is not None:
                return prop_side.prop, op, const_side.value
            if allow_parameter and isinstance(const_side, Parameter):
                return prop_side.prop, op, const_side
    return None


def _match_index_eq(plan: LogicalOperator, ctx: RuleContext
                    ) -> Optional[tuple[Get, str, object, Optional[Expression]]]:
    """Match ``select<a.prop == const AND rest>(get<a, C>)`` against a
    registered index, returning ``(get, prop, key, residual)``."""
    if not isinstance(plan, Select) or not isinstance(plan.input, Get):
        return None
    if ctx.database is None:
        return None
    get = plan.input
    parts = conjuncts(plan.condition)
    for position, part in enumerate(parts):
        match = _property_comparison(part, get.ref, allow_parameter=True)
        if match is None:
            continue
        prop, op, value = match
        if op != "==":
            continue
        if ctx.database.indexes.get(get.class_name, prop) is None:
            continue
        residual = make_conjunction(parts[:position] + parts[position + 1:])
        return get, prop, value, residual
    return None


def _implement_select_index_eq(plan: LogicalOperator,
                               _children: tuple[PhysicalOperator, ...],
                               ctx: RuleContext
                               ) -> Optional[Iterable[PhysicalOperator]]:
    """select<a.prop == const AND rest>(get<a, C>) → filter<rest>(index_eq_scan)
    when an index on ``C.prop`` is registered with the database."""
    match = _match_index_eq(plan, ctx)
    if match is None:
        return None
    get, prop, value, residual = match
    scan: PhysicalOperator = IndexEqScan(get.ref, get.class_name, prop, value)
    return [scan if residual is None else Filter(residual, scan)]


def _match_index_range(plan: LogicalOperator, ctx: RuleContext
                       ) -> Optional[tuple[Get, str, object, object, bool, bool,
                                           Optional[Expression]]]:
    """Match a selection over a sorted-indexed property, merging all range
    conjuncts on the same property into one interval.  Returns ``(get, prop,
    low, high, include_low, include_high, residual)``."""
    if not isinstance(plan, Select) or not isinstance(plan.input, Get):
        return None
    if ctx.database is None:
        return None
    get = plan.input
    parts = conjuncts(plan.condition)

    # Pick the first property with a sorted index and at least one bound.
    target_prop: Optional[str] = None
    for part in parts:
        match = _property_comparison(part, get.ref)
        if match is None or match[1] == "==":
            continue
        index = ctx.database.indexes.get(get.class_name, match[0])
        if index is not None and index.kind == "sorted":
            target_prop = match[0]
            break
    if target_prop is None:
        return None

    low = high = None
    include_low = include_high = True
    residual: list[Expression] = []
    for part in parts:
        match = _property_comparison(part, get.ref)
        if match is None or match[0] != target_prop or match[1] == "==":
            residual.append(part)
            continue
        _, op, value = match
        bound_inclusive = op in ("<=", ">=")
        try:
            if op in (">", ">="):
                if low is None or value > low or (value == low and not bound_inclusive):
                    low, include_low = value, bound_inclusive
            else:
                if high is None or value < high or (value == high and not bound_inclusive):
                    high, include_high = value, bound_inclusive
        except TypeError:
            # Bounds of incomparable types: evaluate this conjunct per row.
            residual.append(part)
    if low is None and high is None:
        return None
    return (get, target_prop, low, high, include_low, include_high,
            make_conjunction(residual))


def _implement_select_index_range(plan: LogicalOperator,
                                  _children: tuple[PhysicalOperator, ...],
                                  ctx: RuleContext
                                  ) -> Optional[Iterable[PhysicalOperator]]:
    """select<a.prop < const AND ...>(get<a, C>) → index_range_scan over a
    sorted index, merging all range conjuncts on the same property into one
    interval and keeping the remaining conjuncts as a residual filter."""
    match = _match_index_range(plan, ctx)
    if match is None:
        return None
    get, prop, low, high, include_low, include_high, rest = match
    scan: PhysicalOperator = IndexRangeScan(
        get.ref, get.class_name, prop, low, high, include_low, include_high)
    return [scan if rest is None else Filter(rest, scan)]


def _split_equi_condition(plan: Join) -> Optional[tuple[Expression, Expression]]:
    """For an equality join condition, return (left_key, right_key)."""
    condition = plan.condition
    if not isinstance(condition, BinaryOp) or condition.op != "==":
        return None
    left_refs = set(plan.left.refs())
    right_refs = set(plan.right.refs())
    first_refs = free_vars(condition.left)
    second_refs = free_vars(condition.right)
    if first_refs and second_refs:
        if first_refs <= left_refs and second_refs <= right_refs:
            return condition.left, condition.right
        if first_refs <= right_refs and second_refs <= left_refs:
            return condition.right, condition.left
    return None


def _implement_join_nested_loop(plan: LogicalOperator,
                                children: tuple[PhysicalOperator, ...],
                                _ctx: RuleContext
                                ) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, Join):
        return [NestedLoopJoin(plan.condition, children[0], children[1])]
    return None


def _implement_join_hash(plan: LogicalOperator,
                         children: tuple[PhysicalOperator, ...],
                         _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if not isinstance(plan, Join):
        return None
    keys = _split_equi_condition(plan)
    if keys is None:
        return None
    left_key, right_key = keys
    return [HashJoin(left_key, right_key, children[0], children[1])]


def _implement_join_index_nested(plan: LogicalOperator,
                                 children: tuple[PhysicalOperator, ...],
                                 ctx: RuleContext
                                 ) -> Optional[Iterable[PhysicalOperator]]:
    """Equi-join whose inner side is a bare class extension with an index on
    the join property → per-outer-row index probe (the inner child plan is
    discarded: the index replaces the scan)."""
    if ctx.database is None or not isinstance(plan, Join):
        return None
    keys = _split_equi_condition(plan)
    if keys is None:
        return None
    left_key, right_key = keys
    inner = plan.right
    if not isinstance(inner, Get):
        return None
    if not (isinstance(right_key, PropertyAccess)
            and isinstance(right_key.base, Var)
            and right_key.base.name == inner.ref):
        return None
    prop = right_key.prop
    if ctx.database.indexes.get(inner.class_name, prop) is None:
        return None
    return [IndexNestedLoopJoin(left_key, inner.ref, inner.class_name,
                                prop, children[0])]


def _implement_natural_join(plan: LogicalOperator,
                            children: tuple[PhysicalOperator, ...],
                            _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, NaturalJoin):
        return [NaturalMergeJoin(children[0], children[1])]
    return None


def _implement_map(plan: LogicalOperator, children: tuple[PhysicalOperator, ...],
                   _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, Map):
        return [MapEval(plan.ref, plan.expression, children[0])]
    return None


def _implement_flat(plan: LogicalOperator, children: tuple[PhysicalOperator, ...],
                    _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, Flat):
        return [FlattenEval(plan.ref, plan.expression, children[0])]
    return None


def _implement_project(plan: LogicalOperator, children: tuple[PhysicalOperator, ...],
                       _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, Project):
        return [ProjectOp(plan.kept, children[0])]
    return None


def _implement_union(plan: LogicalOperator, children: tuple[PhysicalOperator, ...],
                     _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, Union):
        return [UnionOp(children[0], children[1])]
    return None


def _implement_diff(plan: LogicalOperator, children: tuple[PhysicalOperator, ...],
                    _ctx: RuleContext) -> Optional[Iterable[PhysicalOperator]]:
    if isinstance(plan, Diff):
        return [DiffOp(children[0], children[1])]
    return None


# -- parallel implementation rules --------------------------------------
# The paper's premise: method-bearing queries are dominated by expensive
# method evaluation, so independent partitions/morsels can evaluate methods
# concurrently.  Each rule fires only when the context's ``parallelism`` is
# at least 2 AND the expression it would parallelize calls an *externally
# implemented* method: external methods model engine round-trips that block
# the calling thread, which is what worker threads overlap.  Internally
# encoded methods are inline CPU (GIL-serialized — no wall-clock win), and
# attribute comparisons never beat the startup cost.  The cost model's
# PARALLEL_STARTUP_COST arbitrates the remaining cases.


def _method_bearing(expression: Expression, ctx: RuleContext,
                    source: LogicalOperator) -> bool:
    """True when *expression* calls at least one external method.

    Instance calls are resolved on the receiver's inferred class (typed in
    the environment of *source*, the logical input the expression ranges
    over), so a method name that is external on one class and internal on
    another is judged by the class actually invoked.  When the receiver
    cannot be typed, any class carrying an external method of that name
    counts (conservative toward parallelizing)."""
    for node in walk(expression):
        if isinstance(node, ClassMethodCall):
            if _is_external_class_method(node.class_name, node.method, ctx):
                return True
        elif isinstance(node, MethodCall):
            receiver_class = ctx.expression_class(node.receiver, source)
            if receiver_class is not None:
                if _is_external_instance_method(receiver_class, node.method,
                                                ctx):
                    return True
            elif _is_external_method_anywhere(node.method, ctx):
                return True
    return False


def _is_external_instance_method(class_name: str, method_name: str,
                                 ctx: RuleContext) -> bool:
    try:
        return ctx.schema.resolve_instance_method(
            class_name, method_name).is_external()
    except ReproError:
        return False


def _is_external_class_method(class_name: str, method_name: str,
                              ctx: RuleContext) -> bool:
    try:
        return ctx.schema.resolve_class_method(
            class_name, method_name).is_external()
    except ReproError:
        return False


def _is_external_method_anywhere(method_name: str, ctx: RuleContext) -> bool:
    """Fallback when the receiver's class cannot be inferred."""
    for class_def in ctx.schema.classes.values():
        method = (class_def.instance_methods.get(method_name)
                  or class_def.class_methods.get(method_name))
        if method is not None and method.is_external():
            return True
    return False


def _implement_select_parallel_scan(plan: LogicalOperator,
                                    _children: tuple[PhysicalOperator, ...],
                                    ctx: RuleContext
                                    ) -> Optional[Iterable[PhysicalOperator]]:
    """select<method-bearing cond>(get<a, C>) → parallel partitioned scan."""
    if ctx.parallelism < 2:
        return None
    if not isinstance(plan, Select) or not isinstance(plan.input, Get):
        return None
    if not _method_bearing(plan.condition, ctx, plan.input):
        return None
    get = plan.input
    return [ParallelScan(get.ref, get.class_name,
                         condition=plan.condition, degree=ctx.parallelism)]


def _implement_select_parallel_index_eq(plan: LogicalOperator,
                                        _children: tuple[PhysicalOperator, ...],
                                        ctx: RuleContext
                                        ) -> Optional[Iterable[PhysicalOperator]]:
    """Index equality lookup with the method-bearing residual evaluated over
    morsels of the matching OIDs."""
    if ctx.parallelism < 2:
        return None
    match = _match_index_eq(plan, ctx)
    if match is None:
        return None
    get, prop, value, residual = match
    if residual is None or not _method_bearing(residual, ctx, get):
        return None
    return [ParallelIndexEqScan(get.ref, get.class_name, prop, value,
                                condition=residual, degree=ctx.parallelism)]


def _implement_select_parallel_index_range(plan: LogicalOperator,
                                           _children: tuple[PhysicalOperator, ...],
                                           ctx: RuleContext
                                           ) -> Optional[Iterable[PhysicalOperator]]:
    """Sorted-index range lookup with parallel residual evaluation."""
    if ctx.parallelism < 2:
        return None
    match = _match_index_range(plan, ctx)
    if match is None:
        return None
    get, prop, low, high, include_low, include_high, rest = match
    if rest is None or not _method_bearing(rest, ctx, get):
        return None
    return [ParallelIndexRangeScan(get.ref, get.class_name, prop, low, high,
                                   include_low, include_high,
                                   condition=rest, degree=ctx.parallelism)]


def _implement_map_parallel(plan: LogicalOperator,
                            children: tuple[PhysicalOperator, ...],
                            ctx: RuleContext
                            ) -> Optional[Iterable[PhysicalOperator]]:
    """map<a, method-bearing expr>(S) → morsel-driven parallel map."""
    if ctx.parallelism < 2:
        return None
    if not isinstance(plan, Map) or not _method_bearing(plan.expression, ctx, plan.input):
        return None
    return [ParallelMap(plan.ref, plan.expression, children[0],
                        degree=ctx.parallelism)]


def _implement_join_hash_parallel(plan: LogicalOperator,
                                  children: tuple[PhysicalOperator, ...],
                                  ctx: RuleContext
                                  ) -> Optional[Iterable[PhysicalOperator]]:
    """Equi-join with method-bearing keys → hash join with parallel key
    evaluation (the exp5 ``sameDocument`` shape after the J1 rewrite)."""
    if ctx.parallelism < 2:
        return None
    if not isinstance(plan, Join):
        return None
    keys = _split_equi_condition(plan)
    if keys is None:
        return None
    left_key, right_key = keys
    if not (_method_bearing(left_key, ctx, plan.left)
            or _method_bearing(right_key, ctx, plan.right)):
        return None
    return [ParallelHashJoin(left_key, right_key, children[0], children[1],
                             degree=ctx.parallelism)]


def parallel_implementations() -> list[CallableImplementationRule]:
    """The parallel implementation rules (tag ``parallel``)."""
    specs = [
        ("impl-select-parallel-scan",
         "method-bearing filter over hash partitions on worker threads",
         _implement_select_parallel_scan),
        ("impl-select-parallel-index-eq",
         "index equality lookup with parallel residual evaluation",
         _implement_select_parallel_index_eq),
        ("impl-select-parallel-index-range",
         "index range lookup with parallel residual evaluation",
         _implement_select_parallel_index_range),
        ("impl-map-parallel",
         "morsel-driven parallel map of a method-bearing expression",
         _implement_map_parallel),
        ("impl-join-hash-parallel",
         "hash join with parallel method-bearing key evaluation",
         _implement_join_hash_parallel),
    ]
    return [CallableImplementationRule(name=name, description=description,
                                       tags=_PARALLEL, function=function)
            for name, description, function in specs]


def standard_implementations() -> list[CallableImplementationRule]:
    """The predefined implementation rules."""
    specs = [
        ("impl-get-scan", "class extension scan", _implement_get),
        ("impl-expression-source", "materialize a set-valued expression",
         _implement_source),
        ("impl-select-filter", "per-tuple filter", _implement_select_filter),
        ("impl-select-probe", "precompute a membership set and probe",
         _implement_select_probe),
        ("impl-select-membership-scan",
         "replace scan + membership test by scanning the member set",
         _implement_select_membership_scan),
        ("impl-select-index-eq",
         "equality filter over an indexed property becomes an index lookup",
         _implement_select_index_eq),
        ("impl-select-index-range",
         "range filter over a sorted-indexed property becomes an index range scan",
         _implement_select_index_range),
        ("impl-join-nested-loop", "nested loop join", _implement_join_nested_loop),
        ("impl-join-hash", "hash join on equality keys", _implement_join_hash),
        ("impl-join-index-nested",
         "per-outer-row index probe of an indexed inner class",
         _implement_join_index_nested),
        ("impl-natural-join", "natural join", _implement_natural_join),
        ("impl-map", "per-tuple expression evaluation", _implement_map),
        ("impl-flat", "per-tuple flattening", _implement_flat),
        ("impl-project", "projection with duplicate elimination", _implement_project),
        ("impl-union", "set union", _implement_union),
        ("impl-diff", "set difference", _implement_diff),
    ]
    return [CallableImplementationRule(name=name, description=description,
                                       tags=_BUILTIN, function=function)
            for name, description, function in specs]


def standard_rules() -> RuleSet:
    """The complete predefined rule set (transformations + implementations,
    including the parallel implementation rules — inert unless the rule
    context carries ``parallelism >= 2``)."""
    return RuleSet("standard",
                   transformations=standard_transformations(),
                   implementations=(standard_implementations()
                                    + parallel_implementations()))
