"""The optimizer generator.

Section 7: "We integrate schema-specific semantics in the optimization
process by mapping them to transformation and implementation rules, adding
these rules and the methods which are defined as physical operators to the
predefined rules and operators, and generating an individual optimizer
module for each schema."

:class:`OptimizerGenerator` is that component: given a schema and its
semantic knowledge it derives the schema-specific rules, merges them with the
predefined rule set and produces a ready-to-use
:class:`~repro.optimizer.search.Optimizer` instance.  Tags can be excluded to
generate *ablated* optimizers (used by EXP-3).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.datamodel.database import Database
from repro.datamodel.schema import Schema
from repro.optimizer.builtin_rules import standard_rules
from repro.optimizer.cost import CostModel
from repro.optimizer.knowledge import SchemaKnowledge
from repro.optimizer.rules import Rule, RuleSet
from repro.optimizer.search import Optimizer, OptimizerOptions

__all__ = ["OptimizerGenerator"]


class OptimizerGenerator:
    """Generates per-schema optimizer instances from rules and knowledge."""

    def __init__(self, schema: Schema,
                 knowledge: Optional[SchemaKnowledge] = None,
                 options: Optional[OptimizerOptions] = None):
        self.schema = schema
        self.knowledge = knowledge or SchemaKnowledge(schema)
        self.options = options or OptimizerOptions()

    # ------------------------------------------------------------------
    # rule assembly
    # ------------------------------------------------------------------
    def predefined_rule_set(self) -> RuleSet:
        """The schema-independent rules (Section 6.1's predefined set)."""
        return standard_rules()

    def semantic_rule_set(self) -> RuleSet:
        """The rules derived from the schema-specific knowledge."""
        return self.knowledge.derive_rule_set()

    def combined_rule_set(self, exclude_tags: Sequence[str] = (),
                          extra_rules: Iterable[Rule] = ()) -> RuleSet:
        """Predefined + semantic rules, minus excluded tags, plus extras."""
        combined = self.predefined_rule_set().merged_with(
            self.semantic_rule_set(), name=f"optimizer[{self.schema.name}]")
        for rule in extra_rules:
            combined.add(rule)
        for tag in exclude_tags:
            combined = combined.without_tag(tag)
        return combined

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate(self, database: Optional[Database] = None,
                 exclude_tags: Sequence[str] = (),
                 extra_rules: Iterable[Rule] = (),
                 options: Optional[OptimizerOptions] = None,
                 cost_model: Optional[CostModel] = None,
                 parallelism: int = 1) -> Optimizer:
        """Generate an optimizer instance for this schema.

        ``exclude_tags`` removes rule groups (e.g. ``"semantic"`` for a purely
        structural optimizer, or ``"semantic:query-method"`` for the EXP-3
        ablation); ``extra_rules`` adds application-supplied rules on top.
        ``parallelism`` is the degree offered to the parallel implementation
        rules (1 generates sequential plans only).
        """
        rule_set = self.combined_rule_set(exclude_tags=exclude_tags,
                                          extra_rules=extra_rules)
        return Optimizer(
            schema=self.schema,
            rule_set=rule_set,
            database=database,
            cost_model=cost_model or CostModel(self.schema, database),
            options=options or self.options,
            parallelism=parallelism)

    def generate_without_semantics(self, database: Optional[Database] = None,
                                   options: Optional[OptimizerOptions] = None
                                   ) -> Optimizer:
        """An optimizer using only the predefined (structural) rules —
        the baseline the paper compares against implicitly."""
        return self.generate(database=database, exclude_tags=("semantic",),
                             options=options)
