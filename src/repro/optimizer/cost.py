"""Cost model for physical plans.

Algebraic optimization relies on equivalences *and* cost functions
(Section 2.3); the paper stresses that — unlike attributes — methods do not
have uniform access cost.  The model therefore charges:

* per-tuple scan/probe/projection work with small constants,
* per-invocation method costs taken from the schema's
  :class:`~repro.datamodel.schema.MethodDef.cost_per_call` annotations
  (external methods are typically orders of magnitude more expensive than
  internal path methods),
* one-time costs for set-valued expressions that a plan evaluates once
  (e.g. ``Paragraph→retrieve_by_string`` in an :class:`ExpressionSetScan`).

Cardinalities come from actual class-extension sizes, method result hints,
and measured average fan-outs of set-valued properties when a database is
available; otherwise documented defaults are used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
    walk,
)
from repro.datamodel.database import Database
from repro.datamodel.schema import MethodDef, Schema
from repro.datamodel.types import SetType
from repro.errors import ReproError
from repro.datamodel.indexes import HashIndex
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    IndexEqScan,
    IndexRangeScan,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    ParallelHashJoin,
    ParallelIndexEqScan,
    ParallelIndexRangeScan,
    ParallelMap,
    ParallelScan,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
)
from repro.vql.analyzer import class_of_type

__all__ = ["CostEstimate", "CostModel"]


@dataclass(frozen=True)
class CostEstimate:
    """Estimated total cost and output cardinality of a plan."""

    cost: float
    cardinality: float

    def __str__(self) -> str:
        return f"cost={self.cost:.1f}, card={self.cardinality:.1f}"


class CostModel:
    """Cost and cardinality estimation for physical plans."""

    # per-tuple constants (abstract cost units)
    TUPLE_SCAN_COST = 1.0
    TUPLE_EMIT_COST = 0.1
    PROBE_COST = 0.05
    HASH_BUILD_COST = 0.1
    PROJECT_COST = 0.05
    COMPARISON_COST = 0.05
    PROPERTY_ACCESS_COST = 0.2
    #: one positioning step in a user-defined index (cheaper than any
    #: method-encapsulated lookup such as ``select_by_index``)
    INDEX_LOOKUP_COST = 2.0
    RANGE_SELECTIVITY = 0.3
    # defaults when no statistics are available
    DEFAULT_EXTENSION_SIZE = 1000.0
    DEFAULT_METHOD_COST = 1.0
    DEFAULT_METHOD_RESULT_CARD = 10.0
    DEFAULT_FANOUT = 5.0
    DEFAULT_SELECTIVITY = 0.1
    EQUALITY_SELECTIVITY = 0.05
    METHOD_PREDICATE_SELECTIVITY = 0.1
    #: number of objects sampled when measuring property fan-outs
    FANOUT_SAMPLE_SIZE = 200
    # parallel execution: fixed dispatch + ordered-merge cost per parallel
    # node, plus per-tuple morsel bookkeeping.  Only the *expression* work
    # (method evaluation) is divided by the degree — scan/emit/merge stay
    # sequential — so parallelism pays exactly when the saved method work,
    # ``expression cost × cardinality × (1 - 1/degree)``, clears this
    # startup threshold.
    PARALLEL_STARTUP_COST = 40.0
    PARALLEL_TUPLE_OVERHEAD = 0.02

    def __init__(self, schema: Schema, database: Optional[Database] = None):
        self.schema = schema
        self.database = database
        self._fanout_cache: dict[tuple[str, str], float] = {}
        self._method_cache: dict[str, Optional[MethodDef]] = {}

    # ------------------------------------------------------------------
    # physical plan estimation
    # ------------------------------------------------------------------
    def estimate(self, plan: PhysicalOperator) -> CostEstimate:
        """Estimate the cost and cardinality of a physical plan."""
        # Parallel variants subclass their sequential counterparts, so they
        # must be dispatched before the parent isinstance checks below.
        if isinstance(plan, (ParallelScan, ParallelIndexEqScan,
                             ParallelIndexRangeScan, ParallelMap,
                             ParallelHashJoin)):
            return self._estimate_parallel(plan)

        if isinstance(plan, ClassScan):
            cardinality = self.extension_size(plan.class_name)
            return CostEstimate(cardinality * self.TUPLE_SCAN_COST, cardinality)

        if isinstance(plan, IndexEqScan):
            cardinality = self._index_eq_cardinality(plan)
            return CostEstimate(
                self.INDEX_LOOKUP_COST + cardinality * self.TUPLE_EMIT_COST,
                cardinality)

        if isinstance(plan, IndexRangeScan):
            cardinality = self._index_range_cardinality(plan)
            return CostEstimate(
                self.INDEX_LOOKUP_COST + cardinality * self.TUPLE_EMIT_COST,
                cardinality)

        if isinstance(plan, ExpressionSetScan):
            cardinality = self.expression_cardinality(plan.expression)
            cost = (self.expression_cost(plan.expression)
                    + cardinality * self.TUPLE_EMIT_COST)
            return CostEstimate(cost, cardinality)

        if isinstance(plan, Filter):
            inner = self.estimate(plan.input)
            per_tuple = self.expression_cost(plan.condition)
            selectivity = self.condition_selectivity(plan.condition, inner.cardinality)
            return CostEstimate(inner.cost + inner.cardinality * per_tuple,
                                max(inner.cardinality * selectivity, 0.0))

        if isinstance(plan, SetProbeFilter):
            inner = self.estimate(plan.input)
            set_card = self.expression_cardinality(plan.set_expression)
            build = (self.expression_cost(plan.set_expression)
                     + set_card * self.HASH_BUILD_COST)
            probe = inner.cardinality * self.PROBE_COST
            selectivity = min(1.0, set_card / max(inner.cardinality, 1.0))
            return CostEstimate(inner.cost + build + probe,
                                inner.cardinality * selectivity)

        if isinstance(plan, NestedLoopJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            pairs = left.cardinality * right.cardinality
            per_pair = self.expression_cost(plan.condition)
            selectivity = self.condition_selectivity(plan.condition, pairs)
            return CostEstimate(left.cost + right.cost + pairs * max(per_pair, self.COMPARISON_COST),
                                pairs * selectivity)

        if isinstance(plan, HashJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            key_cost = (self.expression_cost(plan.left_key)
                        + self.expression_cost(plan.right_key)) / 2.0
            build = right.cardinality * (key_cost + self.HASH_BUILD_COST)
            probe = left.cardinality * (key_cost + self.PROBE_COST)
            join_selectivity = 1.0 / max(left.cardinality, right.cardinality, 1.0)
            cardinality = left.cardinality * right.cardinality * join_selectivity
            return CostEstimate(left.cost + right.cost + build + probe, cardinality)

        if isinstance(plan, NaturalMergeJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            build = right.cardinality * self.HASH_BUILD_COST
            probe = left.cardinality * self.PROBE_COST
            join_selectivity = 1.0 / max(left.cardinality, right.cardinality, 1.0)
            cardinality = left.cardinality * right.cardinality * join_selectivity
            if not plan.common_refs():
                cardinality = left.cardinality * right.cardinality
            return CostEstimate(left.cost + right.cost + build + probe, cardinality)

        if isinstance(plan, MapEval):
            inner = self.estimate(plan.input)
            per_tuple = self.expression_cost(plan.expression)
            return CostEstimate(inner.cost + inner.cardinality * per_tuple,
                                inner.cardinality)

        if isinstance(plan, FlattenEval):
            inner = self.estimate(plan.input)
            per_tuple = self.expression_cost(plan.expression)
            fanout = self.expression_fanout(plan.expression)
            cardinality = inner.cardinality * fanout
            cost = (inner.cost + inner.cardinality * per_tuple
                    + cardinality * self.TUPLE_EMIT_COST)
            return CostEstimate(cost, cardinality)

        if isinstance(plan, ProjectOp):
            inner = self.estimate(plan.input)
            return CostEstimate(inner.cost + inner.cardinality * self.PROJECT_COST,
                                inner.cardinality)

        if isinstance(plan, UnionOp):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            total = left.cardinality + right.cardinality
            return CostEstimate(left.cost + right.cost + total * self.PROBE_COST,
                                total)

        if isinstance(plan, DiffOp):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            cost = (left.cost + right.cost
                    + (left.cardinality + right.cardinality) * self.PROBE_COST)
            return CostEstimate(cost, left.cardinality)

        # Unknown operators get a pessimistic default so they are only chosen
        # when nothing else is applicable.
        children = [self.estimate(child) for child in plan.inputs()]
        cost = sum(c.cost for c in children) + 1000.0
        cardinality = max((c.cardinality for c in children), default=1.0)
        return CostEstimate(cost, cardinality)

    # ------------------------------------------------------------------
    # parallel operators
    # ------------------------------------------------------------------
    def _estimate_parallel(self, plan: PhysicalOperator) -> CostEstimate:
        """Cost of the morsel-driven parallel variants.

        The parallelizable share (per-tuple expression evaluation) is
        divided by the degree; scanning, emitting and merging are charged
        sequentially, plus a fixed startup cost per parallel node.
        """
        degree = max(plan.degree, 1)  # type: ignore[attr-defined]

        if isinstance(plan, ParallelScan):
            size = self.extension_size(plan.class_name)
            if plan.condition is None:
                per_tuple = 0.0
                selectivity = 1.0
            else:
                per_tuple = self.expression_cost(plan.condition)
                selectivity = self.condition_selectivity(plan.condition, size)
            cost = (self.PARALLEL_STARTUP_COST
                    + size * (self.TUPLE_SCAN_COST + self.PARALLEL_TUPLE_OVERHEAD)
                    + size * per_tuple / degree)
            return CostEstimate(cost, max(size * selectivity, 0.0))

        if isinstance(plan, (ParallelIndexEqScan, ParallelIndexRangeScan)):
            # Matching cardinality as estimated for the sequential scan.
            matches = (self._index_eq_cardinality(plan)
                       if isinstance(plan, ParallelIndexEqScan)
                       else self._index_range_cardinality(plan))
            if plan.condition is None:
                per_tuple = 0.0
                selectivity = 1.0
            else:
                per_tuple = self.expression_cost(plan.condition)
                selectivity = self.condition_selectivity(plan.condition, matches)
            cost = (self.INDEX_LOOKUP_COST + self.PARALLEL_STARTUP_COST
                    + matches * (self.TUPLE_EMIT_COST + self.PARALLEL_TUPLE_OVERHEAD)
                    + matches * per_tuple / degree)
            return CostEstimate(cost, max(matches * selectivity, 0.0))

        if isinstance(plan, ParallelMap):
            inner = self.estimate(plan.input)
            per_tuple = self.expression_cost(plan.expression)
            cost = (inner.cost + self.PARALLEL_STARTUP_COST
                    + inner.cardinality * self.PARALLEL_TUPLE_OVERHEAD
                    + inner.cardinality * per_tuple / degree)
            return CostEstimate(cost, inner.cardinality)

        if isinstance(plan, ParallelHashJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            key_cost = (self.expression_cost(plan.left_key)
                        + self.expression_cost(plan.right_key)) / 2.0
            build = right.cardinality * (key_cost / degree + self.HASH_BUILD_COST)
            probe = left.cardinality * (key_cost / degree + self.PROBE_COST)
            overhead = ((left.cardinality + right.cardinality)
                        * self.PARALLEL_TUPLE_OVERHEAD)
            join_selectivity = 1.0 / max(left.cardinality, right.cardinality, 1.0)
            cardinality = left.cardinality * right.cardinality * join_selectivity
            return CostEstimate(
                left.cost + right.cost + self.PARALLEL_STARTUP_COST
                + build + probe + overhead,
                cardinality)

        raise ReproError(f"not a parallel operator: {plan!r}")

    # ------------------------------------------------------------------
    # statistics primitives
    # ------------------------------------------------------------------
    def _index_eq_cardinality(self, plan: IndexEqScan) -> float:
        """Expected matches of an equality index lookup (shared by the
        sequential and parallel scan estimates)."""
        size = self.extension_size(plan.class_name)
        cardinality = max(size * self.EQUALITY_SELECTIVITY, 1.0)
        index = (self.database.indexes.get(plan.class_name, plan.prop)
                 if self.database is not None else None)
        if isinstance(index, HashIndex) and index.distinct_keys() > 0:
            cardinality = max(len(index) / index.distinct_keys(), 1.0)
        return cardinality

    def _index_range_cardinality(self, plan: IndexRangeScan) -> float:
        """Expected matches of a range index lookup."""
        size = self.extension_size(plan.class_name)
        selectivity = self.RANGE_SELECTIVITY
        if plan.low is not None and plan.high is not None:
            selectivity *= self.RANGE_SELECTIVITY
        return max(size * selectivity, 1.0)

    def extension_size(self, class_name: str) -> float:
        if self.database is not None:
            try:
                return float(max(self.database.extension_size(class_name), 1))
            except ReproError:
                return self.DEFAULT_EXTENSION_SIZE
        return self.DEFAULT_EXTENSION_SIZE

    def method_definition(self, method_name: str) -> Optional[MethodDef]:
        """Find a method definition by name anywhere in the schema."""
        if method_name in self._method_cache:
            return self._method_cache[method_name]
        found: Optional[MethodDef] = None
        for class_def in self.schema.classes.values():
            if method_name in class_def.instance_methods:
                found = class_def.instance_methods[method_name]
                break
            if method_name in class_def.class_methods:
                found = class_def.class_methods[method_name]
                break
        self._method_cache[method_name] = found
        return found

    def method_cost(self, method_name: str) -> float:
        method = self.method_definition(method_name)
        return method.cost_per_call if method is not None else self.DEFAULT_METHOD_COST

    def method_result_cardinality(self, method_name: str) -> float:
        method = self.method_definition(method_name)
        if method is None:
            return self.DEFAULT_METHOD_RESULT_CARD
        if method.result_cardinality_hint is not None:
            return float(method.result_cardinality_hint)
        if isinstance(method.return_type, SetType):
            return self.DEFAULT_METHOD_RESULT_CARD
        return 1.0

    def property_fanout(self, class_name: str, prop: str) -> float:
        """Average number of elements of a set-valued property, measured on
        the database when possible."""
        key = (class_name, prop)
        if key in self._fanout_cache:
            return self._fanout_cache[key]
        fanout = self.DEFAULT_FANOUT
        if self.database is not None and self.schema.has_property(class_name, prop):
            oids = self.database.extension(class_name)[:self.FANOUT_SAMPLE_SIZE]
            sizes: list[int] = []
            for oid in oids:
                value = self.database.get(oid).get_or_none(prop)
                if isinstance(value, (set, frozenset, list, tuple)):
                    sizes.append(len(value))
            if sizes:
                fanout = max(sum(sizes) / len(sizes), 1.0)
        self._fanout_cache[key] = fanout
        return fanout

    # ------------------------------------------------------------------
    # expression estimation
    # ------------------------------------------------------------------
    def expression_cost(self, expression: Expression) -> float:
        """Cost of evaluating *expression* once (per input tuple)."""
        cost = 0.0
        for node in walk(expression):
            if isinstance(node, MethodCall):
                cost += self.method_cost(node.method)
            elif isinstance(node, ClassMethodCall):
                cost += self.method_cost(node.method)
            elif isinstance(node, PropertyAccess):
                cost += self.PROPERTY_ACCESS_COST
            elif isinstance(node, (BinaryOp, UnaryOp)):
                cost += self.COMPARISON_COST
            elif isinstance(node, ClassExtent):
                cost += self.extension_size(node.class_name) * self.TUPLE_EMIT_COST
        return cost

    def expression_cardinality(self, expression: Expression) -> float:
        """Estimated number of elements of a set-valued expression."""
        cardinality, _ = self._cardinality_and_class(expression)
        return cardinality

    def expression_fanout(self, expression: Expression) -> float:
        """Estimated elements produced per input tuple when flattening."""
        cardinality, _ = self._cardinality_and_class(expression)
        return max(cardinality, 1.0)

    def _cardinality_and_class(self, expression: Expression
                               ) -> tuple[float, Optional[str]]:
        if isinstance(expression, Const):
            value = expression.value
            if isinstance(value, (tuple, frozenset)):
                return float(max(len(value), 1)), None
            return 1.0, None
        if isinstance(expression, Var):
            return 1.0, None
        if isinstance(expression, ClassExtent):
            return self.extension_size(expression.class_name), expression.class_name
        if isinstance(expression, ClassMethodCall):
            method = self.method_definition(expression.method)
            class_name = None
            if method is not None:
                class_name = class_of_type(method.return_type)
            return self.method_result_cardinality(expression.method), class_name
        if isinstance(expression, MethodCall):
            base_card, _ = self._cardinality_and_class(expression.receiver)
            method = self.method_definition(expression.method)
            class_name = class_of_type(method.return_type) if method else None
            per_receiver = self.method_result_cardinality(expression.method)
            return max(base_card, 1.0) * per_receiver, class_name
        if isinstance(expression, PropertyAccess):
            base_card, base_class = self._cardinality_and_class(expression.base)
            if base_class is None:
                return max(base_card, 1.0) * self.DEFAULT_FANOUT, None
            try:
                prop_def = self.schema.resolve_property(base_class, expression.prop)
            except ReproError:
                return max(base_card, 1.0), None
            target = prop_def.target_class
            if isinstance(prop_def.vml_type, SetType):
                fanout = self.property_fanout(base_class, expression.prop)
                return max(base_card, 1.0) * fanout, target
            return max(base_card, 1.0), target
        if isinstance(expression, BinaryOp):
            left, left_class = self._cardinality_and_class(expression.left)
            right, right_class = self._cardinality_and_class(expression.right)
            if expression.op == "INTERSECT":
                return min(left, right), left_class or right_class
            if expression.op == "UNION":
                return left + right, left_class or right_class
            if expression.op == "DIFF":
                return left, left_class
            return 1.0, None
        if isinstance(expression, (SetConstructor,)):
            return float(max(len(expression.elements), 1)), None
        if isinstance(expression, (TupleConstructor, UnaryOp)):
            return 1.0, None
        return 1.0, None

    # ------------------------------------------------------------------
    # selectivity
    # ------------------------------------------------------------------
    def condition_selectivity(self, condition: Expression,
                              input_cardinality: float) -> float:
        """Fraction of tuples estimated to satisfy *condition*."""
        if isinstance(condition, Const):
            return 1.0 if condition.value else 0.0
        if isinstance(condition, BinaryOp):
            op = condition.op
            if op == "AND":
                return (self.condition_selectivity(condition.left, input_cardinality)
                        * self.condition_selectivity(condition.right, input_cardinality))
            if op == "OR":
                left = self.condition_selectivity(condition.left, input_cardinality)
                right = self.condition_selectivity(condition.right, input_cardinality)
                return min(1.0, left + right - left * right)
            if op == "==":
                return self.EQUALITY_SELECTIVITY
            if op in ("<", "<=", ">", ">="):
                return 0.3
            if op == "!=":
                return 1.0 - self.EQUALITY_SELECTIVITY
            if op == "IS-IN":
                member_card = self.expression_cardinality(condition.right)
                return min(1.0, member_card / max(input_cardinality, 1.0))
            if op == "IS-SUBSET":
                return self.DEFAULT_SELECTIVITY
        if isinstance(condition, UnaryOp) and condition.op == "NOT":
            return 1.0 - self.condition_selectivity(condition.operand, input_cardinality)
        if isinstance(condition, (MethodCall, ClassMethodCall)):
            return self.METHOD_PREDICATE_SELECTIVITY
        return self.DEFAULT_SELECTIVITY
