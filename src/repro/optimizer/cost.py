"""Statistics-driven cost model for physical plans.

Algebraic optimization relies on equivalences *and* cost functions
(Section 2.3); the paper stresses that — unlike attributes — methods do not
have uniform access cost.  The model therefore charges per-tuple
scan/probe/projection work with small constants, per-invocation method
costs, and one-time costs for set-valued expressions a plan evaluates once
(e.g. ``Paragraph→retrieve_by_string`` in an :class:`ExpressionSetScan`).

Estimates are drawn from three tiers, best available wins:

1. **Measured statistics** — after ``ANALYZE``, the database's
   :class:`~repro.datamodel.statistics.StatisticsCatalog` supplies
   per-property equi-depth histograms, most-common values, distinct and
   null counts (predicate/join selectivities), measured set-valued
   fan-outs, and *timed* per-method cost calibration.  Stale statistics
   (churn past the catalog's staleness threshold) are not consulted.
2. **Live database state** — exact class-extension sizes, index distinct
   keys, and sampled set-valued fan-outs, whenever a database is attached.
3. **Documented defaults** — the flat constants below
   (``DEFAULT_SELECTIVITY``, ``EQUALITY_SELECTIVITY``,
   ``RANGE_SELECTIVITY``, schema ``cost_per_call`` annotations, ...),
   used only when neither measurement is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    Parameter,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
    free_vars,
    rename_vars,
    walk,
)
from repro.datamodel.database import Database
from repro.datamodel.statistics import PropertyStatistics
from repro.datamodel.schema import MethodDef, Schema
from repro.datamodel.types import SetType
from repro.errors import ReproError
from repro.datamodel.indexes import HashIndex
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    IndexEqScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    ParallelHashJoin,
    ParallelIndexEqScan,
    ParallelIndexRangeScan,
    ParallelMap,
    ParallelScan,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
    walk_physical,
)
from repro.vql.analyzer import class_of_type

__all__ = ["CostEstimate", "CostModel"]

#: sentinel for comparison values unknown at planning time (bind parameters)
_UNKNOWN_VALUE = object()

#: comparison operators flipped so the property lands on the left side
_FLIPPED_COMPARISON = {"==": "==", "!=": "!=",
                       "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class CostEstimate:
    """Estimated total cost and output cardinality of a plan."""

    cost: float
    cardinality: float

    def __str__(self) -> str:
        return f"cost={self.cost:.1f}, card={self.cardinality:.1f}"


class CostModel:
    """Cost and cardinality estimation for physical plans."""

    # per-tuple constants (abstract cost units)
    TUPLE_SCAN_COST = 1.0
    TUPLE_EMIT_COST = 0.1
    PROBE_COST = 0.05
    HASH_BUILD_COST = 0.1
    PROJECT_COST = 0.05
    COMPARISON_COST = 0.05
    PROPERTY_ACCESS_COST = 0.2
    #: one positioning step in a user-defined index (cheaper than any
    #: method-encapsulated lookup such as ``select_by_index``)
    INDEX_LOOKUP_COST = 2.0
    RANGE_SELECTIVITY = 0.3
    # defaults when no statistics are available
    DEFAULT_EXTENSION_SIZE = 1000.0
    DEFAULT_METHOD_COST = 1.0
    DEFAULT_METHOD_RESULT_CARD = 10.0
    DEFAULT_FANOUT = 5.0
    DEFAULT_SELECTIVITY = 0.1
    EQUALITY_SELECTIVITY = 0.05
    METHOD_PREDICATE_SELECTIVITY = 0.1
    #: number of objects sampled when measuring property fan-outs
    FANOUT_SAMPLE_SIZE = 200
    #: bound on the cached ref→class maps (keys are candidate plan subtrees)
    REF_CLASS_CACHE_LIMIT = 4096
    # parallel execution: fixed dispatch + ordered-merge cost per parallel
    # node, plus per-tuple morsel bookkeeping.  Only the *expression* work
    # (method evaluation) is divided by the degree — scan/emit/merge stay
    # sequential — so parallelism pays exactly when the saved method work,
    # ``expression cost × cardinality × (1 - 1/degree)``, clears this
    # startup threshold.
    PARALLEL_STARTUP_COST = 40.0
    PARALLEL_TUPLE_OVERHEAD = 0.02

    def __init__(self, schema: Schema, database: Optional[Database] = None):
        self.schema = schema
        self.database = database
        #: the ANALYZE-maintained statistics catalog (None without a
        #: database; consulted per estimate so a refresh is picked up live)
        self.catalog = getattr(database, "stats_catalog", None)
        self._fanout_cache: dict[tuple[str, str], float] = {}
        self._method_cache: dict[str, Optional[MethodDef]] = {}
        self._ref_class_cache: dict[PhysicalOperator, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # physical plan estimation
    # ------------------------------------------------------------------
    def estimate(self, plan: PhysicalOperator) -> CostEstimate:
        """Estimate the cost and cardinality of a physical plan."""
        # Parallel variants subclass their sequential counterparts, so they
        # must be dispatched before the parent isinstance checks below.
        if isinstance(plan, (ParallelScan, ParallelIndexEqScan,
                             ParallelIndexRangeScan, ParallelMap,
                             ParallelHashJoin)):
            return self._estimate_parallel(plan)

        if isinstance(plan, ClassScan):
            cardinality = self.extension_size(plan.class_name)
            return CostEstimate(cardinality * self.TUPLE_SCAN_COST, cardinality)

        if isinstance(plan, IndexEqScan):
            cardinality = self._index_eq_cardinality(plan)
            return CostEstimate(
                self.INDEX_LOOKUP_COST + cardinality * self.TUPLE_EMIT_COST,
                cardinality)

        if isinstance(plan, IndexRangeScan):
            cardinality = self._index_range_cardinality(plan)
            return CostEstimate(
                self.INDEX_LOOKUP_COST + cardinality * self.TUPLE_EMIT_COST,
                cardinality)

        if isinstance(plan, ExpressionSetScan):
            cardinality = self.expression_cardinality(plan.expression)
            cost = (self.expression_cost(plan.expression)
                    + cardinality * self.TUPLE_EMIT_COST)
            return CostEstimate(cost, cardinality)

        if isinstance(plan, Filter):
            inner = self.estimate(plan.input)
            per_tuple = self.expression_cost(plan.condition)
            selectivity = self.condition_selectivity(plan.condition,
                                                     inner.cardinality, plan)
            return CostEstimate(inner.cost + inner.cardinality * per_tuple,
                                max(inner.cardinality * selectivity, 0.0))

        if isinstance(plan, SetProbeFilter):
            inner = self.estimate(plan.input)
            set_card = self.expression_cardinality(plan.set_expression)
            build = (self.expression_cost(plan.set_expression)
                     + set_card * self.HASH_BUILD_COST)
            probe = inner.cardinality * self.PROBE_COST
            selectivity = min(1.0, set_card / max(inner.cardinality, 1.0))
            return CostEstimate(inner.cost + build + probe,
                                inner.cardinality * selectivity)

        if isinstance(plan, NestedLoopJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            pairs = left.cardinality * right.cardinality
            per_pair = self.expression_cost(plan.condition)
            selectivity = self.condition_selectivity(plan.condition, pairs, plan)
            return CostEstimate(left.cost + right.cost + pairs * max(per_pair, self.COMPARISON_COST),
                                pairs * selectivity)

        if isinstance(plan, IndexNestedLoopJoin):
            left = self.estimate(plan.left)
            inner_size = self.extension_size(plan.class_name)
            selectivity = self.join_selectivity(
                self.join_key_identity(plan.left_key, plan.left),
                (plan.class_name, plan.prop),
                left.cardinality, inner_size)
            cardinality = left.cardinality * inner_size * selectivity
            key_cost = self.expression_cost(plan.left_key)
            probes = left.cardinality * (key_cost + self.INDEX_LOOKUP_COST)
            return CostEstimate(
                left.cost + probes + cardinality * self.TUPLE_EMIT_COST,
                cardinality)

        if isinstance(plan, HashJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            key_cost = (self.expression_cost(plan.left_key)
                        + self.expression_cost(plan.right_key)) / 2.0
            build = right.cardinality * (key_cost + self.HASH_BUILD_COST)
            probe = left.cardinality * (key_cost + self.PROBE_COST)
            join_selectivity = self._equi_join_selectivity(
                plan, left.cardinality, right.cardinality)
            cardinality = left.cardinality * right.cardinality * join_selectivity
            return CostEstimate(left.cost + right.cost + build + probe, cardinality)

        if isinstance(plan, NaturalMergeJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            build = right.cardinality * self.HASH_BUILD_COST
            probe = left.cardinality * self.PROBE_COST
            join_selectivity = 1.0 / max(left.cardinality, right.cardinality, 1.0)
            cardinality = left.cardinality * right.cardinality * join_selectivity
            if not plan.common_refs():
                cardinality = left.cardinality * right.cardinality
            return CostEstimate(left.cost + right.cost + build + probe, cardinality)

        if isinstance(plan, MapEval):
            inner = self.estimate(plan.input)
            per_tuple = self.expression_cost(plan.expression)
            return CostEstimate(inner.cost + inner.cardinality * per_tuple,
                                inner.cardinality)

        if isinstance(plan, FlattenEval):
            inner = self.estimate(plan.input)
            per_tuple = self.expression_cost(plan.expression)
            fanout = self.expression_fanout(plan.expression)
            cardinality = inner.cardinality * fanout
            cost = (inner.cost + inner.cardinality * per_tuple
                    + cardinality * self.TUPLE_EMIT_COST)
            return CostEstimate(cost, cardinality)

        if isinstance(plan, ProjectOp):
            inner = self.estimate(plan.input)
            return CostEstimate(inner.cost + inner.cardinality * self.PROJECT_COST,
                                inner.cardinality)

        if isinstance(plan, UnionOp):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            total = left.cardinality + right.cardinality
            return CostEstimate(left.cost + right.cost + total * self.PROBE_COST,
                                total)

        if isinstance(plan, DiffOp):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            cost = (left.cost + right.cost
                    + (left.cardinality + right.cardinality) * self.PROBE_COST)
            return CostEstimate(cost, left.cardinality)

        # Unknown operators get a pessimistic default so they are only chosen
        # when nothing else is applicable.
        children = [self.estimate(child) for child in plan.inputs()]
        cost = sum(c.cost for c in children) + 1000.0
        cardinality = max((c.cardinality for c in children), default=1.0)
        return CostEstimate(cost, cardinality)

    # ------------------------------------------------------------------
    # parallel operators
    # ------------------------------------------------------------------
    def _estimate_parallel(self, plan: PhysicalOperator) -> CostEstimate:
        """Cost of the morsel-driven parallel variants.

        The parallelizable share (per-tuple expression evaluation) is
        divided by the degree; scanning, emitting and merging are charged
        sequentially, plus a fixed startup cost per parallel node.
        """
        degree = max(plan.degree, 1)  # type: ignore[attr-defined]

        if isinstance(plan, ParallelScan):
            size = self.extension_size(plan.class_name)
            if plan.condition is None:
                per_tuple = 0.0
                selectivity = 1.0
            else:
                per_tuple = self.expression_cost(plan.condition)
                selectivity = self.condition_selectivity(plan.condition, size,
                                                         plan)
            cost = (self.PARALLEL_STARTUP_COST
                    + size * (self.TUPLE_SCAN_COST + self.PARALLEL_TUPLE_OVERHEAD)
                    + size * per_tuple / degree)
            return CostEstimate(cost, max(size * selectivity, 0.0))

        if isinstance(plan, (ParallelIndexEqScan, ParallelIndexRangeScan)):
            # Matching cardinality as estimated for the sequential scan.
            matches = (self._index_eq_cardinality(plan)
                       if isinstance(plan, ParallelIndexEqScan)
                       else self._index_range_cardinality(plan))
            if plan.condition is None:
                per_tuple = 0.0
                selectivity = 1.0
            else:
                per_tuple = self.expression_cost(plan.condition)
                selectivity = self.condition_selectivity(plan.condition,
                                                         matches, plan)
            cost = (self.INDEX_LOOKUP_COST + self.PARALLEL_STARTUP_COST
                    + matches * (self.TUPLE_EMIT_COST + self.PARALLEL_TUPLE_OVERHEAD)
                    + matches * per_tuple / degree)
            return CostEstimate(cost, max(matches * selectivity, 0.0))

        if isinstance(plan, ParallelMap):
            inner = self.estimate(plan.input)
            per_tuple = self.expression_cost(plan.expression)
            cost = (inner.cost + self.PARALLEL_STARTUP_COST
                    + inner.cardinality * self.PARALLEL_TUPLE_OVERHEAD
                    + inner.cardinality * per_tuple / degree)
            return CostEstimate(cost, inner.cardinality)

        if isinstance(plan, ParallelHashJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            key_cost = (self.expression_cost(plan.left_key)
                        + self.expression_cost(plan.right_key)) / 2.0
            build = right.cardinality * (key_cost / degree + self.HASH_BUILD_COST)
            probe = left.cardinality * (key_cost / degree + self.PROBE_COST)
            overhead = ((left.cardinality + right.cardinality)
                        * self.PARALLEL_TUPLE_OVERHEAD)
            join_selectivity = self._equi_join_selectivity(
                plan, left.cardinality, right.cardinality)
            cardinality = left.cardinality * right.cardinality * join_selectivity
            return CostEstimate(
                left.cost + right.cost + self.PARALLEL_STARTUP_COST
                + build + probe + overhead,
                cardinality)

        raise ReproError(f"not a parallel operator: {plan!r}")

    # ------------------------------------------------------------------
    # statistics primitives
    # ------------------------------------------------------------------
    def _index_eq_cardinality(self, plan: IndexEqScan) -> float:
        """Expected matches of an equality index lookup (shared by the
        sequential and parallel scan estimates).

        Preference order: histogram/most-common-value statistics for the
        concrete key (captures skew), the index's average bucket size
        (uniform assumption), then the flat equality default."""
        size = self.extension_size(plan.class_name)
        stats = self.property_statistics(plan.class_name, plan.prop)
        if stats is not None:
            if isinstance(plan.key, Expression):
                # Bind-parameter keys: value unknown, use the average bucket.
                selectivity = stats.selectivity_unknown_eq()
            else:
                selectivity = stats.selectivity_eq(plan.key)
            return max(size * selectivity, 1.0)
        cardinality = max(size * self.EQUALITY_SELECTIVITY, 1.0)
        index = (self.database.indexes.get(plan.class_name, plan.prop)
                 if self.database is not None else None)
        if isinstance(index, HashIndex) and index.distinct_keys() > 0:
            cardinality = max(len(index) / index.distinct_keys(), 1.0)
        return cardinality

    def _index_range_cardinality(self, plan: IndexRangeScan) -> float:
        """Expected matches of a range index lookup (histogram-interpolated
        when statistics are fresh, flat default otherwise)."""
        size = self.extension_size(plan.class_name)
        stats = self.property_statistics(plan.class_name, plan.prop)
        concrete = not (isinstance(plan.low, Expression)
                        or isinstance(plan.high, Expression))
        if stats is not None and concrete:
            selectivity = stats.selectivity_range(plan.low, plan.high)
            if selectivity is not None:
                return max(size * selectivity, 1.0)
        selectivity = self.RANGE_SELECTIVITY
        if plan.low is not None and plan.high is not None:
            selectivity *= self.RANGE_SELECTIVITY
        return max(size * selectivity, 1.0)

    def property_statistics(self, class_name: Optional[str],
                            prop: str) -> Optional[PropertyStatistics]:
        """Fresh ANALYZE statistics for ``class_name.prop``, or None."""
        if class_name is None or self.catalog is None:
            return None
        class_stats = self.catalog.fresh(class_name)
        if class_stats is None:
            return None
        return class_stats.property_statistics(prop)

    def _ref_class_map(self, plan: PhysicalOperator) -> dict[str, str]:
        """Map each reference produced by a scan below *plan* to its class.

        This is what lets :meth:`condition_selectivity` resolve
        ``a.prop == const`` against the statistics of the class *a* ranges
        over.  References introduced by map/flatten are left unresolved
        (their conditions fall back to the documented defaults)."""
        cached = self._ref_class_cache.get(plan)
        if cached is not None:
            return cached
        mapping: dict[str, str] = {}
        for node in walk_physical(plan):
            if isinstance(node, (ClassScan, IndexEqScan, IndexRangeScan,
                                 IndexNestedLoopJoin)):
                mapping.setdefault(node.ref, node.class_name)
        # The cache keys whole candidate subtrees; one long-lived cost model
        # (the service's) estimates unboundedly many shapes, so cap it — a
        # reset only costs re-walking small plan trees.
        if len(self._ref_class_cache) >= self.REF_CLASS_CACHE_LIMIT:
            self._ref_class_cache.clear()
        self._ref_class_cache[plan] = mapping
        return mapping

    def extension_size(self, class_name: str) -> float:
        if self.database is not None:
            try:
                return float(max(self.database.extension_size(class_name), 1))
            except ReproError:
                return self.DEFAULT_EXTENSION_SIZE
        return self.DEFAULT_EXTENSION_SIZE

    def method_definition(self, method_name: str) -> Optional[MethodDef]:
        """Find a method definition by name anywhere in the schema."""
        if method_name in self._method_cache:
            return self._method_cache[method_name]
        found: Optional[MethodDef] = None
        for class_def in self.schema.classes.values():
            if method_name in class_def.instance_methods:
                found = class_def.instance_methods[method_name]
                break
            if method_name in class_def.class_methods:
                found = class_def.class_methods[method_name]
                break
        self._method_cache[method_name] = found
        return found

    def method_cost(self, method_name: str) -> float:
        """Cost units per invocation: measured (ANALYZE-calibrated) when
        available, the schema's ``cost_per_call`` annotation otherwise."""
        if self.catalog is not None:
            measured = self.catalog.method_statistics(method_name)
            if measured is not None:
                return measured.cost_units
        method = self.method_definition(method_name)
        return method.cost_per_call if method is not None else self.DEFAULT_METHOD_COST

    def method_result_cardinality(self, method_name: str) -> float:
        """Result-set size per call: measured average first, then the
        schema's cardinality hint, then the documented default."""
        if self.catalog is not None:
            measured = self.catalog.method_statistics(method_name)
            if measured is not None and measured.avg_result_cardinality:
                return max(measured.avg_result_cardinality, 1.0)
        method = self.method_definition(method_name)
        if method is None:
            return self.DEFAULT_METHOD_RESULT_CARD
        if method.result_cardinality_hint is not None:
            return float(method.result_cardinality_hint)
        if isinstance(method.return_type, SetType):
            return self.DEFAULT_METHOD_RESULT_CARD
        return 1.0

    def property_fanout(self, class_name: str, prop: str) -> float:
        """Average number of elements of a set-valued property: ANALYZE
        statistics first, live sampling otherwise."""
        stats = self.property_statistics(class_name, prop)
        if stats is not None and stats.avg_fanout is not None:
            return max(stats.avg_fanout, 1.0)
        key = (class_name, prop)
        if key in self._fanout_cache:
            return self._fanout_cache[key]
        fanout = self.DEFAULT_FANOUT
        if self.database is not None and self.schema.has_property(class_name, prop):
            oids = self.database.extension(class_name)[:self.FANOUT_SAMPLE_SIZE]
            sizes: list[int] = []
            for oid in oids:
                value = self.database.get(oid).get_or_none(prop)
                if isinstance(value, (set, frozenset, list, tuple)):
                    sizes.append(len(value))
            if sizes:
                fanout = max(sum(sizes) / len(sizes), 1.0)
        self._fanout_cache[key] = fanout
        return fanout

    # ------------------------------------------------------------------
    # expression estimation
    # ------------------------------------------------------------------
    def expression_cost(self, expression: Expression) -> float:
        """Cost of evaluating *expression* once (per input tuple)."""
        cost = 0.0
        for node in walk(expression):
            if isinstance(node, MethodCall):
                cost += self.method_cost(node.method)
            elif isinstance(node, ClassMethodCall):
                cost += self.method_cost(node.method)
            elif isinstance(node, PropertyAccess):
                cost += self.PROPERTY_ACCESS_COST
            elif isinstance(node, (BinaryOp, UnaryOp)):
                cost += self.COMPARISON_COST
            elif isinstance(node, ClassExtent):
                cost += self.extension_size(node.class_name) * self.TUPLE_EMIT_COST
        return cost

    def expression_cardinality(self, expression: Expression) -> float:
        """Estimated number of elements of a set-valued expression."""
        cardinality, _ = self._cardinality_and_class(expression)
        return cardinality

    def expression_fanout(self, expression: Expression) -> float:
        """Estimated elements produced per input tuple when flattening."""
        cardinality, _ = self._cardinality_and_class(expression)
        return max(cardinality, 1.0)

    def _cardinality_and_class(self, expression: Expression
                               ) -> tuple[float, Optional[str]]:
        if isinstance(expression, Const):
            value = expression.value
            if isinstance(value, (tuple, frozenset)):
                return float(max(len(value), 1)), None
            return 1.0, None
        if isinstance(expression, Var):
            return 1.0, None
        if isinstance(expression, ClassExtent):
            return self.extension_size(expression.class_name), expression.class_name
        if isinstance(expression, ClassMethodCall):
            method = self.method_definition(expression.method)
            class_name = None
            if method is not None:
                class_name = class_of_type(method.return_type)
            return self.method_result_cardinality(expression.method), class_name
        if isinstance(expression, MethodCall):
            base_card, _ = self._cardinality_and_class(expression.receiver)
            method = self.method_definition(expression.method)
            class_name = class_of_type(method.return_type) if method else None
            per_receiver = self.method_result_cardinality(expression.method)
            return max(base_card, 1.0) * per_receiver, class_name
        if isinstance(expression, PropertyAccess):
            base_card, base_class = self._cardinality_and_class(expression.base)
            if base_class is None:
                return max(base_card, 1.0) * self.DEFAULT_FANOUT, None
            try:
                prop_def = self.schema.resolve_property(base_class, expression.prop)
            except ReproError:
                return max(base_card, 1.0), None
            target = prop_def.target_class
            if isinstance(prop_def.vml_type, SetType):
                fanout = self.property_fanout(base_class, expression.prop)
                return max(base_card, 1.0) * fanout, target
            return max(base_card, 1.0), target
        if isinstance(expression, BinaryOp):
            left, left_class = self._cardinality_and_class(expression.left)
            right, right_class = self._cardinality_and_class(expression.right)
            if expression.op == "INTERSECT":
                return min(left, right), left_class or right_class
            if expression.op == "UNION":
                return left + right, left_class or right_class
            if expression.op == "DIFF":
                return left, left_class
            return 1.0, None
        if isinstance(expression, (SetConstructor,)):
            return float(max(len(expression.elements), 1)), None
        if isinstance(expression, (TupleConstructor, UnaryOp)):
            return 1.0, None
        return 1.0, None

    # ------------------------------------------------------------------
    # join selectivity (shared by the strategy estimates and the join
    # enumerator in repro.optimizer.joingraph)
    # ------------------------------------------------------------------
    def join_key_identity(self, key: Expression,
                          source: PhysicalOperator
                          ) -> Optional[tuple[str, Optional[str]]]:
        """The ``(class_name, property-or-None)`` column an equi-join key
        denotes, when the key is a bare scanned reference (identity join)
        or a direct property of one — None for computed keys."""
        ref_classes = self._ref_class_map(source)
        if isinstance(key, Var):
            class_name = ref_classes.get(key.name)
            return (class_name, None) if class_name is not None else None
        if isinstance(key, PropertyAccess) and isinstance(key.base, Var):
            class_name = ref_classes.get(key.base.name)
            return (class_name, key.prop) if class_name is not None else None
        return None

    @staticmethod
    def join_correction_key(left_identity: tuple[str, Optional[str]],
                            right_identity: tuple[str, Optional[str]]
                            ) -> tuple:
        """Order-independent catalog key for one join class-pair."""
        return tuple(sorted((left_identity, right_identity),
                            key=lambda pair: (pair[0], pair[1] or "")))

    def join_selectivity(self,
                         left_identity: Optional[tuple[str, Optional[str]]],
                         right_identity: Optional[tuple[str, Optional[str]]],
                         left_cardinality: float,
                         right_cardinality: float) -> float:
        """Selectivity of an equi-join between two key columns.

        Preference order: a feedback correction recorded for the class
        pair, NDV containment (``1 / max(ndv)``) refined by both sides'
        most-common values when available (hot-key skew), then the legacy
        ``1 / max(card)`` flat assumption when statistics are absent."""
        if (left_identity is not None and right_identity is not None
                and self.catalog is not None
                and self.catalog.correction_count()):
            override = self.catalog.join_correction(
                self.join_correction_key(left_identity, right_identity))
            if override is not None:
                return override
        left_ndv, left_stats = self._identity_ndv(left_identity)
        right_ndv, right_stats = self._identity_ndv(right_identity)
        if left_ndv is not None or right_ndv is not None:
            if (left_stats is not None and right_stats is not None
                    and left_stats.most_common and right_stats.most_common):
                refined = self._mcv_join_selectivity(left_stats, right_stats)
                if refined is not None:
                    return refined
            ndv = max(left_ndv or 1.0, right_ndv or 1.0, 1.0)
            return min(1.0 / ndv, 1.0)
        return 1.0 / max(left_cardinality, right_cardinality, 1.0)

    def _identity_ndv(self, identity: Optional[tuple[str, Optional[str]]]
                      ) -> tuple[Optional[float],
                                 Optional[PropertyStatistics]]:
        """Distinct-value count of one join key column (with its property
        statistics when the key is a property), from fresh statistics."""
        if identity is None or self.catalog is None:
            return None, None
        class_name, prop = identity
        class_stats = self.catalog.fresh(class_name)
        if class_stats is None:
            return None, None
        if prop is None:
            # The key is the scanned object itself: every row is distinct.
            return float(max(class_stats.row_count, 1)), None
        stats = class_stats.property_statistics(prop)
        if stats is None or stats.distinct <= 0:
            return None, None
        return float(stats.distinct), stats

    @staticmethod
    def _mcv_join_selectivity(left: PropertyStatistics,
                              right: PropertyStatistics) -> Optional[float]:
        """Join selectivity from both sides' most-common values: exact mass
        on the matched hot keys, NDV containment on the residual tail."""
        if left.row_count <= 0 or right.row_count <= 0:
            return None
        right_freq = {value: count / right.row_count
                      for value, count in right.most_common}
        matched = 0.0
        for value, count in left.most_common:
            frequency = right_freq.get(value)
            if frequency:
                matched += (count / left.row_count) * frequency
        covered_left = sum(c for _, c in left.most_common) / left.row_count
        covered_right = sum(c for _, c in right.most_common) / right.row_count
        residual_ndv = max(left.distinct - len(left.most_common),
                           right.distinct - len(right.most_common), 1)
        residual = (max(1.0 - covered_left, 0.0)
                    * max(1.0 - covered_right, 0.0) / residual_ndv)
        return min(max(matched + residual, 1e-9), 1.0)

    def _equi_join_selectivity(self, plan: HashJoin, left_cardinality: float,
                               right_cardinality: float) -> float:
        """Join selectivity of a hash join's key pair."""
        return self.join_selectivity(
            self.join_key_identity(plan.left_key, plan.left),
            self.join_key_identity(plan.right_key, plan.right),
            left_cardinality, right_cardinality)

    # ------------------------------------------------------------------
    # predicate corrections (adaptive feedback)
    # ------------------------------------------------------------------
    @staticmethod
    def predicate_correction_key(class_name: str, ref: str,
                                 condition: Expression) -> tuple:
        """Catalog key of a single-reference predicate: the class plus the
        condition with its reference canonicalized (so the same predicate
        matches across plans that name the range variable differently)."""
        canonical = rename_vars(condition, {ref: "$self"})
        return ((class_name, str(canonical)),)

    def predicate_identity(self, condition: Expression,
                           source: Optional[PhysicalOperator]
                           ) -> Optional[tuple]:
        """The correction key of *condition* when it constrains exactly one
        scanned reference of *source*, else None."""
        if source is None:
            return None
        refs = free_vars(condition)
        if len(refs) != 1:
            return None
        (ref,) = tuple(refs)
        class_name = self._ref_class_map(source).get(ref)
        if class_name is None:
            return None
        return self.predicate_correction_key(class_name, ref, condition)

    def _predicate_override(self, condition: Expression,
                            source: Optional[PhysicalOperator]
                            ) -> Optional[float]:
        if self.catalog is None or not self.catalog.correction_count():
            return None
        key = self.predicate_identity(condition, source)
        if key is None:
            return None
        return self.catalog.predicate_correction(key)

    # ------------------------------------------------------------------
    # selectivity
    # ------------------------------------------------------------------
    def condition_selectivity(self, condition: Expression,
                              input_cardinality: float,
                              source: Optional[PhysicalOperator] = None
                              ) -> float:
        """Fraction of tuples estimated to satisfy *condition*.

        *source* is the physical subtree the condition filters (when known):
        property comparisons against constants are then estimated from the
        ANALYZE statistics of the class each reference scans, falling back
        to the documented flat defaults when statistics are absent or stale.
        """
        if isinstance(condition, Const):
            return 1.0 if condition.value else 0.0
        override = self._predicate_override(condition, source)
        if override is not None:
            return override
        if isinstance(condition, BinaryOp):
            op = condition.op
            if op == "AND":
                return (self.condition_selectivity(condition.left,
                                                   input_cardinality, source)
                        * self.condition_selectivity(condition.right,
                                                     input_cardinality, source))
            if op == "OR":
                left = self.condition_selectivity(condition.left,
                                                  input_cardinality, source)
                right = self.condition_selectivity(condition.right,
                                                   input_cardinality, source)
                return min(1.0, left + right - left * right)
            if op in ("==", "!=", "<", "<=", ">", ">="):
                return self._comparison_selectivity(condition, op, source)
            if op == "IS-IN":
                member_card = self.expression_cardinality(condition.right)
                return min(1.0, member_card / max(input_cardinality, 1.0))
            if op == "IS-SUBSET":
                return self.DEFAULT_SELECTIVITY
        if isinstance(condition, UnaryOp) and condition.op == "NOT":
            return 1.0 - self.condition_selectivity(condition.operand,
                                                    input_cardinality, source)
        if isinstance(condition, (MethodCall, ClassMethodCall)):
            return self.METHOD_PREDICATE_SELECTIVITY
        return self.DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, condition: BinaryOp, op: str,
                                source: Optional[PhysicalOperator]) -> float:
        """Selectivity of one comparison conjunct, statistics-driven when
        the shape is ``ref.prop OP const`` over a scanned class."""
        match = self._stats_for_comparison(condition, source)
        if match is not None:
            stats, value, oriented_op = match
            if oriented_op == "==":
                if value is _UNKNOWN_VALUE:
                    return stats.selectivity_unknown_eq()
                return min(stats.selectivity_eq(value), 1.0)
            if oriented_op == "!=":
                if value is _UNKNOWN_VALUE:
                    return 1.0 - stats.selectivity_unknown_eq()
                return max(1.0 - stats.selectivity_eq(value), 0.0)
            if value is not _UNKNOWN_VALUE:
                estimated = stats.selectivity_cmp(oriented_op, value)
                if estimated is not None:
                    return min(max(estimated, 0.0), 1.0)
        if op == "==" and source is not None:
            # Equality between two scanned columns: an equi-join conjunct
            # inside a nested-loop condition — estimate it with the same
            # join selectivity the keyed join strategies use, so the cost
            # model ranks strategies on cost, not on divergent cardinality.
            left_identity = self.join_key_identity(condition.left, source)
            right_identity = self.join_key_identity(condition.right, source)
            if left_identity is not None and right_identity is not None:
                return self.join_selectivity(
                    left_identity, right_identity,
                    self.extension_size(left_identity[0]),
                    self.extension_size(right_identity[0]))
        # documented flat defaults
        if op == "==":
            return self.EQUALITY_SELECTIVITY
        if op == "!=":
            return 1.0 - self.EQUALITY_SELECTIVITY
        return self.RANGE_SELECTIVITY

    def _stats_for_comparison(self, condition: BinaryOp,
                              source: Optional[PhysicalOperator]
                              ) -> Optional[tuple[PropertyStatistics, object,
                                                  str]]:
        """Resolve ``ref.prop OP const`` (either orientation) to that
        property's fresh statistics, the comparison value (``_UNKNOWN_VALUE``
        for bind parameters) and the property-on-the-left operator."""
        if source is None or self.catalog is None:
            return None
        ref_classes = self._ref_class_map(source)
        if not ref_classes:
            return None
        orientations = (
            (condition.left, condition.right, condition.op),
            (condition.right, condition.left,
             _FLIPPED_COMPARISON.get(condition.op, condition.op)),
        )
        for prop_side, value_side, oriented_op in orientations:
            if not (isinstance(prop_side, PropertyAccess)
                    and isinstance(prop_side.base, Var)):
                continue
            class_name = ref_classes.get(prop_side.base.name)
            stats = self.property_statistics(class_name, prop_side.prop)
            if stats is None:
                continue
            if isinstance(value_side, Const):
                return stats, value_side.value, oriented_op
            if isinstance(value_side, Parameter):
                return stats, _UNKNOWN_VALUE, oriented_op
        return None
