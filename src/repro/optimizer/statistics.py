"""Counters describing one optimization run (search-space statistics)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OptimizerStatistics:
    """Search-space and effort statistics of one optimizer invocation."""

    logical_plans_explored: int = 0
    transformations_applied: int = 0
    transformation_attempts: int = 0
    implementation_alternatives: int = 0
    physical_plans_costed: int = 0
    exploration_truncated: bool = False
    optimization_seconds: float = 0.0
    rule_application_counts: dict[str, int] = field(default_factory=dict)

    def record_rule(self, rule_name: str) -> None:
        self.rule_application_counts[rule_name] = (
            self.rule_application_counts.get(rule_name, 0) + 1)

    def snapshot(self) -> dict[str, float]:
        return {
            "logical_plans_explored": self.logical_plans_explored,
            "transformations_applied": self.transformations_applied,
            "transformation_attempts": self.transformation_attempts,
            "implementation_alternatives": self.implementation_alternatives,
            "physical_plans_costed": self.physical_plans_costed,
            "exploration_truncated": float(self.exploration_truncated),
            "optimization_seconds": self.optimization_seconds,
        }

    def __str__(self) -> str:
        return (f"OptimizerStatistics(plans={self.logical_plans_explored}, "
                f"transformations={self.transformations_applied}, "
                f"physical={self.physical_plans_costed}, "
                f"time={self.optimization_seconds:.3f}s)")
