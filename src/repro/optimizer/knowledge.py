"""Schema-specific semantic knowledge about methods (Section 4.2).

The schema designer states knowledge in four forms; each compiles into
optimizer rules:

* :class:`ExpressionEquivalence` — ``x IN C: expr1(x) == expr2(x)`` →
  bidirectional transformation rules rewriting operator parameters;
* :class:`ConditionEquivalence` — ``x IN C: cond1(x) ⇔ cond2(x)`` → the same
  mechanism restricted to boolean expressions (typical source: inverse
  links);
* :class:`ConditionImplication` — ``x IN C: cond1(x) ⇒ cond2(x)`` → an
  apply-once rule adding the implied (cheaper) restriction;
* :class:`QueryMethodEquivalence` — ``methcall == ACCESS … FROM … WHERE …``
  → an implementation rule mapping the query's algebraic form onto a direct
  invocation of the (externally implemented) method.

All expressions may be given as VQL text or as already-parsed expression
nodes.  Free variables other than the bound variable act as parameters and
may optionally be constrained to a class (``parameter_classes``), as in the
paper's equivalence E3 where ``D`` must be a set of documents.

:class:`SchemaKnowledge` aggregates the individual pieces and compiles the
complete schema-specific rule set; it can also derive condition equivalences
automatically from the schema's declared inverse links, which the paper
mentions as a typical source of this knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union as TypingUnion

from repro.algebra.expressions import (
    BinaryOp,
    Const,
    Expression,
    MethodCall,
    PropertyAccess,
    Var,
    conjuncts,
    free_vars,
    make_conjunction,
)
from repro.algebra.operators import (
    ExpressionSource,
    Flat,
    Get,
    Join,
    LogicalOperator,
    Map,
    Select,
)
from repro.datamodel.schema import InverseLink, Schema
from repro.datamodel.types import ANY
from repro.errors import RuleDerivationError
from repro.optimizer.patterns import (
    Binding,
    instantiate,
    match_expression,
    pattern_from_template,
    rewrite_matches,
)
from repro.optimizer.rules import (
    CallableImplementationRule,
    CallableTransformationRule,
    RuleContext,
    RuleSet,
)
from repro.physical.plans import ExpressionSetScan, PhysicalOperator, SetProbeFilter
from repro.vql.analyzer import analyze_query, resolve_class_references
from repro.vql.parser import parse_expression, parse_query

__all__ = [
    "ExpressionEquivalence",
    "ConditionEquivalence",
    "ConditionImplication",
    "QueryMethodEquivalence",
    "SchemaKnowledge",
    "equivalences_from_inverse_link",
]

ExpressionLike = TypingUnion[str, Expression]


def _as_expression(value: ExpressionLike) -> Expression:
    if isinstance(value, Expression):
        return value
    return parse_expression(value)


def _with_parameter(plan: LogicalOperator, new_expression: Expression
                    ) -> Optional[LogicalOperator]:
    """Return a copy of *plan* with its single expression parameter replaced."""
    if isinstance(plan, Select):
        return Select(new_expression, plan.input)
    if isinstance(plan, Join):
        return Join(new_expression, plan.left, plan.right)
    if isinstance(plan, Map):
        return Map(plan.ref, new_expression, plan.input)
    if isinstance(plan, Flat):
        return Flat(plan.ref, new_expression, plan.input)
    if isinstance(plan, ExpressionSource):
        return ExpressionSource(plan.ref, new_expression)
    return None


def _binding_guard(context: RuleContext, plan: LogicalOperator,
                   variable: str, class_name: str,
                   parameter_classes: Mapping[str, str]):
    """Build a guard callable checking class constraints of a binding."""

    def guard(_occurrence: Expression, binding: Binding) -> bool:
        bound = binding.get(variable)
        if bound is None:
            return False
        if not context.expression_class(bound, plan) == class_name and \
                not _conforms(context, bound, plan, class_name):
            return False
        for parameter, required in parameter_classes.items():
            value = binding.get(parameter)
            if value is None:
                return False
            if not _conforms(context, value, plan, required):
                return False
        return True

    return guard


def _conforms(context: RuleContext, expression: Expression,
              plan: LogicalOperator, class_name: str) -> bool:
    actual = context.expression_class(expression, plan)
    if actual is None:
        return False
    current: Optional[str] = actual
    while current is not None:
        if current == class_name:
            return True
        current = context.schema.get_class(current).superclass
    return False


@dataclass
class ExpressionEquivalence:
    """``x IN C: expr1(x) == expr2(x)`` — equivalent expressions.

    Typical source: path methods, e.g. E1:
    ``p IN Paragraph: p->document() == p.section.document``.
    """

    class_name: str
    variable: str
    left: ExpressionLike
    right: ExpressionLike
    name: str = ""
    parameter_classes: dict[str, str] = field(default_factory=dict)

    kind = "expression-equivalence"
    tag = "semantic:expression"

    def __post_init__(self) -> None:
        self.left = _as_expression(self.left)
        self.right = _as_expression(self.right)
        if not self.name:
            self.name = f"expr-equiv[{self.left} == {self.right}]"
        self._validate()

    def _validate(self) -> None:
        for side in (self.left, self.right):
            if self.variable not in free_vars(side):
                raise RuleDerivationError(
                    f"{self.kind} {self.name!r}: expression {side} does not "
                    f"mention the bound variable {self.variable!r}")

    def pattern_variables(self) -> dict[str, None]:
        names = (free_vars(self.left) | free_vars(self.right))
        return {name: None for name in names}

    def derive_rules(self, schema: Schema) -> RuleSet:
        """Compile into bidirectional parameter-rewriting rules."""
        rules = RuleSet(self.name)
        # Resolve bare class names (``Document->select_by_index(s)``) so that
        # they do not end up as pattern variables.
        left = resolve_class_references(self.left, schema, set())
        right = resolve_class_references(self.right, schema, set())
        variables = {name: None for name in (free_vars(left) | free_vars(right))}
        left_pattern = pattern_from_template(left, variables)
        right_pattern = pattern_from_template(right, variables)
        left_vars = free_vars(left) & set(variables)
        right_vars = free_vars(right) & set(variables)
        directions = []
        # A direction is only usable when every variable of the template is
        # bound by the pattern side.
        if right_vars <= left_vars:
            directions.append((f"{self.name} [->]", left_pattern, right_pattern))
        if left_vars <= right_vars:
            directions.append((f"{self.name} [<-]", right_pattern, left_pattern))
        for rule_name, pattern, template in directions:
            rules.add(CallableTransformationRule(
                name=rule_name,
                description=f"{self.kind}: {self.left} == {self.right}",
                tags=frozenset({"semantic", self.tag}),
                function=self._make_rewriter(pattern, template)))
        return rules

    def _make_rewriter(self, pattern: Expression, template: Expression):
        variable = self.variable
        class_name = self.class_name
        parameter_classes = dict(self.parameter_classes)

        def rewrite(plan: LogicalOperator, context: RuleContext
                    ) -> Optional[Iterable[LogicalOperator]]:
            parameters = plan.parameters()
            if len(parameters) != 1:
                return None
            guard = _binding_guard(context, plan, variable, class_name,
                                   parameter_classes)
            alternatives = []
            for new_parameter in rewrite_matches(parameters[0], pattern,
                                                 template, guard):
                replacement = _with_parameter(plan, new_parameter)
                if replacement is not None:
                    alternatives.append(replacement)
            return alternatives

        return rewrite


@dataclass
class ConditionEquivalence(ExpressionEquivalence):
    """``x IN C: cond1(x) ⇔ cond2(x)`` — equivalent boolean conditions.

    Typical source: inverse links, e.g. E3:
    ``p IN Paragraph: p.section.document IS-IN D ⇔ p.section IS-IN D.sections``.
    """

    kind = "condition-equivalence"
    tag = "semantic:condition"

    def _validate(self) -> None:
        super()._validate()
        # At least one side must be syntactically boolean.  The other side
        # may be a method call whose boolean return type is only known to
        # the schema (e.g. ``p->sameDocument(q)``).
        if not (self.left.is_boolean() or self.right.is_boolean()):
            raise RuleDerivationError(
                f"{self.kind} {self.name!r}: neither {self.left} nor "
                f"{self.right} is a boolean expression")


@dataclass
class ConditionImplication:
    """``x IN C: cond1(x) ⇒ cond2(x)`` — implied (redundant) condition.

    Compiles into an apply-once rule that conjoins the implied condition to a
    selection already containing the antecedent, the algebraic counterpart of
    the paper's ``select<cond1>(?A) ⇒! natural_join(select<cond1>(?A),
    select<cond2>(?A))`` (over equal reference sets the natural join is an
    intersection, so adding the conjunct is equivalent).
    """

    class_name: str
    variable: str
    antecedent: ExpressionLike
    consequent: ExpressionLike
    name: str = ""
    parameter_classes: dict[str, str] = field(default_factory=dict)

    kind = "condition-implication"
    tag = "semantic:implication"

    def __post_init__(self) -> None:
        self.antecedent = _as_expression(self.antecedent)
        self.consequent = _as_expression(self.consequent)
        if not self.name:
            self.name = f"implication[{self.antecedent} => {self.consequent}]"
        if self.variable not in free_vars(self.antecedent):
            raise RuleDerivationError(
                f"{self.kind} {self.name!r}: antecedent does not mention "
                f"{self.variable!r}")
        if self.variable not in free_vars(self.consequent):
            raise RuleDerivationError(
                f"{self.kind} {self.name!r}: consequent does not mention "
                f"{self.variable!r}")

    def derive_rules(self, schema: Schema) -> RuleSet:
        rules = RuleSet(self.name)
        antecedent = resolve_class_references(self.antecedent, schema, set())
        consequent = resolve_class_references(self.consequent, schema, set())
        variables = {name: None for name in
                     (free_vars(antecedent) | free_vars(consequent))}
        antecedent_pattern = pattern_from_template(antecedent, variables)
        consequent_template = pattern_from_template(consequent, variables)
        variable = self.variable
        class_name = self.class_name
        parameter_classes = dict(self.parameter_classes)

        def rewrite(plan: LogicalOperator, context: RuleContext
                    ) -> Optional[Iterable[LogicalOperator]]:
            if not isinstance(plan, Select):
                return None
            guard = _binding_guard(context, plan, variable, class_name,
                                   parameter_classes)
            existing = conjuncts(plan.condition)
            alternatives = []
            for conjunct in existing:
                binding = match_expression(antecedent_pattern, conjunct)
                if binding is None or not guard(conjunct, binding):
                    continue
                implied = instantiate(consequent_template, binding)
                if implied in existing:
                    continue  # apply-once guard: already added
                new_condition = make_conjunction([*existing, implied])
                assert new_condition is not None
                alternatives.append(Select(new_condition, plan.input))
            return alternatives

        rules.add(CallableTransformationRule(
            name=self.name,
            description=f"{self.kind}: {self.antecedent} => {self.consequent}",
            tags=frozenset({"semantic", self.tag}),
            apply_once=True,
            function=rewrite))
        return rules


@dataclass
class QueryMethodEquivalence:
    """``methcall == ACCESS … FROM … WHERE …`` — a method implements a query.

    E5: ``Paragraph->retrieve_by_string(s) ==
    ACCESS p FROM p IN Paragraph WHERE p->contains_string(s)``.

    Derivation (Section 4.2, "Equivalences Between Queries and Method
    Calls"): the query is translated to its algebraic form and an
    implementation rule ``Aquery → methcall`` is generated, applicable in one
    direction only.  Two physical shapes are produced:

    * the *scan replacement*: ``select<W>(get<a, C>)`` becomes an
      :class:`ExpressionSetScan` of the method call;
    * the *probe*: ``select<W>(P)`` for arbitrary ``P`` becomes a
      :class:`SetProbeFilter` probing the method-call result, sound because
      the method returns exactly the instances of ``C`` satisfying ``W``.

    A logical-level transformation to :class:`ExpressionSource` is derived as
    well so the rewritten form is visible to further transformations (and to
    the optimization trace, mirroring the paper's plan PQ).
    """

    query: TypingUnion[str, object]
    method_call: ExpressionLike
    name: str = ""

    kind = "query-method-equivalence"
    tag = "semantic:query-method"

    def __post_init__(self) -> None:
        self.method_call = _as_expression(self.method_call)
        if not self.name:
            self.name = f"query-method[{self.method_call}]"

    def derive_rules(self, schema: Schema) -> RuleSet:
        rules = RuleSet(self.name)
        query = self.query
        if isinstance(query, str):
            query = parse_query(query)
        # Free variables of the query that are not range variables are the
        # equivalence's parameters; pre-bind them so the analyzer accepts the
        # parametrized query.
        range_variables = {decl.variable for decl in query.ranges}
        parameter_names = set()
        if query.where is not None:
            parameter_names = {
                name for name in free_vars(query.where)
                if name not in range_variables and not schema.has_class(name)}
        analyzed = analyze_query(query, schema,
                                 parameters={name: ANY for name in parameter_names})
        ranges = analyzed.query.ranges
        if len(ranges) != 1 or not ranges[0].is_class_range():
            raise RuleDerivationError(
                f"{self.kind} {self.name!r}: the query must range over a "
                "single class extension")
        if analyzed.query.where is None:
            raise RuleDerivationError(
                f"{self.kind} {self.name!r}: the query must have a WHERE clause")
        range_variable = ranges[0].variable
        access = analyzed.query.access
        if access != Var(range_variable):
            raise RuleDerivationError(
                f"{self.kind} {self.name!r}: the query must return the range "
                f"variable itself (ACCESS {range_variable})")
        class_name = ranges[0].source.class_name

        method_call = resolve_class_references(self.method_call, schema, set())
        unbound = (free_vars(method_call)
                   - free_vars(analyzed.query.where) - {range_variable})
        if unbound:
            raise RuleDerivationError(
                f"{self.kind} {self.name!r}: method-call parameter(s) "
                f"{', '.join(sorted(unbound))} do not occur in the query")
        parameters = ((free_vars(analyzed.query.where)
                       | free_vars(method_call)) - {range_variable})
        variables = {name: None for name in parameters | {range_variable}}
        condition_pattern = pattern_from_template(analyzed.query.where, variables)
        method_template = pattern_from_template(method_call, variables)

        def _match_select(plan: LogicalOperator, context: RuleContext
                          ) -> Optional[tuple[str, Expression]]:
            """Match ``select<W>(P)``; return (ref, instantiated method call)."""
            if not isinstance(plan, Select):
                return None
            binding = match_expression(condition_pattern, plan.condition)
            if binding is None:
                return None
            bound_receiver = binding.get(range_variable)
            if not isinstance(bound_receiver, Var):
                return None
            ref = bound_receiver.name
            if ref not in plan.input.refs():
                return None
            if not context.conforms_to_class(plan.input, ref, class_name):
                return None
            method_call = instantiate(method_template, binding)
            if free_vars(method_call):
                return None  # parameters must be reference-free
            return ref, method_call

        def transform(plan: LogicalOperator, context: RuleContext
                      ) -> Optional[Iterable[LogicalOperator]]:
            matched = _match_select(plan, context)
            if matched is None:
                return None
            ref, method_call = matched
            if isinstance(plan, Select) and isinstance(plan.input, Get) \
                    and plan.input.ref == ref:
                return [ExpressionSource(ref, method_call)]
            return None

        def implement(plan: LogicalOperator,
                      children: tuple[PhysicalOperator, ...],
                      context: RuleContext
                      ) -> Optional[Iterable[PhysicalOperator]]:
            matched = _match_select(plan, context)
            if matched is None:
                return None
            ref, method_call = matched
            alternatives: list[PhysicalOperator] = [
                SetProbeFilter(ref, method_call, children[0])]
            if isinstance(plan, Select) and isinstance(plan.input, Get) \
                    and plan.input.ref == ref:
                alternatives.append(ExpressionSetScan(ref, method_call))
            return alternatives

        rules.add(CallableTransformationRule(
            name=f"{self.name} [logical]",
            description=f"{self.kind}: σ over {class_name} == {self.method_call}",
            tags=frozenset({"semantic", self.tag}),
            function=transform))
        rules.add(CallableImplementationRule(
            name=f"{self.name} [impl]",
            description=f"{self.kind}: σ over {class_name} == {self.method_call}",
            tags=frozenset({"semantic", self.tag}),
            function=implement))
        return rules


def equivalences_from_inverse_link(link: InverseLink) -> list[ConditionEquivalence]:
    """Derive the two condition equivalences implied by an inverse link.

    For ``Section.document`` ↔ ``Document.sections`` the forward direction is
    the paper's E3-shaped rule
    ``s.document IS-IN D ⇔ s IS-IN D.sections`` with ``D`` a set of
    documents; the reverse direction (from the many-side) is the E4-shaped
    rule.  Only single-valued source sides generate a rule (the value of a
    set-valued side is not a single object, so the left-hand condition would
    not type-check).
    """
    equivalences: list[ConditionEquivalence] = []
    for direction in (link, link.reversed()):
        if direction.source_cardinality != "one":
            continue
        variable = "x"
        collection = "Ys"
        left = BinaryOp(
            "IS-IN",
            PropertyAccess(Var(variable), direction.source_property),
            Var(collection))
        right = BinaryOp(
            "IS-IN",
            Var(variable),
            PropertyAccess(Var(collection), direction.target_property))
        equivalences.append(ConditionEquivalence(
            class_name=direction.source_class,
            variable=variable,
            left=left,
            right=right,
            name=(f"inverse-link[{direction.source_class}."
                  f"{direction.source_property}]"),
            parameter_classes={collection: direction.target_class}))
    return equivalences


class SchemaKnowledge:
    """The collection of semantic knowledge attached to one schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.expression_equivalences: list[ExpressionEquivalence] = []
        self.condition_equivalences: list[ConditionEquivalence] = []
        self.condition_implications: list[ConditionImplication] = []
        self.query_method_equivalences: list[QueryMethodEquivalence] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, item) -> "SchemaKnowledge":
        """Register one piece of knowledge (dispatches on its type)."""
        if isinstance(item, ConditionEquivalence):
            self.condition_equivalences.append(item)
        elif isinstance(item, ExpressionEquivalence):
            self.expression_equivalences.append(item)
        elif isinstance(item, ConditionImplication):
            self.condition_implications.append(item)
        elif isinstance(item, QueryMethodEquivalence):
            self.query_method_equivalences.append(item)
        else:
            raise TypeError(f"not a knowledge item: {item!r}")
        return self

    def add_all(self, items: Sequence) -> "SchemaKnowledge":
        for item in items:
            self.add(item)
        return self

    def derive_from_inverse_links(self) -> "SchemaKnowledge":
        """Add condition equivalences for every declared inverse link."""
        for link in self.schema.inverse_links:
            self.add_all(equivalences_from_inverse_link(link))
        return self

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def items(self) -> list:
        return [*self.expression_equivalences, *self.condition_equivalences,
                *self.condition_implications, *self.query_method_equivalences]

    def derive_rule_set(self) -> RuleSet:
        """Compile all knowledge into one schema-specific rule set."""
        rules = RuleSet(f"semantic[{self.schema.name}]")
        for item in self.items():
            rules.extend(item.derive_rules(self.schema))
        return rules

    def __len__(self) -> int:
        return len(self.items())

    def describe(self) -> str:
        lines = [f"Semantic knowledge for schema {self.schema.name!r}:"]
        for item in self.items():
            lines.append(f"  [{item.kind}] {item.name}")
        return "\n".join(lines)
