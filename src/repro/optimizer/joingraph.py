"""Join-graph extraction and cost-based join-order enumeration.

The rule search in :mod:`repro.optimizer.search` explores access paths and
join *strategies*, but its transformation closure has no join-associativity
rule — joins execute in parse order.  This module closes that gap the
classical way: it extracts the **join graph** from a normalized logical plan
(one node per class-extension range, one edge per two-reference conjunct),
estimates per-relation cardinalities and per-edge selectivities from the
statistics catalog (NDV containment with most-common-value skew correction,
plus any feedback corrections — see :meth:`CostModel.join_selectivity`),
enumerates a join order — Selinger-style dynamic programming over left-deep
trees for up to :data:`DP_RELATION_LIMIT` relations, greedy smallest-result
beyond — and emits the chosen order as a rebuilt logical plan.  The search
then costs that *seeded* plan alongside the parse-order closure, so the
enumerator only ever adds alternatives: if its order is not actually
cheaper under the full cost model, the original plan wins unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional

from repro.algebra.expressions import (
    BinaryOp,
    Const,
    Expression,
    PropertyAccess,
    Var,
    conjuncts,
    free_vars,
    make_conjunction,
)
from repro.algebra.operators import (
    Flat,
    Get,
    Join,
    LogicalOperator,
    Map,
    Project,
    Select,
)
from repro.optimizer.cost import CostModel
from repro.physical.plans import ClassScan

__all__ = ["DP_RELATION_LIMIT", "JoinRelation", "JoinEdge", "JoinOrder",
           "enumerate_join_order"]

#: Selinger DP covers up to this many relations (left-deep subsets); larger
#: graphs fall back to the greedy smallest-intermediate-result heuristic
DP_RELATION_LIMIT = 6


@dataclass
class JoinRelation:
    """One base relation of the join graph: a class-extension range with
    the single-reference predicates pushed down onto it."""

    ref: str
    class_name: str
    get: Get
    predicates: list[Expression] = field(default_factory=list)
    #: estimated rows after the local predicates
    cardinality: float = 1.0

    def plan(self) -> LogicalOperator:
        condition = make_conjunction(self.predicates)
        return self.get if condition is None else Select(condition, self.get)


@dataclass
class JoinEdge:
    """One two-reference conjunct connecting two relations."""

    left_ref: str
    right_ref: str
    condition: Expression
    selectivity: float
    #: equi-join key columns when the conjunct is a simple equality between
    #: scanned columns — what makes hash / index-nested-loop applicable
    equi: bool = False

    def connects(self, refs: frozenset) -> Optional[str]:
        """The endpoint outside *refs* when exactly one endpoint is inside."""
        inside = (self.left_ref in refs) + (self.right_ref in refs)
        if inside != 1:
            return None
        return self.right_ref if self.left_ref in refs else self.left_ref


@dataclass
class JoinOrder:
    """The enumerator's verdict for one query."""

    order: tuple[str, ...]
    seeded_plan: LogicalOperator
    estimated_cardinality: float
    estimated_cost: float
    #: per-join-step strategy hints (informational; the rule search makes
    #: the final strategy choice by costing the physical alternatives)
    strategies: tuple[str, ...]
    #: True when the Selinger DP ran; False for the greedy fallback
    used_dp: bool

    def describe(self) -> str:
        steps = " ⋈ ".join(self.order)
        mode = "dp" if self.used_dp else "greedy"
        return f"{steps} [{mode}]"


def enumerate_join_order(plan: LogicalOperator, cost_model: CostModel,
                         dp_limit: int = DP_RELATION_LIMIT
                         ) -> Optional[JoinOrder]:
    """Enumerate a join order for *plan*, or None when the plan has no
    reorderable join region of at least three class extensions (two-way
    joins are already covered by the join-commutativity rule)."""
    extracted = _extract(plan)
    if extracted is None:
        return None
    rebuild, relations, pool = extracted
    if len(relations) < 3:
        return None

    relation_refs = {relation.ref for relation in relations}
    by_ref = {relation.ref: relation for relation in relations}
    edges: list[JoinEdge] = []
    residual: list[Expression] = []
    for conjunct in pool:
        refs = free_vars(conjunct)
        if not refs <= relation_refs:
            return None  # references something the join region doesn't bind
        if len(refs) == 1:
            (ref,) = tuple(refs)
            by_ref[ref].predicates.append(conjunct)
        elif len(refs) == 2:
            edges.append(_make_edge(conjunct, refs, by_ref, cost_model))
        else:
            residual.append(conjunct)

    for relation in relations:
        base = cost_model.extension_size(relation.class_name)
        selectivity = 1.0
        # A stand-in scan lets condition_selectivity resolve ref→class for
        # the relation's local predicates against the statistics catalog.
        source = ClassScan(relation.ref, relation.class_name)
        for predicate in relation.predicates:
            selectivity *= cost_model.condition_selectivity(
                predicate, base, source)
        relation.cardinality = max(base * selectivity, 0.01)

    if len(relations) <= dp_limit:
        order, cost, cardinality = _selinger_dp(relations, edges)
        used_dp = True
    else:
        order, cost, cardinality = _greedy(relations, edges)
        used_dp = False

    seeded = rebuild(_build_join_tree(order, by_ref, edges, residual))
    strategies = _strategies(order, by_ref, edges, cost_model)
    return JoinOrder(order=tuple(order), seeded_plan=seeded,
                     estimated_cardinality=cardinality, estimated_cost=cost,
                     strategies=strategies, used_dp=used_dp)


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def _extract(plan: LogicalOperator):
    """Split *plan* into (rebuild-wrappers, relations, conjunct pool).

    Wrappers (Project/Map/Flat above the topmost join) are order-neutral:
    they consume the join region's full reference set, which reordering
    preserves.  Inside the join region only Join, Select and Get may
    appear — a Flat or ExpressionSource leaf means a dependent range whose
    order is constrained, so the enumerator stands down.
    """
    wrappers: list[LogicalOperator] = []
    node = plan
    while isinstance(node, (Project, Map, Flat)):
        wrappers.append(node)
        node = node.input

    relations: list[JoinRelation] = []
    pool: list[Expression] = []

    def collect(region: LogicalOperator) -> bool:
        if isinstance(region, Join):
            pool.extend(conjuncts(region.condition))
            return collect(region.left) and collect(region.right)
        if isinstance(region, Select):
            pool.extend(conjuncts(region.condition))
            return collect(region.input)
        if isinstance(region, Get):
            relations.append(JoinRelation(ref=region.ref,
                                          class_name=region.class_name,
                                          get=region))
            return True
        return False

    if not collect(node):
        return None
    if len({relation.ref for relation in relations}) != len(relations):
        return None

    def rebuild(core: LogicalOperator) -> LogicalOperator:
        for wrapper in reversed(wrappers):
            core = wrapper.with_inputs((core,))
        return core

    return rebuild, relations, pool


def _key_identity(key: Expression, by_ref: dict[str, JoinRelation]
                  ) -> Optional[tuple[str, Optional[str]]]:
    """(class, property-or-None) of an equi-join key over a base relation."""
    if isinstance(key, Var) and key.name in by_ref:
        return (by_ref[key.name].class_name, None)
    if (isinstance(key, PropertyAccess) and isinstance(key.base, Var)
            and key.base.name in by_ref):
        return (by_ref[key.base.name].class_name, key.prop)
    return None


def _make_edge(conjunct: Expression, refs: set[str],
               by_ref: dict[str, JoinRelation],
               cost_model: CostModel) -> JoinEdge:
    left_ref, right_ref = sorted(refs)
    selectivity = cost_model.DEFAULT_SELECTIVITY
    equi = False
    if isinstance(conjunct, BinaryOp) and conjunct.op == "==":
        first = free_vars(conjunct.left)
        second = free_vars(conjunct.right)
        if len(first) == 1 and len(second) == 1 and first != second:
            left_identity = _key_identity(conjunct.left, by_ref)
            right_identity = _key_identity(conjunct.right, by_ref)
            equi = True
            selectivity = cost_model.join_selectivity(
                left_identity, right_identity,
                cost_model.extension_size(by_ref[min(refs)].class_name),
                cost_model.extension_size(by_ref[max(refs)].class_name))
    return JoinEdge(left_ref=left_ref, right_ref=right_ref,
                    condition=conjunct, selectivity=selectivity, equi=equi)


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
def _join_selectivity(joined: frozenset, ref: str,
                      edges: list[JoinEdge]) -> tuple[float, bool]:
    """(combined selectivity, connected?) of joining *ref* to *joined*."""
    selectivity = 1.0
    connected = False
    for edge in edges:
        other = edge.connects(joined)
        if other == ref:
            selectivity *= edge.selectivity
            connected = True
    return selectivity, connected


def _selinger_dp(relations: list[JoinRelation], edges: list[JoinEdge]
                 ) -> tuple[list[str], float, float]:
    """Left-deep dynamic programming: best (cost, cardinality, order) per
    relation subset, expanding connected relations before cross products.

    The cost metric is the classical sum of intermediate result sizes
    (`C_out`), which is what join ordering actually controls — per-strategy
    constants are left to the physical cost model that ranks the seeded
    plan against the parse order afterwards.
    """
    best: dict[frozenset, tuple[float, float, list[str]]] = {}
    for relation in relations:
        best[frozenset((relation.ref,))] = (
            relation.cardinality, relation.cardinality, [relation.ref])
    by_ref = {relation.ref: relation for relation in relations}

    for size in range(2, len(relations) + 1):
        for combo in combinations(relations, size):
            subset = frozenset(relation.ref for relation in combo)
            candidates: list[tuple[float, float, list[str], bool]] = []
            for ref in subset:
                rest = subset - {ref}
                entry = best.get(rest)
                if entry is None:
                    continue
                cost, cardinality, order = entry
                selectivity, connected = _join_selectivity(rest, ref, edges)
                out = cardinality * by_ref[ref].cardinality * selectivity
                candidates.append((cost + out, out, order + [ref], connected))
            if not candidates:
                continue
            connected_only = [c for c in candidates if c[3]]
            pool = connected_only or candidates
            cost, out, order, _ = min(pool, key=lambda c: (c[0], c[2]))
            best[subset] = (cost, out, order)

    cost, cardinality, order = best[frozenset(by_ref)]
    return order, cost, cardinality


def _greedy(relations: list[JoinRelation], edges: list[JoinEdge]
            ) -> tuple[list[str], float, float]:
    """Smallest-intermediate-result greedy ordering for large join graphs."""
    by_ref = {relation.ref: relation for relation in relations}
    order = [min(relations, key=lambda r: (r.cardinality, r.ref)).ref]
    joined = frozenset(order)
    cardinality = by_ref[order[0]].cardinality
    cost = cardinality
    while len(order) < len(relations):
        candidates = []
        for ref in sorted(set(by_ref) - joined):
            selectivity, connected = _join_selectivity(joined, ref, edges)
            out = cardinality * by_ref[ref].cardinality * selectivity
            candidates.append((not connected, out, ref))
        _, out, ref = min(candidates)
        order.append(ref)
        joined = joined | {ref}
        cardinality = out
        cost += out
    return order, cost, cardinality


# ----------------------------------------------------------------------
# plan emission
# ----------------------------------------------------------------------
def _build_join_tree(order: list[str], by_ref: dict[str, JoinRelation],
                     edges: list[JoinEdge], residual: list[Expression]
                     ) -> LogicalOperator:
    """Rebuild a left-deep join chain in *order*, attaching every pooled
    conjunct at the earliest join where all its references are bound."""
    pending: list[Expression] = [edge.condition for edge in edges] + residual
    current = by_ref[order[0]].plan()
    available = {order[0]}
    for ref in order[1:]:
        available.add(ref)
        ready = [c for c in pending if free_vars(c) <= available]
        pending = [c for c in pending if not free_vars(c) <= available]
        condition = make_conjunction(ready)
        current = Join(condition if condition is not None else Const(True),
                       current, by_ref[ref].plan())
    return current


def _strategies(order: tuple[str, ...] | list[str],
                by_ref: dict[str, JoinRelation], edges: list[JoinEdge],
                cost_model: CostModel) -> tuple[str, ...]:
    """Per-step strategy hints for EXPLAIN: which physical join the rule
    search is expected to pick for each edge of the chosen order."""
    database = cost_model.database
    hints: list[str] = []
    joined: frozenset = frozenset((order[0],))
    for ref in order[1:]:
        relation = by_ref[ref]
        step = [edge for edge in edges if edge.connects(joined) == ref]
        equi = [edge for edge in step if edge.equi]
        if not step:
            hint = "cross"
        elif not equi:
            hint = "nested-loop"
        else:
            hint = "hash"
            if database is not None and not relation.predicates:
                for edge in equi:
                    inner_key = (edge.condition.right
                                 if edge.right_ref == ref
                                 else edge.condition.left)
                    identity = _key_identity(inner_key, by_ref)
                    if (identity is not None and identity[1] is not None
                            and identity[0] == relation.class_name
                            and database.indexes.get(identity[0],
                                                     identity[1]) is not None):
                        hint = "index-nested-loop"
                        break
        hints.append(f"{ref}:{hint}")
        joined = joined | {ref}
    return tuple(hints)
