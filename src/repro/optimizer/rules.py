"""Rule framework for the rule-based optimizer.

Following the Volcano optimizer generator (and Section 4.2 of the paper), two
kinds of rules exist:

* **transformation rules** reorder/rewrite logical algebra expressions and
  may in principle be applied in both directions — our rules generate the
  alternatives of one application step and the search keeps every distinct
  plan, which subsumes bidirectionality;
* **implementation rules** map a logical operator (whose inputs have already
  been implemented) onto a physical algorithm and are applicable in one
  direction only.

Rules carry *tags* so that whole groups can be switched off; the ablation
experiment (EXP-3) disables each semantic-knowledge kind through its tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.algebra.expressions import Expression
from repro.algebra.operators import LogicalOperator
from repro.datamodel.database import Database
from repro.datamodel.schema import Schema
from repro.datamodel.types import VMLType
from repro.optimizer.typing_support import (
    expression_class,
    infer_ref_types,
    ref_class,
)
from repro.physical.plans import PhysicalOperator

__all__ = [
    "RuleContext",
    "Rule",
    "TransformationRule",
    "ImplementationRule",
    "CallableTransformationRule",
    "CallableImplementationRule",
    "RuleSet",
]


class RuleContext:
    """Shared services available to rules during matching and rewriting.

    ``parallelism`` is the session/service degree-of-parallelism knob; the
    parallel implementation rules only fire when it is at least 2, and embed
    it as the ``degree`` of the parallel operators they produce.
    """

    def __init__(self, schema: Schema, database: Optional[Database] = None,
                 parallelism: int = 1):
        self.schema = schema
        self.database = database
        self.parallelism = max(parallelism, 1)
        self._ref_type_cache: dict[LogicalOperator, dict[str, VMLType]] = {}

    def ref_types(self, plan: LogicalOperator) -> dict[str, VMLType]:
        """Types of the output references of *plan* (cached)."""
        cached = self._ref_type_cache.get(plan)
        if cached is None:
            cached = infer_ref_types(plan, self.schema)
            self._ref_type_cache[plan] = cached
        return cached

    def ref_class(self, plan: LogicalOperator, ref: str) -> Optional[str]:
        """Class a reference of *plan* ranges over, or None."""
        return ref_class(plan, ref, self.schema)

    def expression_class(self, expression: Expression,
                         plan: LogicalOperator) -> Optional[str]:
        """Class of the objects *expression* denotes, typed in the
        environment given by *plan*'s references."""
        return expression_class(expression, self.ref_types(plan), self.schema)

    def conforms_to_class(self, plan: LogicalOperator, ref: str,
                          class_name: str) -> bool:
        """True when reference *ref* of *plan* ranges over *class_name* or a
        subclass of it."""
        actual = self.ref_class(plan, ref)
        if actual is None:
            return False
        if actual == class_name:
            return True
        current = actual
        while current is not None:
            class_def = self.schema.get_class(current)
            if class_def.superclass == class_name:
                return True
            current = class_def.superclass
        return False


@dataclass
class Rule:
    """Common rule metadata."""

    name: str
    description: str = ""
    tags: frozenset[str] = frozenset()
    #: rules marked apply-once guard themselves against re-application; the
    #: flag documents the paper's "⇒!" marker and is used in traces
    apply_once: bool = False

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


@dataclass
class TransformationRule(Rule):
    """A logical-to-logical rewrite rule."""

    def apply(self, plan: LogicalOperator,
              context: RuleContext) -> Iterable[LogicalOperator]:
        """Return alternative operators equivalent to *plan* (possibly none).

        The returned operators must have the same reference set as *plan*.
        """
        raise NotImplementedError


@dataclass
class ImplementationRule(Rule):
    """A logical-to-physical mapping rule."""

    def implement(self, plan: LogicalOperator,
                  child_plans: tuple[PhysicalOperator, ...],
                  context: RuleContext) -> Iterable[PhysicalOperator]:
        """Return physical alternatives for *plan* given already implemented
        inputs (one physical plan per logical input, in order)."""
        raise NotImplementedError


@dataclass
class CallableTransformationRule(TransformationRule):
    """Transformation rule defined by a plain function.

    The function receives ``(plan, context)`` and returns an iterable of
    alternatives (or ``None``).
    """

    function: Optional[Callable[[LogicalOperator, RuleContext],
                                Optional[Iterable[LogicalOperator]]]] = None

    def apply(self, plan: LogicalOperator,
              context: RuleContext) -> Iterable[LogicalOperator]:
        if self.function is None:
            return ()
        result = self.function(plan, context)
        return () if result is None else list(result)


@dataclass
class CallableImplementationRule(ImplementationRule):
    """Implementation rule defined by a plain function.

    The function receives ``(plan, child_plans, context)`` and returns an
    iterable of physical alternatives (or ``None``).
    """

    function: Optional[Callable[
        [LogicalOperator, tuple[PhysicalOperator, ...], RuleContext],
        Optional[Iterable[PhysicalOperator]]]] = None

    def implement(self, plan: LogicalOperator,
                  child_plans: tuple[PhysicalOperator, ...],
                  context: RuleContext) -> Iterable[PhysicalOperator]:
        if self.function is None:
            return ()
        result = self.function(plan, child_plans, context)
        return () if result is None else list(result)


class RuleSet:
    """A named collection of transformation and implementation rules."""

    def __init__(self, name: str = "rules",
                 transformations: Sequence[TransformationRule] = (),
                 implementations: Sequence[ImplementationRule] = ()):
        self.name = name
        self.transformations: list[TransformationRule] = list(transformations)
        self.implementations: list[ImplementationRule] = list(implementations)

    def add(self, rule: Rule) -> Rule:
        if isinstance(rule, TransformationRule):
            self.transformations.append(rule)
        elif isinstance(rule, ImplementationRule):
            self.implementations.append(rule)
        else:
            raise TypeError(f"not a rule: {rule!r}")
        return rule

    def extend(self, other: "RuleSet") -> "RuleSet":
        self.transformations.extend(other.transformations)
        self.implementations.extend(other.implementations)
        return self

    def merged_with(self, other: "RuleSet", name: str = "merged") -> "RuleSet":
        return RuleSet(name,
                       transformations=[*self.transformations, *other.transformations],
                       implementations=[*self.implementations, *other.implementations])

    def without_tag(self, tag: str) -> "RuleSet":
        """A copy of the rule set with every rule carrying *tag* removed
        (used by the ablation experiments)."""
        return RuleSet(
            f"{self.name}-without-{tag}",
            transformations=[r for r in self.transformations if not r.has_tag(tag)],
            implementations=[r for r in self.implementations if not r.has_tag(tag)])

    def only_tags(self, *tags: str) -> "RuleSet":
        """A copy keeping only rules carrying at least one of *tags*."""
        wanted = set(tags)
        return RuleSet(
            f"{self.name}-only-{'-'.join(sorted(wanted))}",
            transformations=[r for r in self.transformations if set(r.tags) & wanted],
            implementations=[r for r in self.implementations if set(r.tags) & wanted])

    def rule_names(self) -> list[str]:
        return ([rule.name for rule in self.transformations]
                + [rule.name for rule in self.implementations])

    def __len__(self) -> int:
        return len(self.transformations) + len(self.implementations)

    def __str__(self) -> str:
        return (f"RuleSet({self.name!r}, {len(self.transformations)} "
                f"transformations, {len(self.implementations)} implementations)")
