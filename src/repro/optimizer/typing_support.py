"""Reference typing for logical algebra plans.

Pattern constraints (``?A<?a1, Paragraph>`` — "an algebraic expression
producing instances of class Paragraph under reference ?a1") and several
implementation rules need to know which class a reference ranges over.  This
module infers a type for every reference of a logical operator tree from the
schema, reusing the VQL expression type inference.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.algebra.expressions import Expression
from repro.algebra.operators import (
    Diff,
    ExpressionSource,
    Flat,
    Get,
    Join,
    LogicalOperator,
    Map,
    NaturalJoin,
    Project,
    Select,
    Union,
)
from repro.algebra import restricted as r
from repro.datamodel.schema import Schema
from repro.datamodel.types import ANY, ObjectType, SetType, VMLType
from repro.errors import ReproError
from repro.vql.analyzer import class_of_type, infer_expression_type

__all__ = ["infer_ref_types", "ref_class", "expression_class", "element_type"]


def element_type(vml_type: VMLType) -> VMLType:
    """The member type of a set type; other types pass through."""
    if isinstance(vml_type, SetType):
        return vml_type.element
    return vml_type


def infer_ref_types(plan: LogicalOperator, schema: Schema) -> dict[str, VMLType]:
    """Infer the VML type of every output reference of *plan*.

    Inference is best-effort: references whose type cannot be determined map
    to :data:`~repro.datamodel.types.ANY`, they never cause an error.
    """
    if isinstance(plan, Get):
        return {plan.ref: ObjectType(plan.class_name)}
    if isinstance(plan, ExpressionSource):
        return {plan.ref: _safe_element(plan.expression, {}, schema)}
    if isinstance(plan, (Select, r.SelectCmp)):
        return infer_ref_types(plan.inputs()[0], schema)
    if isinstance(plan, Project):
        inner = infer_ref_types(plan.input, schema)
        return {ref: inner.get(ref, ANY) for ref in plan.kept}
    if isinstance(plan, (Join, NaturalJoin, Union, Diff, r.CrossProduct, r.JoinCmp)):
        types: dict[str, VMLType] = {}
        for child in plan.inputs():
            types.update(infer_ref_types(child, schema))
        return types
    if isinstance(plan, Map):
        types = infer_ref_types(plan.input, schema)
        types[plan.ref] = _safe_infer(plan.expression, types, schema)
        return types
    if isinstance(plan, Flat):
        types = infer_ref_types(plan.input, schema)
        types[plan.ref] = _safe_element(plan.expression, types, schema)
        return types
    # Restricted-algebra map/flat operators: resolve what we easily can and
    # default the rest to ANY.
    if isinstance(plan, r.MapProperty):
        types = infer_ref_types(plan.input, schema)
        types[plan.new_ref] = _property_type(types.get(plan.src_ref, ANY),
                                             plan.prop, schema)
        return types
    if isinstance(plan, r.FlatProperty):
        types = infer_ref_types(plan.input, schema)
        types[plan.new_ref] = element_type(
            _property_type(types.get(plan.src_ref, ANY), plan.prop, schema))
        return types
    if isinstance(plan, (r.MapMethod, r.FlatMethod, r.MapClassMethod,
                         r.MapOperator, r.MapConst, r.MapExtent, r.FlatRef)):
        types = infer_ref_types(plan.inputs()[0], schema)
        new_ref = getattr(plan, "new_ref", None)
        if new_ref is not None:
            types.setdefault(new_ref, ANY)
        return types
    # Unknown operator kind: type every announced reference as ANY.
    return {ref: ANY for ref in plan.refs()}


def ref_class(plan: LogicalOperator, ref: str,
              schema: Schema) -> Optional[str]:
    """The class a reference ranges over, or None when not object-typed."""
    types = infer_ref_types(plan, schema)
    return class_of_type(types.get(ref, ANY))


def expression_class(expression: Expression, env: Mapping[str, VMLType],
                     schema: Schema) -> Optional[str]:
    """The class of the objects an expression evaluates to (element class
    for set-valued expressions), or None."""
    return class_of_type(_safe_infer(expression, env, schema))


def _safe_infer(expression: Expression, env: Mapping[str, VMLType],
                schema: Schema) -> VMLType:
    try:
        return infer_expression_type(expression, dict(env), schema)
    except ReproError:
        return ANY


def _safe_element(expression: Expression, env: Mapping[str, VMLType],
                  schema: Schema) -> VMLType:
    return element_type(_safe_infer(expression, env, schema))


def _property_type(base: VMLType, prop: str, schema: Schema) -> VMLType:
    class_name = class_of_type(base)
    if class_name is None:
        return ANY
    try:
        return schema.resolve_property(class_name, prop).vml_type
    except ReproError:
        return ANY
