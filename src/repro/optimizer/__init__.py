"""Rule- and cost-based query optimizer (Volcano-style) with semantic rules
derived from schema-specific knowledge about methods."""

from repro.optimizer.builtin_rules import (
    standard_implementations,
    standard_rules,
    standard_transformations,
)
from repro.optimizer.cost import CostEstimate, CostModel
from repro.optimizer.generator import OptimizerGenerator
from repro.optimizer.knowledge import (
    ConditionEquivalence,
    ConditionImplication,
    ExpressionEquivalence,
    QueryMethodEquivalence,
    SchemaKnowledge,
    equivalences_from_inverse_link,
)
from repro.optimizer.patterns import (
    Binding,
    find_matches,
    instantiate,
    match_expression,
    pattern_from_template,
    rewrite_matches,
)
from repro.optimizer.rules import (
    CallableImplementationRule,
    CallableTransformationRule,
    ImplementationRule,
    Rule,
    RuleContext,
    RuleSet,
    TransformationRule,
)
from repro.optimizer.search import OptimizationResult, Optimizer, OptimizerOptions
from repro.optimizer.statistics import OptimizerStatistics
from repro.optimizer.trace import OptimizationTrace, TraceEvent
from repro.optimizer.typing_support import infer_ref_types, ref_class

__all__ = [
    "standard_rules", "standard_transformations", "standard_implementations",
    "CostEstimate", "CostModel",
    "OptimizerGenerator",
    "ExpressionEquivalence", "ConditionEquivalence", "ConditionImplication",
    "QueryMethodEquivalence", "SchemaKnowledge", "equivalences_from_inverse_link",
    "Binding", "match_expression", "find_matches", "instantiate",
    "rewrite_matches", "pattern_from_template",
    "Rule", "TransformationRule", "ImplementationRule",
    "CallableTransformationRule", "CallableImplementationRule",
    "RuleContext", "RuleSet",
    "Optimizer", "OptimizerOptions", "OptimizationResult",
    "OptimizerStatistics",
    "OptimizationTrace", "TraceEvent",
    "infer_ref_types", "ref_class",
]
