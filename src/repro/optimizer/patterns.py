"""Pattern matching on parameter expressions.

Semantic knowledge is written as pairs of expressions over a bound variable
(``x IN C: expr1(x) == expr2(x)``).  To turn such a pair into an optimizer
rule we need to find occurrences of ``expr1`` — with the bound variable (and
any parameter variables) acting as pattern variables — inside the parameter
expressions of algebra operators, and rewrite them to ``expr2`` under the
same binding.  This module provides that matcher.

Unlike the Volcano rule matcher, which cannot inspect operator arguments
(Section 6.1), a Python implementation can match expression structure
directly; the restricted algebra remains available to demonstrate the
paper's workaround, but the production rule path uses this matcher on the
general algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    PatternVar,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
    walk,
)

__all__ = [
    "Binding",
    "match_expression",
    "find_matches",
    "instantiate",
    "rewrite_matches",
    "pattern_from_template",
]

#: a binding of pattern-variable names to matched sub-expressions
Binding = dict[str, Expression]


def match_expression(pattern: Expression, expression: Expression,
                     binding: Optional[Binding] = None) -> Optional[Binding]:
    """Match *expression* against *pattern*.

    Pattern variables (:class:`PatternVar`) bind arbitrary sub-expressions;
    a variable occurring twice must bind to structurally equal expressions.
    Returns the (possibly extended) binding, or ``None`` when the match
    fails.  The input binding is never mutated.
    """
    binding = dict(binding) if binding else {}
    result = _match(pattern, expression, binding)
    return result


def _match(pattern: Expression, expression: Expression,
           binding: Binding) -> Optional[Binding]:
    if isinstance(pattern, PatternVar):
        if pattern.restrict is not None and not pattern.restrict(expression):
            return None
        bound = binding.get(pattern.name)
        if bound is not None:
            return binding if bound == expression else None
        binding[pattern.name] = expression
        return binding

    if type(pattern) is not type(expression):
        return None

    if isinstance(pattern, Var):
        return binding if pattern.name == expression.name else None
    if isinstance(pattern, Const):
        return binding if pattern.value == expression.value else None
    if isinstance(pattern, ClassExtent):
        return binding if pattern.class_name == expression.class_name else None
    if isinstance(pattern, PropertyAccess):
        if pattern.prop != expression.prop:
            return None
        return _match(pattern.base, expression.base, binding)
    if isinstance(pattern, MethodCall):
        if pattern.method != expression.method or len(pattern.args) != len(expression.args):
            return None
        result = _match(pattern.receiver, expression.receiver, binding)
        if result is None:
            return None
        return _match_all(pattern.args, expression.args, result)
    if isinstance(pattern, ClassMethodCall):
        if (pattern.class_name != expression.class_name
                or pattern.method != expression.method
                or len(pattern.args) != len(expression.args)):
            return None
        return _match_all(pattern.args, expression.args, binding)
    if isinstance(pattern, BinaryOp):
        if pattern.op != expression.op:
            return None
        result = _match(pattern.left, expression.left, binding)
        if result is None:
            return None
        return _match(pattern.right, expression.right, result)
    if isinstance(pattern, UnaryOp):
        if pattern.op != expression.op:
            return None
        return _match(pattern.operand, expression.operand, binding)
    if isinstance(pattern, TupleConstructor):
        if len(pattern.fields) != len(expression.fields):
            return None
        for (p_name, p_expr), (e_name, e_expr) in zip(pattern.fields, expression.fields):
            if p_name != e_name:
                return None
            next_binding = _match(p_expr, e_expr, binding)
            if next_binding is None:
                return None
            binding = next_binding
        return binding
    if isinstance(pattern, SetConstructor):
        if len(pattern.elements) != len(expression.elements):
            return None
        return _match_all(pattern.elements, expression.elements, binding)
    return None


def _match_all(patterns: tuple[Expression, ...],
               expressions: tuple[Expression, ...],
               binding: Binding) -> Optional[Binding]:
    current: Optional[Binding] = binding
    for pattern, expression in zip(patterns, expressions):
        current = _match(pattern, expression, current)
        if current is None:
            return None
    return current


def find_matches(pattern: Expression, expression: Expression
                 ) -> Iterator[tuple[Expression, Binding]]:
    """Yield every sub-expression of *expression* that matches *pattern*,
    together with its binding."""
    for node in walk(expression):
        binding = match_expression(pattern, node)
        if binding is not None:
            yield node, binding


def instantiate(template: Expression, binding: Mapping[str, Expression]) -> Expression:
    """Replace pattern variables in *template* by their bound expressions."""
    if isinstance(template, PatternVar):
        try:
            return binding[template.name]
        except KeyError:
            raise KeyError(
                f"pattern variable ?{template.name} is unbound") from None
    children = template.children()
    if not children:
        return template
    new_children = [instantiate(child, binding) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return template
    return template.rebuild(new_children)


def rewrite_matches(expression: Expression, pattern: Expression,
                    template: Expression,
                    guard: Optional[Callable[[Expression, Binding], bool]] = None
                    ) -> list[Expression]:
    """Return all single-occurrence rewrites of *expression*.

    For every sub-expression matching *pattern* (and passing *guard*), one
    result is produced in which exactly that occurrence is replaced by the
    instantiated *template*.  Producing one alternative per occurrence (as
    opposed to rewriting all occurrences at once) matches how the optimizer
    explores alternatives.
    """
    alternatives: list[Expression] = []
    for occurrence, binding in find_matches(pattern, expression):
        if guard is not None and not guard(occurrence, binding):
            continue
        replacement = instantiate(template, binding)
        if replacement == occurrence:
            continue
        alternatives.append(
            _replace_once(expression, occurrence, replacement))
    return alternatives


def _replace_once(expression: Expression, old: Expression,
                  new: Expression) -> Expression:
    """Replace the first structural occurrence of *old* by *new*."""
    replaced = False

    def visit(node: Expression) -> Expression:
        nonlocal replaced
        if not replaced and node == old:
            replaced = True
            return new
        children = node.children()
        if not children:
            return node
        new_children = [visit(child) for child in children]
        if all(n is o for n, o in zip(new_children, children)):
            return node
        return node.rebuild(new_children)

    return visit(expression)


def pattern_from_template(expression: Expression,
                          variables: Mapping[str, Optional[Callable[[Expression], bool]]]
                          ) -> Expression:
    """Turn an ordinary expression into a pattern.

    Every :class:`Var` whose name appears in *variables* becomes a
    :class:`PatternVar`, optionally carrying the supplied restriction.
    This is how the schema designer's ``x IN C: expr1(x) == expr2(x)``
    notation is compiled: the bound variable ``x`` and any free parameters
    become pattern variables.
    """
    if isinstance(expression, Var) and expression.name in variables:
        return PatternVar(expression.name, variables[expression.name])
    children = expression.children()
    if not children:
        return expression
    new_children = [pattern_from_template(child, variables) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expression
    return expression.rebuild(new_children)
