"""Optimization tracing — the "demonstrator" of Section 7.

The prototype described in the paper includes a demonstrator that visualizes
the optimization process by tracing every step.  :class:`OptimizationTrace`
records transformation-rule applications, implementation choices and the
final decision so that the process can be rendered as text (``render()``)
and inspected by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TraceEvent", "OptimizationTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded optimization step."""

    kind: str               # "transformation", "implementation", "decision"
    rule: str
    before: str
    after: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"[{self.kind}] {self.rule}: {self.before}  =>  {self.after}"
        if self.detail:
            text += f"  ({self.detail})"
        return text


@dataclass
class OptimizationTrace:
    """Recorder for the steps of one optimization run."""

    enabled: bool = True
    events: list[TraceEvent] = field(default_factory=list)
    #: hard cap so pathological runs cannot exhaust memory
    max_events: int = 100_000

    def record_transformation(self, rule: str, before: str, after: str,
                              detail: str = "") -> None:
        self._record(TraceEvent("transformation", rule, before, after, detail))

    def record_implementation(self, rule: str, before: str, after: str,
                              detail: str = "") -> None:
        self._record(TraceEvent("implementation", rule, before, after, detail))

    def record_decision(self, before: str, after: str, detail: str = "") -> None:
        self._record(TraceEvent("decision", "final-plan", before, after, detail))

    def _record(self, event: TraceEvent) -> None:
        if not self.enabled or len(self.events) >= self.max_events:
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def transformations(self) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == "transformation"]

    def implementations(self) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == "implementation"]

    def rules_applied(self) -> list[str]:
        """Names of all rules that fired, in order."""
        return [event.rule for event in self.events
                if event.kind in ("transformation", "implementation")]

    def rule_was_applied(self, rule_name: str) -> bool:
        return any(event.rule.startswith(rule_name) for event in self.events)

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the recorded steps."""
        events = self.events if limit is None else self.events[:limit]
        lines = [f"optimization trace ({len(self.events)} events)"]
        lines.extend(f"  {index + 1:4d}. {event}"
                     for index, event in enumerate(events))
        if limit is not None and len(self.events) > limit:
            lines.append(f"  ... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
