"""Rule- and cost-based search.

The search follows the Volcano optimizer generator's discipline
(Section 6.1): exhaustive application of transformation rules on the logical
level, followed by cost-based selection among the physical alternatives
produced by implementation rules, with pruning of implementations that are
already more expensive than the best complete plan found so far.

Two deliberate simplifications with respect to Volcano's memo structure are
documented here and in DESIGN.md:

* logical alternatives are kept as whole operator *trees* (deduplicated
  structurally) rather than as groups of expressions — for the query sizes of
  the paper's setting the closure is small and the result is the same
  exhaustive exploration;
* physical optimization memoizes the best physical plan per logical subtree,
  which recovers the sharing a memo provides across alternatives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.operators import LogicalOperator
from repro.algebra.printer import format_inline
from repro.algebra.visitors import positions_with_nodes, replace_at
from repro.datamodel.database import Database
from repro.datamodel.schema import Schema
from repro.errors import OptimizerError
from repro.optimizer.cost import CostEstimate, CostModel
from repro.optimizer.joingraph import JoinOrder, enumerate_join_order
from repro.optimizer.rules import RuleContext, RuleSet
from repro.optimizer.statistics import OptimizerStatistics
from repro.optimizer.trace import OptimizationTrace
from repro.physical.plans import PhysicalOperator
from repro.telemetry.spans import annotate_current

__all__ = ["OptimizerOptions", "OptimizationResult", "Optimizer"]


@dataclass(frozen=True)
class OptimizerOptions:
    """Knobs bounding the search effort."""

    #: upper bound on the number of distinct logical plans to explore
    max_logical_plans: int = 4000
    #: upper bound on transformation applications (attempted rewrites)
    max_transformations: int = 200_000
    #: record a trace of rule applications
    enable_trace: bool = True
    #: trace also every costed implementation alternative (verbose)
    trace_implementations: bool = False
    #: run the join-graph enumerator and seed its order into the search
    join_seeding: bool = True


@dataclass
class OptimizationResult:
    """The outcome of optimizing one logical plan."""

    best_plan: PhysicalOperator
    best_cost: CostEstimate
    best_logical: LogicalOperator
    original_logical: LogicalOperator
    statistics: OptimizerStatistics
    trace: OptimizationTrace
    logical_alternatives: list[LogicalOperator] = field(default_factory=list)
    #: the join enumerator's verdict (None when the plan has no reorderable
    #: join region of three or more relations)
    join_order: Optional[JoinOrder] = None
    #: feedback corrections present in the statistics catalog at plan time
    stats_corrections: int = 0

    def explain(self) -> str:
        """Multi-line description of the chosen plan and its cost."""
        from repro.algebra.printer import format_tree  # local to avoid cycle noise
        lines = [
            "original logical plan:",
            _indent(format_tree(self.original_logical)),
            "chosen logical form:",
            _indent(format_tree(self.best_logical)),
            "physical plan:",
            _indent(_format_physical(self.best_plan)),
            f"estimated {self.best_cost}",
        ]
        if self.join_order is not None:
            lines.append(f"join order: {self.join_order.describe()}")
            lines.append("join strategies: "
                         + ", ".join(self.join_order.strategies))
        lines.append(f"statistics corrections applied: {self.stats_corrections}")
        lines.append(str(self.statistics))
        return "\n".join(lines)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def _format_physical(plan: PhysicalOperator, depth: int = 0) -> str:
    lines = ["  " * depth + plan.describe()]
    for child in plan.inputs():
        lines.append(_format_physical(child, depth + 1))
    return "\n".join(lines)


class Optimizer:
    """A rule- and cost-based optimizer instance for one schema.

    Instances are produced by the
    :class:`~repro.optimizer.generator.OptimizerGenerator`, which combines
    the predefined rules with the schema-specific rules derived from semantic
    knowledge — the reproduction of "generating an individual optimizer
    module for each schema" (Section 7).
    """

    def __init__(self, schema: Schema, rule_set: RuleSet,
                 database: Optional[Database] = None,
                 cost_model: Optional[CostModel] = None,
                 options: Optional[OptimizerOptions] = None,
                 parallelism: int = 1):
        self.schema = schema
        self.rule_set = rule_set
        self.database = database
        self.cost_model = cost_model or CostModel(schema, database)
        self.options = options or OptimizerOptions()
        #: degree of parallelism offered to the parallel implementation
        #: rules (1 = sequential plans only)
        self.parallelism = max(parallelism, 1)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def optimize(self, logical_plan: LogicalOperator) -> OptimizationResult:
        """Optimize *logical_plan* and return the cheapest physical plan."""
        statistics = OptimizerStatistics()
        trace = OptimizationTrace(enabled=self.options.enable_trace)
        context = RuleContext(self.schema, self.database,
                              parallelism=self.parallelism)
        started = time.perf_counter()

        join_order = self._enumerate_join_order(logical_plan)
        roots = [logical_plan]
        if join_order is not None and join_order.seeded_plan != logical_plan:
            # The seeded order is an additional exploration root: the rule
            # closure and cost comparison treat it exactly like the parse
            # order, so a bad enumeration can never make plans worse.
            roots.append(join_order.seeded_plan)

        alternatives = self._explore(roots, context, statistics, trace)
        statistics.logical_plans_explored = len(alternatives)

        best_plan: Optional[PhysicalOperator] = None
        best_cost: Optional[CostEstimate] = None
        best_logical: Optional[LogicalOperator] = None
        memo: dict[LogicalOperator, tuple[PhysicalOperator, CostEstimate]] = {}

        for alternative in alternatives:
            try:
                plan, cost = self._best_physical(alternative, context, memo,
                                                 statistics, trace)
            except OptimizerError:
                continue
            if best_cost is None or cost.cost < best_cost.cost:
                best_plan, best_cost, best_logical = plan, cost, alternative

        statistics.optimization_seconds = time.perf_counter() - started
        if best_plan is None or best_cost is None or best_logical is None:
            raise OptimizerError(
                "no physical plan could be produced — the rule set lacks "
                "implementation rules for at least one operator")

        trace.record_decision(
            format_inline(logical_plan), format_inline(best_logical),
            detail=f"{best_cost}")
        # Link this optimization into the statement's trace span (when one
        # is active): search-effort statistics plus the OptimizationTrace
        # length, so a span tree points back at the Section-7 demonstrator.
        annotate_current(
            logical_plans=statistics.logical_plans_explored,
            transformations=statistics.transformations_applied,
            physical_plans_costed=statistics.physical_plans_costed,
            trace_events=len(trace),
            best_cost=best_cost.cost)
        return OptimizationResult(
            best_plan=best_plan,
            best_cost=best_cost,
            best_logical=best_logical,
            original_logical=logical_plan,
            statistics=statistics,
            trace=trace,
            logical_alternatives=list(alternatives),
            join_order=join_order,
            stats_corrections=(self.cost_model.catalog.correction_count()
                               if self.cost_model.catalog is not None else 0))

    def _enumerate_join_order(self, logical_plan: LogicalOperator
                              ) -> Optional[JoinOrder]:
        """Run the join-graph enumerator, or None when seeding is disabled,
        no database is attached, or the plan is not reorderable."""
        if not self.options.join_seeding or self.database is None:
            return None
        try:
            return enumerate_join_order(logical_plan, self.cost_model)
        except OptimizerError:
            return None

    # ------------------------------------------------------------------
    # logical exploration
    # ------------------------------------------------------------------
    def _explore(self, roots: list[LogicalOperator], context: RuleContext,
                 statistics: OptimizerStatistics,
                 trace: OptimizationTrace) -> list[LogicalOperator]:
        """Exhaustive closure of the transformation rules over whole plans.

        Rules flagged ``apply_once`` (the paper's ``⇒!`` marker on condition
        implications) are applied at most once along any derivation path:
        the set of already-fired once-rules is tracked per derived plan and
        dropped once the plan has been drained from the worklist (a plan is
        processed at most once, so keeping its entry would only grow the
        dict with every derived plan).
        """
        seen: set[LogicalOperator] = set()
        ordered: list[LogicalOperator] = []
        worklist: list[LogicalOperator] = []
        once_history: dict[LogicalOperator, frozenset[str]] = {}
        for root in roots:
            if root in seen:
                continue
            seen.add(root)
            ordered.append(root)
            worklist.append(root)
            once_history[root] = frozenset()
        options = self.options

        while worklist:
            plan = worklist.pop()
            plan_history = once_history.pop(plan, frozenset())
            for path, node in positions_with_nodes(plan):
                for rule in self.rule_set.transformations:
                    if rule.apply_once and rule.name in plan_history:
                        continue
                    if statistics.transformation_attempts >= options.max_transformations:
                        statistics.exploration_truncated = True
                        return ordered
                    statistics.transformation_attempts += 1
                    try:
                        rewrites = list(rule.apply(node, context))
                    except OptimizerError:
                        rewrites = []
                    for rewritten in rewrites:
                        if rewritten == node:
                            continue
                        new_plan = replace_at(plan, path, rewritten)
                        if new_plan in seen:
                            continue
                        statistics.transformations_applied += 1
                        statistics.record_rule(rule.name)
                        trace.record_transformation(
                            rule.name, format_inline(node), format_inline(rewritten))
                        if len(seen) >= options.max_logical_plans:
                            statistics.exploration_truncated = True
                            return ordered
                        seen.add(new_plan)
                        ordered.append(new_plan)
                        worklist.append(new_plan)
                        new_history = plan_history
                        if rule.apply_once:
                            new_history = plan_history | {rule.name}
                        once_history[new_plan] = new_history
        return ordered

    # ------------------------------------------------------------------
    # physical optimization
    # ------------------------------------------------------------------
    def _best_physical(self, plan: LogicalOperator, context: RuleContext,
                       memo: dict[LogicalOperator,
                                  tuple[PhysicalOperator, CostEstimate]],
                       statistics: OptimizerStatistics,
                       trace: OptimizationTrace
                       ) -> tuple[PhysicalOperator, CostEstimate]:
        """Best physical plan for one logical operator tree (memoized)."""
        cached = memo.get(plan)
        if cached is not None:
            return cached

        child_results = [self._best_physical(child, context, memo,
                                             statistics, trace)
                         for child in plan.inputs()]
        child_plans = tuple(result[0] for result in child_results)

        best: Optional[tuple[PhysicalOperator, CostEstimate]] = None
        for rule in self.rule_set.implementations:
            try:
                alternatives = list(rule.implement(plan, child_plans, context))
            except OptimizerError:
                alternatives = []
            for physical in alternatives:
                statistics.implementation_alternatives += 1
                cost = self.cost_model.estimate(physical)
                statistics.physical_plans_costed += 1
                if self.options.trace_implementations:
                    trace.record_implementation(
                        rule.name, format_inline(plan), physical.describe(),
                        detail=str(cost))
                if best is None or cost.cost < best[1].cost:
                    best = (physical, cost)
                    statistics.record_rule(rule.name)

        if best is None:
            raise OptimizerError(
                f"no implementation rule applies to {plan.describe()}")
        memo[plan] = best
        return best
