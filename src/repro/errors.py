"""Exception hierarchy shared by all subsystems of the reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can distinguish library failures from programming errors in their own
code with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Raised when a schema definition is inconsistent or incomplete.

    Examples: duplicate class names, a property referring to an undefined
    class, or a method registered for a class that does not exist.
    """


class TypeMismatchError(ReproError):
    """Raised when a value does not conform to its declared VML type."""


class ObjectNotFoundError(ReproError):
    """Raised when an OID does not resolve to a stored object."""


class MethodResolutionError(ReproError):
    """Raised when a method cannot be resolved for a receiver class."""


class MethodInvocationError(ReproError):
    """Raised when a resolved method fails during invocation."""


class IndexError_(ReproError):
    """Raised for index-maintenance problems (named with a trailing
    underscore to avoid shadowing the built-in :class:`IndexError`)."""


class VQLSyntaxError(ReproError):
    """Raised by the VQL lexer/parser on malformed query text."""

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None):
        super().__init__(message)
        self.position = position
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        if self.line is not None and self.column is not None:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class VQLAnalysisError(ReproError):
    """Raised by the semantic analyzer when a syntactically valid query does
    not type-check against the schema (unknown class, unknown property,
    arity mismatch on a method call, ...)."""


class AlgebraError(ReproError):
    """Raised for malformed algebra expressions (unknown references,
    incompatible reference sets for joins, ...)."""


class TranslationError(ReproError):
    """Raised when a VQL AST cannot be translated into the query algebra."""


class OptimizerError(ReproError):
    """Raised for optimizer failures: unsatisfiable rule sets, missing
    implementation rules for a logical operator, cost-model errors."""


class RuleDerivationError(OptimizerError):
    """Raised when a piece of semantic knowledge cannot be compiled into an
    optimizer rule (e.g. the expressions do not mention the bound variable)."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class BindingError(ReproError):
    """Raised when the supplied bind-parameter values do not match a query's
    parameters (missing parameter, unknown name, surplus positional)."""


class ServiceError(ReproError):
    """Raised by the query service layer (unknown prepared statement,
    service shut down, ...)."""


class WorkloadError(ReproError):
    """Raised by workload generators on inconsistent parameters."""
