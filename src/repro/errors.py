"""Exception hierarchy shared by all subsystems of the reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can distinguish library failures from programming errors in their own
code with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Raised when a schema definition is inconsistent or incomplete.

    Examples: duplicate class names, a property referring to an undefined
    class, or a method registered for a class that does not exist.
    """


class TypeMismatchError(ReproError):
    """Raised when a value does not conform to its declared VML type."""


class ObjectNotFoundError(ReproError):
    """Raised when an OID does not resolve to a stored object."""


class MethodResolutionError(ReproError):
    """Raised when a method cannot be resolved for a receiver class."""


class MethodInvocationError(ReproError):
    """Raised when a resolved method fails during invocation."""


class IndexError_(ReproError):
    """Raised for index-maintenance problems (named with a trailing
    underscore to avoid shadowing the built-in :class:`IndexError`)."""


class VQLSyntaxError(ReproError):
    """Raised by the VQL lexer/parser on malformed query text.

    Carries the offending position (offset, line, column) and, when the
    source text is supplied, renders a caret snippet pointing at the
    offending token::

        expected keyword FROM, found 'WHER' (line 2, column 1)
          WHER p.number == 1
          ^
    """

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None,
                 source: str | None = None):
        super().__init__(message)
        self.position = position
        self.line = line
        self.column = column
        self.source = source

    def __str__(self) -> str:
        base = super().__str__()
        if self.line is None or self.column is None:
            return base
        base = f"{base} (line {self.line}, column {self.column})"
        snippet = self.snippet()
        return f"{base}\n{snippet}" if snippet else base

    def snippet(self, prefix: str = "  ") -> str | None:
        """The offending source line with a caret under the error column."""
        if self.source is None or self.line is None or self.column is None:
            return None
        lines = self.source.splitlines()
        if not 0 < self.line <= len(lines):
            return None
        source_line = lines[self.line - 1]
        caret = " " * max(self.column - 1, 0) + "^"
        return f"{prefix}{source_line}\n{prefix}{caret}"


class VQLAnalysisError(ReproError):
    """Raised by the semantic analyzer when a syntactically valid query does
    not type-check against the schema (unknown class, unknown property,
    arity mismatch on a method call, ...)."""


class AlgebraError(ReproError):
    """Raised for malformed algebra expressions (unknown references,
    incompatible reference sets for joins, ...)."""


class TranslationError(ReproError):
    """Raised when a VQL AST cannot be translated into the query algebra."""


class OptimizerError(ReproError):
    """Raised for optimizer failures: unsatisfiable rule sets, missing
    implementation rules for a logical operator, cost-model errors."""


class RuleDerivationError(OptimizerError):
    """Raised when a piece of semantic knowledge cannot be compiled into an
    optimizer rule (e.g. the expressions do not mention the bound variable)."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class BindingError(ReproError):
    """Raised when the supplied bind-parameter values do not match a query's
    parameters (missing parameter, unknown name, surplus positional)."""


class ServiceError(ReproError):
    """Raised by the query service layer (unknown prepared statement,
    service shut down, ...)."""


class TransactionError(ServiceError):
    """Raised on transaction-protocol misuse: BEGIN inside an open
    transaction, COMMIT/ROLLBACK without one, DDL inside a transaction,
    or executing transaction-control words through a non-transactional
    entry point."""


class TransactionConflictError(TransactionError):
    """Raised at COMMIT when first-writer-wins validation finds that an
    object in the transaction's write set was committed (or deleted) by
    another transaction after this one began.  The losing transaction is
    rolled back; the caller may retry it from scratch."""


class WorkloadError(ReproError):
    """Raised by workload generators on inconsistent parameters."""
