"""Normalized structural fingerprints of analyzed queries.

Two query texts that differ only in whitespace, comments, keyword case of
hyphenated operators, or placeholder spelling (``?`` vs ``?1``) analyze to
structurally identical :class:`~repro.vql.ast.Query` values, because the
analyzer resolves class references and canonicalizes parameters.  The plan
cache therefore keys on the analyzed query itself — its expression
subtrees carry cached structural hashes (PR 1), so hashing the key is a few
integer mixes, not a tree walk.

:func:`query_fingerprint` additionally renders a short, deterministic hex
digest of the canonical query text for logging and metrics (Python's
``hash()`` is salted per process and unsuitable for reporting).
"""

from __future__ import annotations

import hashlib

from repro.vql.analyzer import AnalyzedQuery
from repro.vql.ast import Query

__all__ = ["cache_key", "query_fingerprint"]


def cache_key(analyzed: AnalyzedQuery, optimize: bool) -> tuple[Query, bool]:
    """The plan-cache key: the resolved query plus the optimize flag.

    Keying on the :class:`Query` value (structural equality) makes textually
    different but shape-identical queries share one cached plan.
    """
    return (analyzed.query, optimize)


def query_fingerprint(analyzed: AnalyzedQuery, optimize: bool = True) -> str:
    """A short deterministic digest of the normalized query shape."""
    canonical = str(analyzed.query)
    if not optimize:
        canonical += "\n-- naive"
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
