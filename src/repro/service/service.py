"""The multi-client query service.

:class:`QueryService` is the production front end over one database: it
owns the schema-specific optimizer, a statement cache (query text →
analyzed shape), the plan cache (query shape → optimized + compiled plan)
and a reader/writer lock that lets many clients execute concurrently while
service-mediated DDL and knowledge registration drain in-flight queries
before invalidating.

The request lifecycle::

    execute(text, params)
      ├─ StatementRouter: text ──→ AnalyzedStatement (parse+analyze once;
      │     DDL/DML dispatch to the datamodel, queries continue below)
      ├─ resolve bindings (validates arity/names up front)
      ├─ plan cache: analyzed shape ──→ CachedPlan (translate+optimize+
      │                                  compile once per shape, versioned)
      └─ CachedPlan.executable.run(bindings)   (read-locked)

UPDATE/DELETE WHERE clauses come back through ``execute_analyzed`` as
derived queries, so mutation predicates share the plan cache; ``stream``
opens a lazy :class:`RowStream` over the same cached plans (the feed
behind the statement API's cursor).

Every response carries :class:`QueryMetrics` (cache hit/miss, optimize vs
execute time); the service aggregates them in :class:`ServiceMetrics`.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Union

from repro.api.router import StatementRouter
from repro.datamodel import ddl
from repro.datamodel.database import Database
from repro.datamodel.statistics import StatisticsCatalog
from repro.datamodel.versioning import current_pin
from repro.api.transaction import Transaction
from repro.errors import (ServiceError, TransactionConflictError,
                          TransactionError)
from repro.algebra.translate import translate_query
from repro.optimizer.generator import OptimizerGenerator
from repro.optimizer.knowledge import SchemaKnowledge
from repro.optimizer.search import OptimizationResult, OptimizerOptions
from repro.physical.executor import Row
from repro.physical.naive import naive_implementation
from repro.physical.parallel import default_parallelism
from repro.physical.plans import (Filter, HashJoin, IndexNestedLoopJoin,
                                  describe_physical_tree)
from repro.physical.profile import (ExplainReport, PlanProfile,
                                    divergent_operators, estimated_vs_actual,
                                    profile_summary, render_explain_analyze)
from repro.service.cache import CachedPlan, PlanCache
from repro.service.concurrency import ReadWriteLock
from repro.service.fingerprint import cache_key, query_fingerprint
from repro.service.prepared import PreparedExecutable, prepare_plan
from repro.session import QueryResult
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.spans import (NOOP_SPAN, Tracer, activation,
                                   annotate_current, child_span, current_span)
from repro.vql.analyzer import AnalyzedQuery
from repro.vql.bindings import ParameterValues, resolve_bindings

__all__ = ["PreparedQuery", "QueryMetrics", "QueryService",
           "ServiceMetrics", "ServiceResult"]


def _warn_legacy_index_ddl(alias: str, replacement: str) -> None:
    """One deprecation warning per legacy per-kind index-DDL alias call.

    The supported paths are the generic ``create_index``/``drop_index``
    methods (or the VQL statements ``CREATE [HASH|SORTED|TEXT] INDEX`` /
    ``DROP [TEXT] INDEX`` through any statement entry point); the per-kind
    aliases survive one more release for source compatibility.
    """
    warnings.warn(
        f"QueryService.{alias} is deprecated; use QueryService.{replacement} "
        "or the CREATE/DROP INDEX statements instead",
        DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class PreparedQuery:
    """A client-side handle to a prepared statement.

    Holding the handle skips parse + analyze on execution; the plan itself
    lives in the service's plan cache and is revalidated (and transparently
    re-prepared) on every execution.
    """

    text: str
    analyzed: AnalyzedQuery
    optimize: bool
    fingerprint: str

    @property
    def parameters(self) -> tuple[str, ...]:
        return self.analyzed.parameters


@dataclass
class QueryMetrics:
    """Per-execution measurements."""

    fingerprint: str
    cache_hit: bool
    rows: int = 0
    analyze_seconds: float = 0.0
    prepare_seconds: float = 0.0   # translate + optimize + compile (miss only)
    optimize_seconds: float = 0.0  # portion of prepare spent in the optimizer
    execute_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.analyze_seconds + self.prepare_seconds + self.execute_seconds


class ServiceMetrics:
    """Aggregated service counters (thread-safe).

    .. deprecated:: since the telemetry subsystem this class is a *facade*
       over a :class:`repro.telemetry.metrics.MetricsRegistry` — the old
       sum-only attributes (``queries``, ``cache_hits``,
       ``total_execute_seconds``, …) and :meth:`snapshot` keep working, but
       new code should read the registry's exports
       (``service.registry.export()`` / ``Connection.metrics()``), which
       additionally carry latency percentiles and per-statement stats.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._queries = reg.counter(
            "repro_statements_total", "statements executed by the service")
        self._cache_hits = reg.counter(
            "repro_plan_cache_hits_total", "executions served a cached plan")
        self._cache_misses = reg.counter(
            "repro_plan_cache_misses_total", "executions that built a plan")
        self._errors = reg.counter(
            "repro_statement_errors_total", "statements that raised")
        self._plans_reoptimized = reg.counter(
            "repro_plans_reoptimized_total",
            "plans rebuilt after an adaptive-feedback eviction")
        self._feedback_evictions = reg.counter(
            "repro_feedback_evictions_total",
            "cache invalidations triggered by feedback corrections")
        self._statements_prepared = reg.gauge(
            "repro_cached_statements", "analyzed statements cached by text")
        self._analyze = reg.histogram(
            "repro_analyze_seconds", "statement analyze/binding latency")
        self._prepare = reg.histogram(
            "repro_prepare_seconds",
            "translate+optimize+compile latency (cache misses)")
        self._optimize = reg.histogram(
            "repro_optimize_seconds", "optimizer latency (cache misses)")
        self._execute = reg.histogram(
            "repro_execute_seconds", "statement execute latency")
        self._txn_begins = reg.counter(
            "repro_txn_begins_total", "transactions begun")
        self._txn_commits = reg.counter(
            "repro_txn_commits_total", "transactions committed")
        self._txn_rollbacks = reg.counter(
            "repro_txn_rollbacks_total", "transactions rolled back")
        self._txn_conflicts = reg.counter(
            "repro_txn_conflicts_total",
            "transaction commits aborted by first-writer-wins conflicts")

    # -- legacy attribute surface (reads the registry) ------------------
    @property
    def queries(self) -> int:
        return int(self._queries.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._cache_misses.value)

    @property
    def errors(self) -> int:
        return int(self._errors.value)

    @property
    def statements_prepared(self) -> int:
        return int(self._statements_prepared.value)

    @property
    def plans_reoptimized(self) -> int:
        return int(self._plans_reoptimized.value)

    @property
    def feedback_evictions(self) -> int:
        return int(self._feedback_evictions.value)

    @property
    def total_execute_seconds(self) -> float:
        return self._execute.sum

    @property
    def total_prepare_seconds(self) -> float:
        return self._prepare.sum

    @property
    def total_optimize_seconds(self) -> float:
        return self._optimize.sum

    @property
    def txn_begins(self) -> int:
        return int(self._txn_begins.value)

    @property
    def txn_commits(self) -> int:
        return int(self._txn_commits.value)

    @property
    def txn_rollbacks(self) -> int:
        return int(self._txn_rollbacks.value)

    @property
    def txn_conflicts(self) -> int:
        return int(self._txn_conflicts.value)

    # -- recording ------------------------------------------------------
    def record_txn_begin(self) -> None:
        self._txn_begins.inc()

    def record_txn_commit(self) -> None:
        self._txn_commits.inc()

    def record_txn_rollback(self) -> None:
        self._txn_rollbacks.inc()

    def record_txn_conflict(self) -> None:
        self._txn_conflicts.inc()

    def record_feedback_eviction(self) -> None:
        self._feedback_evictions.inc()

    def record_reoptimized(self) -> None:
        self._plans_reoptimized.inc()

    def record_error(self) -> None:
        self._errors.inc()

    def set_statements_prepared(self, count: int) -> None:
        """Locked setter for the statement-cache size gauge (the former
        bare attribute assignment raced concurrent executions)."""
        self._statements_prepared.set(count)

    def record(self, metrics: QueryMetrics) -> None:
        self._queries.inc()
        if metrics.cache_hit:
            self._cache_hits.inc()
        else:
            self._cache_misses.inc()
            # prepare/optimize histograms only see misses, preserving the
            # legacy sum semantics (hits contributed 0.0 to the old totals)
            self._prepare.observe(metrics.prepare_seconds)
            self._optimize.observe(metrics.optimize_seconds)
        self._analyze.observe(metrics.analyze_seconds)
        self._execute.observe(metrics.execute_seconds)
        if metrics.fingerprint:
            self.registry.record_statement(metrics.fingerprint,
                                           metrics.total_seconds)

    def snapshot(self) -> dict[str, float]:
        queries = self.queries
        return {
            "queries": queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "errors": self.errors,
            "statements_prepared": self.statements_prepared,
            "plans_reoptimized": self.plans_reoptimized,
            "feedback_evictions": self.feedback_evictions,
            "hit_rate": (self.cache_hits / queries if queries else 0.0),
            "total_execute_seconds": self.total_execute_seconds,
            "total_prepare_seconds": self.total_prepare_seconds,
            "total_optimize_seconds": self.total_optimize_seconds,
            "txn_begins": self.txn_begins,
            "txn_commits": self.txn_commits,
            "txn_rollbacks": self.txn_rollbacks,
            "txn_conflicts": self.txn_conflicts,
        }


@dataclass
class ServiceResult:
    """The outcome of one service execution.

    ``work`` holds the logical work-counter delta of this execution; under
    concurrent execution the database counters are shared, so the delta
    attributes overlapping work to whichever query read it — treat it as
    exact only for serial workloads.
    """

    rows: list[Row]
    output_ref: str
    metrics: QueryMetrics
    plan: CachedPlan
    work: dict[str, float] = field(default_factory=dict)

    @property
    def values(self) -> list[Any]:
        return [row.get(self.output_ref) for row in self.rows]

    def value_set(self) -> set[Any]:
        from repro.physical.evaluator import make_hashable
        return {make_hashable(value) for value in self.values}

    def __len__(self) -> int:
        return len(self.rows)

    def as_query_result(self) -> QueryResult:
        """Adapt to the session-level :class:`QueryResult` shape."""
        return QueryResult(
            rows=self.rows,
            output_ref=self.output_ref,
            physical_plan=self.plan.physical_plan,
            logical_plan=self.plan.logical_plan,
            optimization=self.plan.optimization,
            work=dict(self.work))


QueryInput = Union[str, PreparedQuery]


class QueryService:
    """A concurrent, plan-caching query front end over one database."""

    def __init__(self, database: Database,
                 knowledge: Optional[SchemaKnowledge] = None,
                 options: Optional[OptimizerOptions] = None,
                 exclude_tags: Sequence[str] = (),
                 cache_capacity: int = 256,
                 reoptimize_fraction: float = 0.25,
                 parallelism: Optional[int] = None,
                 adaptive_feedback: bool = True,
                 feedback_threshold: float = 10.0,
                 tracing: Optional[bool] = None,
                 tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 slow_query_ms: Optional[float] = None):
        self.database = database
        #: statement tracing (span tree per statement): ``tracing=None``
        #: consults the ``REPRO_TRACE`` environment variable; pass a
        #: pre-built :class:`~repro.telemetry.spans.Tracer` to share a ring
        #: buffer or attach sinks.  Disabled tracing costs one branch per
        #: statement (see :mod:`repro.telemetry.spans`).
        if tracer is not None:
            self.tracer = tracer
        else:
            if tracing is None:
                tracing = os.environ.get("REPRO_TRACE", "").strip().lower() \
                    in ("1", "true", "yes", "on")
            self.tracer = Tracer(enabled=tracing)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slow_log = SlowQueryLog(threshold_ms=slow_query_ms)
        # When a durable storage adapter is attached (connect(durability=
        # "wal")), wire its WAL/checkpoint telemetry into this service's
        # registry, slow log and tracer so Connection.metrics() carries
        # wal_records/wal_bytes/fsync histograms alongside the query-side
        # instruments.
        storage = getattr(database, "storage", None)
        if storage is not None:
            storage.bind_telemetry(registry=self.registry,
                                   slow_log=self.slow_log,
                                   tracer=self.tracer)
        #: adaptive re-optimization: profile the first execution of every
        #: cost-based plan (and the first after data drift), and when an
        #: operator's estimate diverges from the measurement by more than
        #: ``feedback_threshold``×, write a correction into the statistics
        #: catalog and replan.  Only armed once the database has ANALYZE
        #: statistics — without them every estimate is a schema default and
        #: corrections would chase noise.
        self.adaptive_feedback = adaptive_feedback
        self.feedback_threshold = feedback_threshold
        #: fingerprints evicted by feedback, awaiting their replan (drained
        #: into the ``plans_reoptimized`` counter by ``_prepare_entry``)
        self._feedback_replans: set[str] = set()
        self.schema = database.schema
        self.knowledge = knowledge or SchemaKnowledge(self.schema)
        self._options = options
        self._exclude_tags = tuple(exclude_tags)
        #: intra-query degree of parallelism offered to the optimizer.  The
        #: degree is embedded in the chosen physical plan (never in the plan
        #: cache key): one service has one degree, so every cached plan was
        #: planned under it, and parallel and sequential services on the
        #: same database keep independent caches by construction.
        self.parallelism = (default_parallelism() if parallelism is None
                            else max(parallelism, 1))
        self._generator = OptimizerGenerator(self.schema, self.knowledge,
                                             options=options)
        self._optimizer = self._generator.generate(
            database=database, exclude_tags=self._exclude_tags, options=options,
            parallelism=self.parallelism)
        self._knowledge_version = 0
        self._knowledge_size = len(self.knowledge)
        self.cache = PlanCache(capacity=cache_capacity,
                               reoptimize_fraction=reoptimize_fraction)
        # single-flight guards: concurrent cold misses on one shape must not
        # duplicate the (expensive) optimize + compile work
        self._build_locks: dict[Any, threading.Lock] = {}
        self._build_locks_guard = threading.Lock()
        self._gate = ReadWriteLock()
        self.metrics = ServiceMetrics(registry=self.registry)
        #: the shared statement front end: classification, DML and DDL live
        #: in the router; queries come back through ``execute_analyzed`` so
        #: they (and UPDATE/DELETE WHERE clauses) hit the plan cache.  The
        #: router's text cache (schema-version-validated) is the single
        #: statement cache — ``prepare`` resolves through it too.  The write
        #: guard is the traced wrapper so gate waits show up as spans.
        self.router = StatementRouter(
            database,
            run_query=self.execute_analyzed,
            explain_query=self._explain_analyzed,
            write_guard=self._traced_write_guard,
            statement_cache_size=4 * cache_capacity)
        self._register_gauges()

    def _register_gauges(self) -> None:
        """Callback-backed gauges: plan cache, partitions, statistics
        catalog — read live at export time, no per-statement upkeep."""
        reg = self.registry
        reg.gauge("repro_plan_cache_size", "cached plans",
                  fn=lambda: float(len(self.cache)))
        reg.gauge("repro_plan_cache_capacity", "plan cache capacity",
                  fn=lambda: float(self.cache.capacity))
        reg.gauge("repro_plan_cache_evictions", "plan cache LRU evictions",
                  fn=lambda: float(self.cache.statistics.evictions))
        reg.gauge("repro_plan_cache_invalidations",
                  "plan cache version invalidations",
                  fn=lambda: float(self.cache.statistics.invalidations))
        reg.gauge("repro_extension_partitions",
                  "extension partitions across all classes",
                  fn=self._partition_count)
        reg.gauge("repro_statistics_analyzed_classes",
                  "classes with ANALYZE statistics",
                  fn=lambda: float(len(self._stats_catalog().analyzed_classes())
                                   if self._stats_catalog() else 0))
        reg.gauge("repro_statistics_corrections",
                  "feedback corrections held by the statistics catalog",
                  fn=lambda: float(self._stats_catalog().correction_count()
                                   if self._stats_catalog() else 0))

    def _stats_catalog(self):
        return getattr(self.database, "stats_catalog", None)

    def _partition_count(self) -> float:
        total = 0
        for class_name in self.schema.class_names():
            total += len(self.database.extension_partitions(class_name))
        return float(total)

    @contextmanager
    def _traced_write_guard(self):
        """The router's write guard with the gate *wait* traced: only the
        acquisition is inside the span, so a long write section is never
        mistaken for lock contention."""
        with child_span("write-gate-wait"):
            self._gate.acquire_write()
        try:
            yield
        finally:
            self._gate.release_write()

    @contextmanager
    def _read_scope(self, at: Optional[int] = None):
        """Pin the executing thread to a consistent snapshot.

        This replaces read-gating for query execution: instead of blocking
        behind in-flight writers, the statement reads the database as of
        ``clock.published`` (or the explicit transaction snapshot *at*)
        through the version chains.  Two situations inherit instead of
        pinning: the thread that owns the open commit scope (a batch
        commit's WHERE-queries must see the in-scope state), and nested
        execution under an existing pin on the same database (a method
        implementation re-entering the service observes its statement's
        snapshot).
        """
        database = self.database
        if database.in_commit_scope():
            yield
            return
        pin = current_pin()
        if pin is not None and pin.database is database and at is None:
            yield
            return
        with database.snapshot_scope(at):
            yield

    # ------------------------------------------------------------------
    # statement preparation
    # ------------------------------------------------------------------
    def prepare(self, text: str, optimize: bool = True) -> PreparedQuery:
        """Parse + analyze *text* once and warm the plan cache for it."""
        statement = self._statement(text, optimize)
        self._entry_for(statement)
        return statement

    def _statement(self, text: str, optimize: bool) -> PreparedQuery:
        """Resolve query text to a prepared handle via the router's
        statement cache (one cache, one invalidation discipline)."""
        analyzed = self.router.analyze(text)
        if not analyzed.is_query:
            raise ServiceError(
                f"cannot prepare a {analyzed.kind.upper()} statement — "
                "prepare() is for queries")
        statement = self._prepared_for(analyzed.query, optimize)
        self.metrics.set_statements_prepared(self.router.cached_statements)
        return statement

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: QueryInput,
                parameters: ParameterValues = None,
                optimize: bool = True):
        """Execute one statement (text or prepared handle) with *parameters*.

        Query text routes through the shared :class:`StatementRouter`, so —
        beyond ``ACCESS`` queries — the service accepts the full statement
        language (``INSERT``/``UPDATE``/``DELETE``/DDL); queries return a
        :class:`ServiceResult`, mutations a
        :class:`~repro.api.router.StatementResult`.
        """
        try:
            if isinstance(query, PreparedQuery):
                return self._execute_prepared(query, parameters)
            with self.tracer.span("statement"):
                started = time.perf_counter()
                result = self.router.execute(query, parameters=parameters,
                                             optimize=optimize)
                elapsed = time.perf_counter() - started
                annotate_current(kind=getattr(result, "kind", "select"),
                                 rows=len(result))
        except Exception:
            self.metrics.record_error()
            raise
        self.metrics.set_statements_prepared(self.router.cached_statements)
        # Query results were already slow-logged (with plan detail) by
        # _execute_prepared; DDL/DML results carry no metrics and are
        # logged here against the whole statement time.
        if (getattr(result, "metrics", None) is None
                and self.slow_log.would_log(elapsed)):
            self.slow_log.record(
                text=query if isinstance(query, str) else str(query),
                seconds=elapsed,
                parameters=parameters if isinstance(parameters, dict) else None,
                rows=len(result))
        return result

    def execute_analyzed(self, analyzed: AnalyzedQuery,
                         parameters: ParameterValues = None,
                         optimize: bool = True,
                         at: Optional[int] = None) -> ServiceResult:
        """Execute an already-analyzed query through the plan cache.

        This is the router's query runner: the plan cache keys on the
        analyzed query's structure, so statements that were analyzed by the
        router (including the WHERE-queries derived from UPDATE/DELETE)
        share cached plans exactly like text submitted to :meth:`execute`.
        *at* pins the execution to an explicit snapshot timestamp (a
        transaction's begin snapshot) instead of the latest published one.
        """
        return self._execute_prepared(self._prepared_for(analyzed, optimize),
                                      parameters, at=at)

    @staticmethod
    def _prepared_for(analyzed: AnalyzedQuery,
                      optimize: bool) -> PreparedQuery:
        """The prepared handle for an analyzed query, memoized on it.

        Router-analyzed statements are reused across executions (and across
        every row of an ``executemany`` batch), so the fingerprint — a
        serialization + hash of the whole query AST — is computed once per
        analyzed shape, not once per call.  The handle carries no
        service-local state, so sharing one analyzed query between owners
        is safe; a benign race may build the handle twice.
        """
        handles = getattr(analyzed, "prepared_handles", None)
        if handles is None:
            handles = {}
            analyzed.prepared_handles = handles
        statement = handles.get(optimize)
        if statement is None:
            statement = PreparedQuery(
                text=str(analyzed.query), analyzed=analyzed,
                optimize=optimize,
                fingerprint=query_fingerprint(analyzed, optimize))
            handles[optimize] = statement
        return statement

    def _execute_prepared(self, statement: PreparedQuery,
                          parameters: ParameterValues,
                          at: Optional[int] = None) -> ServiceResult:
        # Root span only when this call IS the statement (tracing on, no
        # enclosing span): text statements and DML WHERE-queries arrive with
        # a span already active and nest their children under it.
        if self.tracer.enabled and current_span() is None:
            span_cm = self.tracer.span("statement",
                                       fingerprint=statement.fingerprint)
        else:
            span_cm = NOOP_SPAN
        with span_cm:
            return self._run_prepared(statement, parameters, at=at)

    def _run_prepared(self, statement: PreparedQuery,
                      parameters: ParameterValues,
                      at: Optional[int] = None) -> ServiceResult:
        started = time.perf_counter()
        bindings = resolve_bindings(statement.analyzed.parameters, parameters)
        analyze_seconds = time.perf_counter() - started

        entry, cache_hit = self._entry_for(statement)
        self._rearm_feedback(entry)
        before = self.database.work_snapshot()
        run_started = time.perf_counter()
        with self._read_scope(at):
            with child_span("execute") as execute_span:
                rows = entry.executable.run(bindings)
                if execute_span is not None:
                    execute_span.annotate(rows=len(rows))
        execute_seconds = time.perf_counter() - run_started
        after = self.database.work_snapshot()
        work = {key: after[key] - before.get(key, 0.0) for key in after}

        # The slow-query decision must capture the armed profile's
        # estimate-vs-actual records *before* the feedback check consumes it.
        slow = self.slow_log.would_log(execute_seconds)
        profile_records = None
        if (slow and entry.feedback_profile is not None
                and len(entry.feedback_profile)):
            profile_records = profile_summary(
                entry.physical_plan, entry.feedback_profile,
                cost_model=self._optimizer.cost_model)
        self._maybe_apply_feedback(entry)

        metrics = QueryMetrics(
            fingerprint=entry.fingerprint,
            cache_hit=cache_hit,
            rows=len(rows),
            analyze_seconds=analyze_seconds,
            prepare_seconds=0.0 if cache_hit else entry.prepare_seconds,
            optimize_seconds=0.0 if cache_hit else entry.optimize_seconds,
            execute_seconds=execute_seconds)
        self.metrics.record(metrics)
        annotate_current(fingerprint=entry.fingerprint, cache_hit=cache_hit,
                         rows=len(rows))
        if slow:
            self.slow_log.record(
                text=statement.text or f"<prepared {entry.fingerprint}>",
                fingerprint=entry.fingerprint,
                seconds=execute_seconds,
                parameters=bindings,
                plan=describe_physical_tree(entry.physical_plan),
                cache_hit=cache_hit,
                rows=len(rows),
                profile=profile_records)
        return ServiceResult(rows=rows, output_ref=entry.output_ref,
                             metrics=metrics, plan=entry, work=work)

    def run_concurrent(self, requests: Iterable[tuple[QueryInput,
                                                      ParameterValues]],
                       workers: int = 4) -> list[ServiceResult]:
        """Execute many ``(query, parameters)`` requests on a worker pool.

        Results are returned in request order; any request's exception is
        re-raised after the pool drains.
        """
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="query-service") as pool:
            futures = [pool.submit(self.execute, query, parameters)
                       for query, parameters in requests]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # plan-cache plumbing
    # ------------------------------------------------------------------
    def _entry_for(self, statement: PreparedQuery) -> tuple[CachedPlan, bool]:
        key = cache_key(statement.analyzed, statement.optimize)
        with child_span("plan-cache") as lookup_span:
            entry = self.cache.lookup(key, self.database,
                                      self._knowledge_version)
            if lookup_span is not None:
                lookup_span.annotate(hit=entry is not None)
        if entry is not None:
            return entry, True
        with self._build_locks_guard:
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        try:
            with build_lock:
                # Double-checked: another thread may have built this shape
                # while we waited on its lock — that still counts as a hit.
                entry = self.cache.lookup(key, self.database,
                                          self._knowledge_version, record=False)
                if entry is not None:
                    return entry, True
                # Builds read the live schema/index/statistics state, so
                # they still drain behind DDL writers; plain executions no
                # longer pass through the gate at all.  The commit path
                # runs WHERE-queries while *holding* the write gate — the
                # lock admits its owner's nested read without deadlock.
                with self._gate.read_locked():
                    entry = self._prepare_entry(statement)
                self.cache.store(key, entry)
        finally:
            # The guard only needs to exist for the duration of one build;
            # waiters already holding the lock object still serialize on it,
            # and late arrivals are caught by the double-checked lookup.
            with self._build_locks_guard:
                self._build_locks.pop(key, None)
        return entry, False

    def _prepare_entry(self, statement: PreparedQuery) -> CachedPlan:
        versions = self.database.versions
        schema_version = versions.schema
        index_version = versions.index
        data_version = versions.data
        stats_version = versions.stats
        object_count = self.database.object_count()

        replan = statement.fingerprint in self._feedback_replans
        started = time.perf_counter()
        translation = translate_query(statement.analyzed)
        optimization: Optional[OptimizationResult] = None
        optimize_seconds = 0.0
        if statement.optimize:
            optimize_started = time.perf_counter()
            with child_span("optimize", replan=replan):
                optimization = self._optimizer.optimize(translation.plan)
            optimize_seconds = time.perf_counter() - optimize_started
            physical = optimization.best_plan
        else:
            physical = naive_implementation(translation.plan)
        profile = self._arm_feedback_profile(statement.optimize)
        executable = prepare_plan(physical, self.database, profile=profile)
        prepare_seconds = time.perf_counter() - started

        if replan:
            self._feedback_replans.discard(statement.fingerprint)
            self.metrics.record_reoptimized()

        return CachedPlan(
            fingerprint=statement.fingerprint,
            analyzed=statement.analyzed,
            output_ref=translation.output_ref,
            logical_plan=translation.plan,
            physical_plan=physical,
            executable=executable,
            optimize=statement.optimize,
            optimization=optimization,
            schema_version=schema_version,
            index_version=index_version,
            data_version=data_version,
            stats_version=stats_version,
            knowledge_version=self._knowledge_version,
            object_count=object_count,
            prepare_seconds=prepare_seconds,
            optimize_seconds=optimize_seconds,
            feedback_profile=profile,
            feedback_data_version=data_version)

    # ------------------------------------------------------------------
    # adaptive feedback re-optimization
    # ------------------------------------------------------------------
    def _arm_feedback_profile(self, optimize: bool) -> Optional[PlanProfile]:
        """A fresh profile when the next execution should be watched for
        estimate/actual divergence, else None (feedback off, naive plan, or
        no ANALYZE statistics to correct)."""
        if not self.adaptive_feedback or not optimize:
            return None
        catalog = getattr(self.database, "stats_catalog", None)
        if catalog is None or not catalog.analyzed_classes():
            return None
        return PlanProfile()

    def _rearm_feedback(self, entry: CachedPlan) -> None:
        """Re-instrument a cached plan once data drifted past the version
        its profile was armed under.

        The plan cache tolerates drift below its re-optimize fraction, so a
        plan can legitimately keep running while the data underneath it
        changes — re-arming makes the first post-drift execution observable
        again, which is what lets feedback catch drift-induced
        misestimation the staleness heuristics let through."""
        if entry.feedback_profile is not None or not entry.optimize:
            return
        if entry.feedback_data_version == self.database.versions.data:
            return
        profile = self._arm_feedback_profile(entry.optimize)
        if profile is None:
            return
        entry.feedback_profile = profile
        entry.feedback_data_version = self.database.versions.data
        entry.executable = prepare_plan(entry.physical_plan, self.database,
                                        profile=profile)

    def _maybe_apply_feedback(self, entry: CachedPlan) -> None:
        """Consume one profiled execution: feed material estimate/actual
        divergences back into the statistics catalog and trigger a replan.

        The armed profile is always consumed (the executable reverts to an
        uninstrumented build, so steady-state executions pay no counter
        overhead); when a divergent operator yields a material correction,
        the stats version bump invalidates every plan optimized against the
        pre-feedback estimates and the next execution replans."""
        profile = entry.feedback_profile
        if profile is None or len(profile) == 0:
            return
        with child_span("feedback") as span:
            entry.feedback_profile = None
            entry.executable = prepare_plan(entry.physical_plan, self.database)
            catalog = getattr(self.database, "stats_catalog", None)
            if catalog is None:
                return
            cost_model = self._optimizer.cost_model
            divergences = divergent_operators(
                entry.physical_plan, profile, cost_model,
                threshold=self.feedback_threshold)
            applied = False
            for record in divergences:
                applied = self._apply_correction(record, cost_model,
                                                 catalog) or applied
            if span is not None:
                span.annotate(divergences=len(divergences), applied=applied)
            if applied:
                self._feedback_replans.add(entry.fingerprint)
                self.database.note_stats_correction()
                self.metrics.record_feedback_eviction()

    def _apply_correction(self, record: dict, cost_model, catalog) -> bool:
        """Translate one divergent operator into a catalog correction.

        Joins yield a class-pair selectivity (``actual_out / (actual_left ×
        actual_right)``), filters a per-predicate selectivity (``actual_out
        / actual_in``) — both computed against the children's *measured*
        cardinalities, so a divergence inherited from a misestimated child
        does not masquerade as a selectivity error here.  Returns True only
        when the catalog accepted the correction as a material change."""
        plan = record["operator"]
        actual_out = record["actual_rows"]
        if isinstance(plan, IndexNestedLoopJoin):
            (left_actual,) = record["child_actual_rows"]
            return self._join_correction(
                cost_model, catalog,
                cost_model.join_key_identity(plan.left_key, plan.left),
                (plan.class_name, plan.prop),
                actual_out, left_actual,
                cost_model.extension_size(plan.class_name))
        if isinstance(plan, HashJoin):  # covers ParallelHashJoin
            left_actual, right_actual = record["child_actual_rows"]
            return self._join_correction(
                cost_model, catalog,
                cost_model.join_key_identity(plan.left_key, plan.left),
                cost_model.join_key_identity(plan.right_key, plan.right),
                actual_out, left_actual, right_actual)
        if isinstance(plan, Filter):
            key = cost_model.predicate_identity(plan.condition, plan.input)
            (input_actual,) = record["child_actual_rows"]
            if key is None or input_actual <= 0:
                return False
            observed = actual_out / input_actual
            estimated = cost_model.condition_selectivity(
                plan.condition, float(input_actual), source=plan.input)
            if self._immaterial(observed, estimated):
                return False
            return catalog.record_predicate_correction(key, observed,
                                                       estimated)
        return False

    def _join_correction(self, cost_model, catalog, left_identity,
                         right_identity, actual_out, left_actual,
                         right_actual) -> bool:
        if left_identity is None or right_identity is None:
            return False
        denominator = float(left_actual) * float(right_actual)
        if denominator <= 0:
            return False
        observed = actual_out / denominator
        estimated = cost_model.join_selectivity(
            left_identity, right_identity,
            float(left_actual), float(right_actual))
        if self._immaterial(observed, estimated):
            return False
        key = cost_model.join_correction_key(left_identity, right_identity)
        return catalog.record_join_correction(key, observed, estimated)

    @staticmethod
    def _immaterial(observed: float, estimated: float) -> bool:
        """True when the observed selectivity already matches what the cost
        model (including prior corrections) would predict — the operator's
        divergence came from elsewhere in the plan, not this selectivity."""
        low = max(min(observed, estimated), 1e-12)
        high = max(observed, estimated, 1e-12)
        return high / low <= StatisticsCatalog.MATERIAL_CHANGE_RATIO

    # ------------------------------------------------------------------
    # invalidation-triggering operations (writers)
    # ------------------------------------------------------------------
    def register_knowledge(self, *items: Any) -> None:
        """Add semantic knowledge and regenerate the optimizer.

        Drains in-flight executions, bumps the knowledge version (strictly
        invalidating every cached plan) and rebuilds the rule set.
        """
        if not items:
            raise ServiceError("register_knowledge needs at least one item")
        with self._gate.write_locked():
            for item in items:
                self.knowledge.add(item)
            self._refresh_optimizer()

    def sync_knowledge(self) -> bool:
        """Pick up knowledge added directly to the shared knowledge object.

        ``SchemaKnowledge`` only ever grows, so a size change is a reliable
        signal that its rules are stale in the generated optimizer.  Returns
        True when a regeneration happened.
        """
        if len(self.knowledge) == self._knowledge_size:
            return False
        with self._gate.write_locked():
            if len(self.knowledge) == self._knowledge_size:
                return False
            self._refresh_optimizer()
        return True

    def _refresh_optimizer(self) -> None:
        """Rebuild the optimizer from current knowledge (caller holds the
        write lock) and invalidate every cached plan via the version bump."""
        self._generator = OptimizerGenerator(
            self.schema, self.knowledge, options=self._options)
        self._optimizer = self._generator.generate(
            database=self.database, exclude_tags=self._exclude_tags,
            options=self._options, parallelism=self.parallelism)
        self._knowledge_version += 1
        self._knowledge_size = len(self.knowledge)

    def create_index(self, class_name: str, prop: str, kind: str = "hash"):
        """Create a ``hash``/``sorted``/``text`` index under the write gate.

        One generic entry point (backed by :mod:`repro.datamodel.ddl`)
        replaces the former per-kind pass-throughs; the legacy names below
        remain as aliases.
        """
        with self._gate.write_locked():
            return ddl.create_index(self.database, kind, class_name, prop)

    def drop_index(self, class_name: str, prop: str, text: bool = False) -> None:
        """Drop the (text) index on ``class_name.prop`` under the write gate."""
        with self._gate.write_locked():
            ddl.drop_index(self.database, class_name, prop, text=text)

    def checkpoint(self):
        """Checkpoint the storage adapter under the write gate.

        Writers drain and stay blocked while the snapshot serializes
        (MVCC readers keep running); returns the checkpointed commit
        timestamp, or None when the database has no durable adapter.
        """
        storage = getattr(self.database, "storage", None)
        if storage is None or not storage.durable:
            return None
        with self._gate.write_locked():
            return storage.checkpoint()

    # legacy aliases for the generic index DDL above
    def create_hash_index(self, class_name: str, prop: str):
        """Deprecated alias for ``create_index(..., kind="hash")``."""
        _warn_legacy_index_ddl("create_hash_index", 'create_index(..., kind="hash")')
        return self.create_index(class_name, prop, kind="hash")

    def create_sorted_index(self, class_name: str, prop: str):
        """Deprecated alias for ``create_index(..., kind="sorted")``."""
        _warn_legacy_index_ddl("create_sorted_index",
                               'create_index(..., kind="sorted")')
        return self.create_index(class_name, prop, kind="sorted")

    def create_text_index(self, class_name: str, prop: str):
        """Deprecated alias for ``create_index(..., kind="text")``."""
        _warn_legacy_index_ddl("create_text_index",
                               'create_index(..., kind="text")')
        return self.create_index(class_name, prop, kind="text")

    def drop_text_index(self, class_name: str, prop: str) -> None:
        """Deprecated alias for ``drop_index(..., text=True)``."""
        _warn_legacy_index_ddl("drop_text_index", "drop_index(..., text=True)")
        self.drop_index(class_name, prop, text=True)

    # ------------------------------------------------------------------
    # transactions (deferred-write MVCC, first-writer-wins)
    # ------------------------------------------------------------------
    def begin_transaction(self) -> Transaction:
        """Open a transaction pinned to the latest published snapshot.

        The returned :class:`~repro.api.transaction.Transaction` holds a
        *registered* snapshot pin, so the version chains its statements
        read stay unpruned until commit or rollback.
        """
        txn = Transaction(self.database, self.database.acquire_snapshot())
        self.metrics.record_txn_begin()
        return txn

    def rollback_transaction(self, txn: Transaction) -> None:
        """Discard *txn*: release the snapshot pin, drop the buffer."""
        if txn.state == "active":
            txn.state = "rolled back"
            self.metrics.record_txn_rollback()
        txn.release()

    def commit_transaction(self, txn: Transaction) -> int:
        """Validate and atomically apply *txn*; returns the row count.

        First-writer-wins: under the write gate, every object of the
        transaction's write set must still carry a last write at or before
        the begin snapshot — an object committed (or deleted) past it by
        another transaction raises
        :class:`~repro.errors.TransactionConflictError` and rolls this
        transaction back (nothing was applied early, so rollback is free).
        On success every buffered operation applies in one commit scope,
        becoming visible to other snapshots at a single commit timestamp.
        """
        if txn.state != "active":
            raise TransactionError(
                f"cannot COMMIT a transaction that is {txn.state}")
        try:
            with self.tracer.span("transaction-commit"):
                with self._traced_write_guard():
                    stale = []
                    for oid in txn.write_set:
                        last = self.database.last_write_ts(oid)
                        if last is None or last > txn.start_ts:
                            stale.append(oid)
                    if stale:
                        raise TransactionConflictError(
                            f"transaction begun at snapshot {txn.start_ts} "
                            f"lost first-writer-wins validation on "
                            f"{len(stale)} object(s) (first: {stale[0]})")
                    total = self.router.apply_transaction(txn.operations)
                annotate_current(operations=len(txn.operations), rows=total)
        except TransactionConflictError:
            txn.state = "rolled back"
            txn.release()
            self.metrics.record_txn_conflict()
            raise
        except Exception:
            txn.state = "rolled back"
            txn.release()
            self.metrics.record_error()
            raise
        txn.state = "committed"
        # apply_transaction ran in one commit scope, so the timestamp it
        # published is the whole transaction's (and its single WAL
        # record's) commit timestamp
        txn.commit_ts = self.database.clock.published
        txn.release()
        self.metrics.record_txn_commit()
        return total

    def transaction_targets(self, analyzed, parameters,
                            at: int) -> tuple[dict, tuple]:
        """Resolve an UPDATE/DELETE's bindings and target OIDs at *at*.

        The WHERE-query runs through the plan cache pinned to the
        transaction's begin snapshot, so a transaction's own statements
        agree with its queries about which objects exist.
        """
        bindings = resolve_bindings(analyzed.parameters, parameters)
        where = analyzed.query
        sub_parameters = ({key: bindings[key] for key in where.parameters}
                          or None)
        result = self.execute_analyzed(where, sub_parameters, at=at)
        ref = result.output_ref
        targets = tuple(dict.fromkeys(row[ref] for row in result.rows))
        return bindings, targets

    # ------------------------------------------------------------------
    # streaming (the generator feed behind the statement API's cursor)
    # ------------------------------------------------------------------
    def stream(self, query: QueryInput,
               parameters: ParameterValues = None,
               optimize: bool = True) -> "RowStream":
        """Open a lazy row stream over the cached plan for *query*.

        Rows are produced by the prepared executable's generator tree on
        demand — nothing is materialized up front.  Each fetch runs pinned
        to the snapshot the stream acquired when it opened (concurrent
        mutations never leak into an open stream) with the stream's
        bindings active, so concurrent streams (and plain ``execute``
        calls) on one thread cannot observe each other's parameter values.
        """
        if isinstance(query, PreparedQuery):
            return self._open_stream(
                query, parameters,
                span=self.tracer.begin_root("statement", stream=True))
        span = self.tracer.begin_root("statement", stream=True)
        try:
            started = time.perf_counter()
            with activation(span):
                analyzed = self.router.analyze(query)
            analyze_seconds = time.perf_counter() - started
            if not analyzed.is_query:
                raise ServiceError(
                    f"cannot stream a {analyzed.kind.upper()} statement")
        except BaseException as exc:
            self.metrics.record_error()
            self.tracer.finish(span, error=exc)
            raise
        return self.stream_analyzed(analyzed.query, parameters, optimize,
                                    analyze_seconds=analyze_seconds, span=span)

    def stream_analyzed(self, analyzed: AnalyzedQuery,
                        parameters: ParameterValues = None,
                        optimize: bool = True,
                        analyze_seconds: float = 0.0,
                        span=None,
                        at: Optional[int] = None) -> "RowStream":
        """:meth:`stream` for an already-analyzed query.

        *analyze_seconds* carries the caller's parse+analyze timing into the
        stream's :class:`QueryMetrics` (the cursor facade analyzes before it
        reaches the service); *span* hands over an open statement span whose
        lifecycle the stream finishes on exhaust/close.  *at* pins the
        stream to an explicit snapshot (a transaction's begin snapshot).
        """
        if span is None:
            span = self.tracer.begin_root("statement", stream=True)
        return self._open_stream(self._prepared_for(analyzed, optimize),
                                 parameters, analyze_seconds=analyze_seconds,
                                 span=span, at=at)

    def _open_stream(self, statement: PreparedQuery,
                     parameters: ParameterValues,
                     analyze_seconds: float = 0.0,
                     span=None,
                     at: Optional[int] = None) -> "RowStream":
        try:
            with activation(span):
                bindings = resolve_bindings(statement.analyzed.parameters,
                                            parameters)
                entry, cache_hit = self._entry_for(statement)
        except BaseException as exc:
            self.metrics.record_error()
            self.tracer.finish(span, error=exc)
            raise
        self.metrics.set_statements_prepared(self.router.cached_statements)
        metrics = QueryMetrics(
            fingerprint=entry.fingerprint,
            cache_hit=cache_hit,
            analyze_seconds=analyze_seconds,
            prepare_seconds=0.0 if cache_hit else entry.prepare_seconds,
            optimize_seconds=0.0 if cache_hit else entry.optimize_seconds)
        if span is not None:
            span.annotate(fingerprint=entry.fingerprint, cache_hit=cache_hit)

        def record(stream: "RowStream") -> None:
            # streamed executions enter the service metrics once, when the
            # stream exhausts or is closed (rows = what was consumed)
            metrics.rows = stream.consumed
            metrics.execute_seconds = stream.fetch_seconds
            self.metrics.record(metrics)
            if span is not None:
                # the accumulated fetch time becomes a post-hoc child, so
                # streamed trees read like the one-shot path's
                span.child_event("execute", stream.fetch_seconds,
                                 rows=stream.consumed)
                span.annotate(rows=stream.consumed)
            self.tracer.finish(span)
            if self.slow_log.would_log(stream.fetch_seconds):
                self.slow_log.record(
                    text=statement.text or f"<prepared {entry.fingerprint}>",
                    fingerprint=entry.fingerprint,
                    seconds=stream.fetch_seconds,
                    parameters=bindings,
                    plan=describe_physical_tree(entry.physical_plan),
                    cache_hit=cache_hit,
                    rows=stream.consumed)

        return RowStream(self.database, entry, bindings, on_finish=record,
                         at=at)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def explain(self, text: str, optimize: bool = True,
                analyze: bool = False,
                parameters: ParameterValues = None) -> str:
        """Describe how *text* would be evaluated (preparing it if needed).

        For UPDATE/DELETE statements this explains the derived WHERE-query,
        which is where an indexed mutation predicate shows its index access
        path.  With ``analyze=True`` (or ``EXPLAIN ANALYZE ...`` text) the
        plan additionally runs under per-operator instrumentation and the
        report compares estimated with actual cardinalities.
        """
        return self.router.explain(text, optimize=optimize, analyze=analyze,
                                   parameters=parameters)

    def _explain_analyzed(self, analyzed: AnalyzedQuery,
                          optimize: bool = True, analyze: bool = False,
                          parameters: ParameterValues = None) -> str:
        statement = self._prepared_for(analyzed, optimize)
        entry, _ = self._entry_for(statement)
        if entry.optimization is not None:
            report = entry.optimization.explain()
        else:
            report = ("naive plan:\n"
                      + describe_physical_tree(entry.physical_plan, depth=1))
        records: Optional[list[dict]] = None
        if analyze:
            profile_text, records = self._runtime_profile(entry, parameters)
            report += "\n" + profile_text
        return ExplainReport(report, records)

    def _runtime_profile(self, entry: CachedPlan,
                         parameters: ParameterValues
                         ) -> tuple[str, list[dict]]:
        """Run the cached plan's shape under instrumentation.

        A *fresh* profiled executable is built from the entry's physical
        plan (cached executables stay unprofiled — the counters are
        per-diagnostic, not per-cache-entry), and executed under a snapshot
        pin like any query.  Returns the rendered report plus the
        structured estimated-vs-actual records it was rendered from.
        """
        bindings = resolve_bindings(entry.analyzed.parameters, parameters)
        profile = PlanProfile()
        executable = PreparedExecutable(entry.physical_plan, self.database,
                                        profile=profile)
        with self._read_scope():
            rows = executable.run(bindings)
        records = estimated_vs_actual(entry.physical_plan, profile,
                                      cost_model=self._optimizer.cost_model)
        report = render_explain_analyze(entry.physical_plan, profile,
                                        cost_model=self._optimizer.cost_model)
        indented = "\n".join("  " + line for line in report.splitlines())
        return f"runtime profile ({len(rows)} rows):\n{indented}", records

    def __str__(self) -> str:
        return (f"QueryService({self.database}, {len(self.cache)} cached "
                f"plans, knowledge v{self._knowledge_version})")


class RowStream:
    """A lazy row feed over one cached plan (see :meth:`QueryService.stream`).

    The stream owns a generator opened on the plan's prepared executable;
    :meth:`fetch` advances it by at most *n* rows, bracketing every advance
    with the stream's snapshot pin and bind parameters.  The stream pins
    one snapshot for its *whole lifetime* (registered against the database
    so version chains it needs are not pruned): DDL and DML interleave
    freely with an open stream, and the not-yet-fetched rows still observe
    the state as of the stream's open — a cursor never sees a concurrent
    writer's half-applied (or even fully-applied) mutations.
    """

    def __init__(self, database, entry: CachedPlan,
                 bindings: Optional[dict] = None,
                 on_finish=None,
                 at: Optional[int] = None):
        self._database = database
        self._entry = entry
        self._bindings = bindings
        # Register the lifetime snapshot before opening the iterator: the
        # registration holds back version-chain pruning until _finish.
        self._snapshot_ts = database.acquire_snapshot(at)
        self._released = False
        # Capture the executable: adaptive feedback may swap a fresh build
        # into the cache entry mid-stream, and bindings must be activated
        # on the same environment the open iterator reads from.
        self._executable = entry.executable
        self._iterator = self._executable.open()
        self._exhausted = False
        self._on_finish = on_finish
        self.output_ref = entry.output_ref
        self.fingerprint = entry.fingerprint
        self.consumed = 0
        self.fetch_seconds = 0.0

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def snapshot_ts(self) -> int:
        """The commit timestamp this stream observes for its lifetime."""
        return self._snapshot_ts

    def fetch(self, n: int) -> list[Row]:
        """Return up to *n* further rows (an empty list once exhausted)."""
        if self._exhausted or n <= 0:
            return []
        rows: list[Row] = []
        iterator = self._iterator
        started = time.perf_counter()
        finished = False
        with self._database.pin_snapshot(self._snapshot_ts):
            with self._executable.binding_scope(self._bindings):
                for _ in range(n):
                    try:
                        rows.append(next(iterator))
                    except StopIteration:
                        self._exhausted = True
                        finished = True
                        break
        self.fetch_seconds += time.perf_counter() - started
        self.consumed += len(rows)
        if finished:
            self._finish()
        return rows

    def drain(self) -> list[Row]:
        """Fetch every remaining row."""
        rows: list[Row] = []
        while not self._exhausted:
            rows.extend(self.fetch(1024))
        return rows

    def close(self) -> None:
        """Release the underlying generator without draining it."""
        if not self._exhausted:
            self._exhausted = True
            self._iterator.close()
            self._finish()

    def _finish(self) -> None:
        if not self._released:
            self._released = True
            self._database.release_snapshot(self._snapshot_ts)
        if self._on_finish is not None:
            callback, self._on_finish = self._on_finish, None
            callback(self)
