"""The multi-client query service.

:class:`QueryService` is the production front end over one database: it
owns the schema-specific optimizer, a statement cache (query text →
analyzed shape), the plan cache (query shape → optimized + compiled plan)
and a reader/writer lock that lets many clients execute concurrently while
service-mediated DDL and knowledge registration drain in-flight queries
before invalidating.

The request lifecycle::

    execute(text, params)
      ├─ statement cache: text ────────→ PreparedQuery (parse+analyze once)
      ├─ resolve bindings (validates arity/names up front)
      ├─ plan cache: analyzed shape ──→ CachedPlan (translate+optimize+
      │                                  compile once per shape, versioned)
      └─ CachedPlan.executable.run(bindings)   (read-locked)

Every response carries :class:`QueryMetrics` (cache hit/miss, optimize vs
execute time); the service aggregates them in :class:`ServiceMetrics`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Union

from repro.datamodel.database import Database
from repro.errors import ServiceError
from repro.algebra.translate import translate_query
from repro.optimizer.generator import OptimizerGenerator
from repro.optimizer.knowledge import SchemaKnowledge
from repro.optimizer.search import OptimizationResult, OptimizerOptions
from repro.physical.executor import Row
from repro.physical.naive import naive_implementation
from repro.physical.parallel import default_parallelism
from repro.service.cache import CachedPlan, PlanCache
from repro.service.concurrency import ReadWriteLock
from repro.service.fingerprint import cache_key, query_fingerprint
from repro.service.prepared import prepare_plan
from repro.session import QueryResult
from repro.vql.analyzer import AnalyzedQuery, analyze_query
from repro.vql.bindings import ParameterValues, resolve_bindings
from repro.vql.parser import parse_query

__all__ = ["PreparedQuery", "QueryMetrics", "QueryService",
           "ServiceMetrics", "ServiceResult"]


@dataclass(frozen=True)
class PreparedQuery:
    """A client-side handle to a prepared statement.

    Holding the handle skips parse + analyze on execution; the plan itself
    lives in the service's plan cache and is revalidated (and transparently
    re-prepared) on every execution.
    """

    text: str
    analyzed: AnalyzedQuery
    optimize: bool
    fingerprint: str

    @property
    def parameters(self) -> tuple[str, ...]:
        return self.analyzed.parameters


@dataclass
class QueryMetrics:
    """Per-execution measurements."""

    fingerprint: str
    cache_hit: bool
    rows: int = 0
    analyze_seconds: float = 0.0
    prepare_seconds: float = 0.0   # translate + optimize + compile (miss only)
    optimize_seconds: float = 0.0  # portion of prepare spent in the optimizer
    execute_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.analyze_seconds + self.prepare_seconds + self.execute_seconds


@dataclass
class ServiceMetrics:
    """Aggregated service counters (thread-safe)."""

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    statements_prepared: int = 0
    total_execute_seconds: float = 0.0
    total_prepare_seconds: float = 0.0
    total_optimize_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, metrics: QueryMetrics) -> None:
        with self._lock:
            self.queries += 1
            if metrics.cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self.total_execute_seconds += metrics.execute_seconds
            self.total_prepare_seconds += metrics.prepare_seconds
            self.total_optimize_seconds += metrics.optimize_seconds

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "queries": self.queries,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "statements_prepared": self.statements_prepared,
                "hit_rate": (self.cache_hits / self.queries
                             if self.queries else 0.0),
                "total_execute_seconds": self.total_execute_seconds,
                "total_prepare_seconds": self.total_prepare_seconds,
                "total_optimize_seconds": self.total_optimize_seconds,
            }


@dataclass
class ServiceResult:
    """The outcome of one service execution.

    ``work`` holds the logical work-counter delta of this execution; under
    concurrent execution the database counters are shared, so the delta
    attributes overlapping work to whichever query read it — treat it as
    exact only for serial workloads.
    """

    rows: list[Row]
    output_ref: str
    metrics: QueryMetrics
    plan: CachedPlan
    work: dict[str, float] = field(default_factory=dict)

    @property
    def values(self) -> list[Any]:
        return [row.get(self.output_ref) for row in self.rows]

    def value_set(self) -> set[Any]:
        from repro.physical.evaluator import make_hashable
        return {make_hashable(value) for value in self.values}

    def __len__(self) -> int:
        return len(self.rows)

    def as_query_result(self) -> QueryResult:
        """Adapt to the session-level :class:`QueryResult` shape."""
        return QueryResult(
            rows=self.rows,
            output_ref=self.output_ref,
            physical_plan=self.plan.physical_plan,
            logical_plan=self.plan.logical_plan,
            optimization=self.plan.optimization,
            work=dict(self.work))


QueryInput = Union[str, PreparedQuery]


class QueryService:
    """A concurrent, plan-caching query front end over one database."""

    def __init__(self, database: Database,
                 knowledge: Optional[SchemaKnowledge] = None,
                 options: Optional[OptimizerOptions] = None,
                 exclude_tags: Sequence[str] = (),
                 cache_capacity: int = 256,
                 reoptimize_fraction: float = 0.25,
                 parallelism: Optional[int] = None):
        self.database = database
        self.schema = database.schema
        self.knowledge = knowledge or SchemaKnowledge(self.schema)
        self._options = options
        self._exclude_tags = tuple(exclude_tags)
        #: intra-query degree of parallelism offered to the optimizer.  The
        #: degree is embedded in the chosen physical plan (never in the plan
        #: cache key): one service has one degree, so every cached plan was
        #: planned under it, and parallel and sequential services on the
        #: same database keep independent caches by construction.
        self.parallelism = (default_parallelism() if parallelism is None
                            else max(parallelism, 1))
        self._generator = OptimizerGenerator(self.schema, self.knowledge,
                                             options=options)
        self._optimizer = self._generator.generate(
            database=database, exclude_tags=self._exclude_tags, options=options,
            parallelism=self.parallelism)
        self._knowledge_version = 0
        self._knowledge_size = len(self.knowledge)
        self.cache = PlanCache(capacity=cache_capacity,
                               reoptimize_fraction=reoptimize_fraction)
        # text-level LRU: query text -> analyzed statement (parse + analyze
        # once); bounded so arbitrary ad-hoc texts cannot grow it forever
        self._statements: "OrderedDict[tuple[str, bool], PreparedQuery]" = (
            OrderedDict())
        self._statements_capacity = 4 * cache_capacity
        self._statements_lock = threading.Lock()
        # single-flight guards: concurrent cold misses on one shape must not
        # duplicate the (expensive) optimize + compile work
        self._build_locks: dict[Any, threading.Lock] = {}
        self._build_locks_guard = threading.Lock()
        self._gate = ReadWriteLock()
        self.metrics = ServiceMetrics()

    # ------------------------------------------------------------------
    # statement preparation
    # ------------------------------------------------------------------
    def prepare(self, text: str, optimize: bool = True) -> PreparedQuery:
        """Parse + analyze *text* once and warm the plan cache for it."""
        statement = self._statement(text, optimize)
        with self._gate.read_locked():
            self._entry_for(statement)
        return statement

    def _statement(self, text: str, optimize: bool) -> PreparedQuery:
        key = (text, optimize)
        with self._statements_lock:
            cached = self._statements.get(key)
            if cached is not None:
                self._statements.move_to_end(key)
                return cached
        analyzed = analyze_query(parse_query(text), self.schema)
        statement = PreparedQuery(
            text=text, analyzed=analyzed, optimize=optimize,
            fingerprint=query_fingerprint(analyzed, optimize))
        with self._statements_lock:
            statement = self._statements.setdefault(key, statement)
            self._statements.move_to_end(key)
            while len(self._statements) > self._statements_capacity:
                self._statements.popitem(last=False)
            self.metrics.statements_prepared = len(self._statements)
        return statement

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: QueryInput,
                parameters: ParameterValues = None,
                optimize: bool = True) -> ServiceResult:
        """Execute *query* (text or prepared handle) with *parameters*."""
        started = time.perf_counter()
        if isinstance(query, PreparedQuery):
            statement = query
        else:
            statement = self._statement(query, optimize)
        analyze_seconds = time.perf_counter() - started

        bindings = resolve_bindings(statement.analyzed.parameters, parameters)

        with self._gate.read_locked():
            entry, cache_hit = self._entry_for(statement)
            before = self.database.work_snapshot()
            run_started = time.perf_counter()
            rows = entry.executable.run(bindings)
            execute_seconds = time.perf_counter() - run_started
            after = self.database.work_snapshot()
        work = {key: after[key] - before.get(key, 0.0) for key in after}

        metrics = QueryMetrics(
            fingerprint=entry.fingerprint,
            cache_hit=cache_hit,
            rows=len(rows),
            analyze_seconds=analyze_seconds,
            prepare_seconds=0.0 if cache_hit else entry.prepare_seconds,
            optimize_seconds=0.0 if cache_hit else entry.optimize_seconds,
            execute_seconds=execute_seconds)
        self.metrics.record(metrics)
        return ServiceResult(rows=rows, output_ref=entry.output_ref,
                             metrics=metrics, plan=entry, work=work)

    def run_concurrent(self, requests: Iterable[tuple[QueryInput,
                                                      ParameterValues]],
                       workers: int = 4) -> list[ServiceResult]:
        """Execute many ``(query, parameters)`` requests on a worker pool.

        Results are returned in request order; any request's exception is
        re-raised after the pool drains.
        """
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="query-service") as pool:
            futures = [pool.submit(self.execute, query, parameters)
                       for query, parameters in requests]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # plan-cache plumbing
    # ------------------------------------------------------------------
    def _entry_for(self, statement: PreparedQuery) -> tuple[CachedPlan, bool]:
        key = cache_key(statement.analyzed, statement.optimize)
        entry = self.cache.lookup(key, self.database, self._knowledge_version)
        if entry is not None:
            return entry, True
        with self._build_locks_guard:
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        try:
            with build_lock:
                # Double-checked: another thread may have built this shape
                # while we waited on its lock — that still counts as a hit.
                entry = self.cache.lookup(key, self.database,
                                          self._knowledge_version, record=False)
                if entry is not None:
                    return entry, True
                entry = self._prepare_entry(statement)
                self.cache.store(key, entry)
        finally:
            # The guard only needs to exist for the duration of one build;
            # waiters already holding the lock object still serialize on it,
            # and late arrivals are caught by the double-checked lookup.
            with self._build_locks_guard:
                self._build_locks.pop(key, None)
        return entry, False

    def _prepare_entry(self, statement: PreparedQuery) -> CachedPlan:
        versions = self.database.versions
        schema_version = versions.schema
        index_version = versions.index
        data_version = versions.data
        object_count = self.database.object_count()

        started = time.perf_counter()
        translation = translate_query(statement.analyzed)
        optimization: Optional[OptimizationResult] = None
        optimize_seconds = 0.0
        if statement.optimize:
            optimize_started = time.perf_counter()
            optimization = self._optimizer.optimize(translation.plan)
            optimize_seconds = time.perf_counter() - optimize_started
            physical = optimization.best_plan
        else:
            physical = naive_implementation(translation.plan)
        executable = prepare_plan(physical, self.database)
        prepare_seconds = time.perf_counter() - started

        return CachedPlan(
            fingerprint=statement.fingerprint,
            analyzed=statement.analyzed,
            output_ref=translation.output_ref,
            logical_plan=translation.plan,
            physical_plan=physical,
            executable=executable,
            optimize=statement.optimize,
            optimization=optimization,
            schema_version=schema_version,
            index_version=index_version,
            data_version=data_version,
            knowledge_version=self._knowledge_version,
            object_count=object_count,
            prepare_seconds=prepare_seconds,
            optimize_seconds=optimize_seconds)

    # ------------------------------------------------------------------
    # invalidation-triggering operations (writers)
    # ------------------------------------------------------------------
    def register_knowledge(self, *items: Any) -> None:
        """Add semantic knowledge and regenerate the optimizer.

        Drains in-flight executions, bumps the knowledge version (strictly
        invalidating every cached plan) and rebuilds the rule set.
        """
        if not items:
            raise ServiceError("register_knowledge needs at least one item")
        with self._gate.write_locked():
            for item in items:
                self.knowledge.add(item)
            self._refresh_optimizer()

    def sync_knowledge(self) -> bool:
        """Pick up knowledge added directly to the shared knowledge object.

        ``SchemaKnowledge`` only ever grows, so a size change is a reliable
        signal that its rules are stale in the generated optimizer.  Returns
        True when a regeneration happened.
        """
        if len(self.knowledge) == self._knowledge_size:
            return False
        with self._gate.write_locked():
            if len(self.knowledge) == self._knowledge_size:
                return False
            self._refresh_optimizer()
        return True

    def _refresh_optimizer(self) -> None:
        """Rebuild the optimizer from current knowledge (caller holds the
        write lock) and invalidate every cached plan via the version bump."""
        self._generator = OptimizerGenerator(
            self.schema, self.knowledge, options=self._options)
        self._optimizer = self._generator.generate(
            database=self.database, exclude_tags=self._exclude_tags,
            options=self._options, parallelism=self.parallelism)
        self._knowledge_version += 1
        self._knowledge_size = len(self.knowledge)

    def create_hash_index(self, class_name: str, prop: str):
        with self._gate.write_locked():
            return self.database.create_hash_index(class_name, prop)

    def create_sorted_index(self, class_name: str, prop: str):
        with self._gate.write_locked():
            return self.database.create_sorted_index(class_name, prop)

    def create_text_index(self, class_name: str, prop: str):
        with self._gate.write_locked():
            return self.database.create_text_index(class_name, prop)

    def drop_index(self, class_name: str, prop: str) -> None:
        with self._gate.write_locked():
            self.database.drop_index(class_name, prop)

    def drop_text_index(self, class_name: str, prop: str) -> None:
        with self._gate.write_locked():
            self.database.drop_text_index(class_name, prop)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def explain(self, text: str, optimize: bool = True) -> str:
        """Describe the cached plan for *text* (preparing it if needed)."""
        statement = self._statement(text, optimize)
        with self._gate.read_locked():
            entry, _ = self._entry_for(statement)
        if entry.optimization is not None:
            return entry.optimization.explain()
        return f"naive plan:\n{entry.physical_plan.describe()}"

    def __str__(self) -> str:
        return (f"QueryService({self.database}, {len(self.cache)} cached "
                f"plans, knowledge v{self._knowledge_version})")
