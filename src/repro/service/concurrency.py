"""Reader/writer coordination for the query service.

Since the MVCC snapshot work, plain query executions no longer take this
lock at all — they pin a snapshot and read through the database's version
chains.  The lock still serializes the write side: DML apply, index DDL,
knowledge registration, and plan *builds* (which read the live schema and
indexes and must not observe them mid-mutation).  Writers are preferred —
a steady stream of plan builds cannot starve DDL.

Mutations performed *directly* on the :class:`~repro.datamodel.database.
Database` bypass this lock; they are still picked up through the version
counters at the next cache lookup, but the caller is responsible for not
mutating concurrently with executions (see DESIGN.md, thread-safety
assumptions).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    The read side is reentrant: a thread already holding a read lock may
    acquire it again even while a writer is queued — otherwise a query
    whose method implementation re-enters the service on the same thread
    (the nested-execution case :class:`~repro.service.prepared.BindingEnv`
    supports) would deadlock against a waiting writer.  A thread holding
    the *write* lock may also acquire the read side (the commit path runs
    WHERE-queries while applying a batch); true write reentrancy and
    read→write upgrades raise ``RuntimeError`` instead of deadlocking.

    Unbalanced releases raise ``RuntimeError``: silently accepting them
    used to drive the reader count negative, which wedged every waiting
    writer forever (``_readers`` could never reach zero again).
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writer_thread: Optional[int] = None
        self._writers_waiting = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        me = threading.get_ident()
        depth = getattr(self._local, "read_depth", 0)
        with self._condition:
            if depth == 0 and self._writer_thread != me:
                while self._writer_active or self._writers_waiting:
                    self._condition.wait()
            self._readers += 1
        self._local.read_depth = depth + 1

    def release_read(self) -> None:
        depth = getattr(self._local, "read_depth", 0)
        if depth <= 0:
            raise RuntimeError(
                "release_read() without a matching acquire_read() on this "
                "thread")
        self._local.read_depth = depth - 1
        with self._condition:
            assert self._readers > 0, "reader count underflow"
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # writers
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer_active and self._writer_thread == me:
                raise RuntimeError("the write lock is not reentrant")
            if getattr(self._local, "read_depth", 0):
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock")
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self._writer_thread = me
            assert self._readers == 0, "writer admitted with active readers"

    def release_write(self) -> None:
        with self._condition:
            if not self._writer_active:
                raise RuntimeError(
                    "release_write() without a matching acquire_write()")
            if self._writer_thread != threading.get_ident():
                raise RuntimeError(
                    "release_write() from a thread that does not hold the "
                    "write lock")
            self._writer_active = False
            self._writer_thread = None
            self._condition.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
