"""Reader/writer coordination for the query service.

Query executions are readers: many run concurrently against the shared
database.  Invalidation-triggering operations routed through the service
(index DDL, knowledge registration) are writers: they wait for in-flight
executions to drain and block new ones while they mutate, so a running plan
never observes an index disappearing underneath it.  Writers are preferred —
a steady stream of queries cannot starve DDL.

Mutations performed *directly* on the :class:`~repro.datamodel.database.
Database` bypass this lock; they are still picked up through the version
counters at the next cache lookup, but the caller is responsible for not
mutating concurrently with executions (see DESIGN.md, thread-safety
assumptions).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    The read side is reentrant: a thread already holding a read lock may
    acquire it again even while a writer is queued — otherwise a query
    whose method implementation re-enters the service on the same thread
    (the nested-execution case :class:`~repro.service.prepared.BindingEnv`
    supports) would deadlock against a waiting writer.  The write side is
    not reentrant, and upgrading (write while holding read) is not
    supported.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        depth = getattr(self._local, "read_depth", 0)
        with self._condition:
            if depth == 0:
                while self._writer_active or self._writers_waiting:
                    self._condition.wait()
            self._readers += 1
        self._local.read_depth = depth + 1

    def release_read(self) -> None:
        self._local.read_depth = getattr(self._local, "read_depth", 1) - 1
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # writers
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
