"""The plan cache: optimized + compiled plans keyed by query shape.

A cached entry bundles everything the service needs to execute a query
shape: the analyzed query, the chosen logical/physical plans, the
:class:`~repro.service.prepared.PreparedExecutable`, and the version
snapshot it was prepared under.  Lookups validate the snapshot against the
database's :class:`~repro.datamodel.database.VersionClock` and the
service's knowledge version:

* ``schema`` / ``index`` / ``stats`` / knowledge mismatches invalidate
  strictly — a dropped index makes an index-scan plan unexecutable, new
  knowledge or schema changes can change both the plan space and its
  validity, and refreshed ``ANALYZE`` statistics change cost estimates and
  therefore which plan should have been chosen;
* ``data`` drift invalidates lazily: prepared plans read all state at
  execution time and therefore stay *correct* under data changes, but the
  cost-based plan choice goes stale, so an entry is evicted once the number
  of mutations since preparation exceeds ``reoptimize_fraction`` of the
  object count it was planned against (bulk loads re-optimize, single-row
  churn does not).

The cache is a bounded LRU and thread-safe; eviction and invalidation
counts are exposed for the service metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.algebra.operators import LogicalOperator
from repro.datamodel.database import Database
from repro.optimizer.search import OptimizationResult
from repro.physical.plans import PhysicalOperator
from repro.physical.profile import PlanProfile
from repro.service.prepared import PreparedExecutable
from repro.vql.analyzer import AnalyzedQuery

__all__ = ["CachedPlan", "CacheStatistics", "PlanCache"]


@dataclass
class CacheStatistics:
    """Counters describing the cache's behaviour since creation."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass
class CachedPlan:
    """One prepared query shape plus the versions it was planned under."""

    fingerprint: str
    analyzed: AnalyzedQuery
    output_ref: str
    logical_plan: LogicalOperator
    physical_plan: PhysicalOperator
    executable: PreparedExecutable
    optimize: bool
    optimization: Optional[OptimizationResult]
    schema_version: int
    index_version: int
    data_version: int
    stats_version: int
    knowledge_version: int
    object_count: int
    prepare_seconds: float = 0.0
    optimize_seconds: float = 0.0
    executions: int = 0
    #: armed profile watching the next execution for estimate/actual
    #: divergence (None once consumed by the feedback check — the
    #: executable is then swapped back to an uninstrumented build)
    feedback_profile: Optional[PlanProfile] = None
    #: the data version the profile was armed under; data drift past it
    #: re-arms profiling so post-drift executions are watched again
    feedback_data_version: int = 0


class PlanCache:
    """Bounded, version-validated LRU cache of :class:`CachedPlan` entries."""

    def __init__(self, capacity: int = 256,
                 reoptimize_fraction: float = 0.25):
        if capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.reoptimize_fraction = reoptimize_fraction
        self._entries: "OrderedDict[Hashable, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.statistics = CacheStatistics()

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable, database: Database,
               knowledge_version: int, record: bool = True) -> Optional[CachedPlan]:
        """Return the valid cached plan for *key*, or None.

        Stale entries (version mismatch, excessive data drift) are dropped
        on sight and counted as invalidations + misses.  ``record=False``
        skips the hit/miss counters (used for the double-checked lookup
        after waiting on another thread's build of the same shape).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if record:
                    self.statistics.misses += 1
                return None
            if not self._is_valid(entry, database, knowledge_version):
                del self._entries[key]
                self.statistics.invalidations += 1
                if record:
                    self.statistics.misses += 1
                return None
            self._entries.move_to_end(key)
            if record:
                self.statistics.hits += 1
            entry.executions += 1
            return entry

    def store(self, key: Hashable, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.statistics.inserts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1

    def invalidate_all(self) -> int:
        """Drop every entry (e.g. after knowledge registration)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.statistics.invalidations += dropped
            return dropped

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def _is_valid(self, entry: CachedPlan, database: Database,
                  knowledge_version: int) -> bool:
        versions = database.versions
        if entry.schema_version != versions.schema:
            return False
        if entry.index_version != versions.index:
            return False
        if entry.stats_version != versions.stats:
            return False
        if entry.knowledge_version != knowledge_version:
            return False
        drift = versions.data - entry.data_version
        if drift > self.reoptimize_fraction * max(entry.object_count, 1):
            return False
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def entries(self) -> list[CachedPlan]:
        with self._lock:
            return list(self._entries.values())

    def snapshot(self) -> dict[str, int]:
        """Size, capacity and behaviour counters in one consistent read
        (the feed behind the telemetry plan-cache gauges)."""
        with self._lock:
            return {"size": len(self._entries), "capacity": self.capacity,
                    **self.statistics.as_dict()}

    def __str__(self) -> str:
        stats = self.statistics
        return (f"PlanCache({len(self)}/{self.capacity} entries, "
                f"{stats.hits} hits, {stats.misses} misses, "
                f"{stats.invalidations} invalidations)")
