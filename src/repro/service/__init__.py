"""Prepared-query service layer.

The optimizer pays for semantic optimization once per query *shape*; this
package makes that a service-level guarantee:

* :mod:`repro.service.prepared` — compile a physical plan once into an
  executable whose expressions are closures over a thread-local binding
  environment, so one plan serves many executions with different
  bind-parameter values;
* :mod:`repro.service.fingerprint` — normalized structural fingerprints of
  analyzed queries (the plan-cache key);
* :mod:`repro.service.cache` — an LRU plan cache validated against the
  database's version counters (schema / index DDL / data drift) and the
  service's knowledge version;
* :mod:`repro.service.service` — :class:`QueryService`, the multi-client
  front end with a worker pool and per-query metrics.
"""

from repro.service.cache import CachedPlan, CacheStatistics, PlanCache
from repro.service.concurrency import ReadWriteLock
from repro.service.fingerprint import query_fingerprint
from repro.service.prepared import BindingEnv, PreparedExecutable, prepare_plan
from repro.service.service import (
    PreparedQuery,
    QueryMetrics,
    QueryService,
    ServiceMetrics,
    ServiceResult,
)

__all__ = [
    "BindingEnv",
    "CachedPlan",
    "CacheStatistics",
    "PlanCache",
    "PreparedExecutable",
    "PreparedQuery",
    "QueryMetrics",
    "QueryService",
    "ReadWriteLock",
    "ServiceMetrics",
    "ServiceResult",
    "prepare_plan",
    "query_fingerprint",
]
