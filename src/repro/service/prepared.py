"""Compile-once, execute-many physical plans.

:func:`repro.physical.executor.execute_plan` compiles every expression of a
plan on each call — fine for one-shot queries, wasted work for a plan served
from a cache thousands of times.  :func:`prepare_plan` hoists that work: the
plan is translated *once* into a tree of generator factories whose
expressions are already compiled closures, and each :meth:`PreparedExecutable.
run` call only instantiates fresh iterators.

Bind parameters compile into reads from a :class:`BindingEnv`, a
thread-local cell the executable fills for the duration of one ``run`` —
many threads can execute the same prepared plan concurrently with different
bindings.  Everything that touches database *state* (extensions, index
lookups, probe-set construction) is evaluated per run, never at prepare
time, so a prepared plan stays correct across data changes; only DDL
(dropping an index a plan scans) can break it, which the plan cache's
version counters guard against.

Row order, duplicate handling and work counters match the one-shot engines
exactly — the differential tests in ``tests/test_service.py`` hold this
executor to the same results as a fresh session.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping, Optional

from repro.algebra.expressions import Expression
from repro.datamodel.database import Database
from repro.datamodel.versioning import current_pin
from repro.errors import ExecutionError
from repro.physical.compiler import ExpressionCompiler
from repro.physical.evaluator import EMPTY_ROW, make_hashable
from repro.physical.executor import Row
from repro.physical.interpreter import _iterate_set, _require_index
from repro.physical.parallel import (
    merge_hash_join,
    run_filter_morsels,
    run_key_morsels,
    run_map_morsels,
)
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    IndexEqScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    ParallelHashJoin,
    ParallelIndexEqScan,
    ParallelIndexRangeScan,
    ParallelMap,
    ParallelScan,
    PhysicalOperator,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
)
from repro.telemetry.spans import child_span

__all__ = ["BindingEnv", "PreparedExecutable", "prepare_plan"]

#: a generator factory: each call opens a fresh row iterator
Source = Callable[[], Iterator[Row]]


class BindingEnv:
    """Thread-local bind-parameter values for one prepared plan.

    The compiled closures capture :meth:`resolve`; :meth:`push`/
    :meth:`restore` bracket one execution, saving the previous cell so that
    a method implementation that re-enters the service on the same thread
    does not clobber the outer execution's bindings.
    """

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = threading.local()

    def push(self, bindings: Optional[Mapping[str, Any]]) -> Any:
        previous = getattr(self._local, "bindings", None)
        self._local.bindings = bindings
        return previous

    def restore(self, previous: Any) -> None:
        self._local.bindings = previous

    def current(self) -> Optional[Mapping[str, Any]]:
        """The bindings active on the calling thread (for propagation into
        parallel worker threads)."""
        return getattr(self._local, "bindings", None)

    def resolve(self, key: str) -> Any:
        bindings = getattr(self._local, "bindings", None)
        if bindings is None or key not in bindings:
            display = f"?{key}" if key.isdigit() else f":{key}"
            raise ExecutionError(
                f"bind parameter {display} has no bound value")
        return bindings[key]


class PreparedExecutable:
    """A physical plan with all expressions compiled, ready to run.

    *profile* (a :class:`repro.physical.profile.PlanProfile`) enables the
    per-operator EXPLAIN ANALYZE counters.  A profiled executable shares its
    profile across runs (counters accumulate), so the service builds a fresh
    instance per ``EXPLAIN ANALYZE`` instead of profiling cached plans.
    """

    def __init__(self, plan: PhysicalOperator, database: Database,
                 profile=None):
        self.plan = plan
        self.database = database
        self.profile = profile
        self._env = BindingEnv()
        compiler = ExpressionCompiler(database,
                                      parameter_resolver=self._env.resolve,
                                      profile=profile)
        with child_span("compile", profiled=profile is not None):
            self._root = _build(plan, database, compiler, self._env)

    def run(self, bindings: Optional[Mapping[str, Any]] = None) -> list[Row]:
        """Execute the plan with *bindings* and return the result rows.

        The result is fully materialized before the bindings are released,
        so the returned list never depends on the (thread-local) environment.
        """
        with self.binding_scope(bindings):
            return list(self._root())

    def open(self) -> Iterator[Row]:
        """A fresh, *lazy* row iterator over the plan (the streaming feed
        behind the statement API's cursor).

        The iterator performs no database work until it is advanced, and it
        is **unbracketed**: the caller must activate the bindings around
        every advance via :meth:`binding_scope`, e.g.::

            rows = executable.open()
            with executable.binding_scope({"n": 3}):
                first = next(rows)

        This keeps the thread-local binding cell scoped to the moments the
        plan actually evaluates, so interleaved ``run`` calls (or other
        streams) on the same thread cannot observe a foreign binding set.
        """
        return self._root()

    @contextmanager
    def binding_scope(self, bindings: Optional[Mapping[str, Any]]):
        """Activate *bindings* on the calling thread for the ``with`` body."""
        previous = self._env.push(bindings)
        try:
            yield
        finally:
            self._env.restore(previous)


def prepare_plan(plan: PhysicalOperator, database: Database,
                 profile=None) -> PreparedExecutable:
    """Compile *plan* once for repeated execution against *database*.

    With *profile* the executable runs instrumented (see
    :class:`PreparedExecutable`) — the service uses this to watch the first
    execution of a plan for estimate/actual divergence.
    """
    return PreparedExecutable(plan, database, profile=profile)


# ----------------------------------------------------------------------
# builders: compile at build time, touch database state at run time
# ----------------------------------------------------------------------
def _build(plan: PhysicalOperator, database: Database,
           compiler: ExpressionCompiler,
           env: BindingEnv) -> Source:
    builder = _BUILDERS.get(type(plan))
    if builder is None:
        raise ExecutionError(f"unknown physical operator {plan!r}")
    source = builder(plan, database, compiler, env)
    profile = compiler.profile
    if profile is None:
        return source

    def profiled() -> Iterator[Row]:
        return profile.wrap(plan, source())

    return profiled


def _class_scan(plan: ClassScan, database: Database,
                compiler: ExpressionCompiler,
                env: BindingEnv) -> Source:
    ref = plan.ref
    class_name = plan.class_name

    def run() -> Iterator[Row]:
        for oid in database.extension(class_name):
            yield {ref: oid}

    return run


def _index_eq_scan(plan: IndexEqScan, database: Database,
                   compiler: ExpressionCompiler,
                   env: BindingEnv) -> Source:
    ref = plan.ref
    if isinstance(plan.key, Expression):
        key_fn = compiler.compile(plan.key)
    else:
        constant_key = plan.key
        key_fn = lambda row: constant_key  # noqa: E731 - tiny constant closure

    def run() -> Iterator[Row]:
        index = _require_index(plan, database)
        key = key_fn(EMPTY_ROW)
        database.statistics.record_index_lookup()
        for oid in sorted(index.lookup(key)):
            yield {ref: oid}

    return run


def _index_range_scan(plan: IndexRangeScan, database: Database,
                      compiler: ExpressionCompiler,
                      env: BindingEnv) -> Source:
    ref = plan.ref

    def run() -> Iterator[Row]:
        index = _require_index(plan, database)
        if index.kind != "sorted":
            raise ExecutionError(
                f"{plan.describe()} requires a sorted index, found "
                f"{index.kind!r}")
        database.statistics.record_index_lookup()
        oids = index.range(plan.low, plan.high,
                           include_low=plan.include_low,
                           include_high=plan.include_high)
        for oid in sorted(oids):
            yield {ref: oid}

    return run


def _expression_set_scan(plan: ExpressionSetScan, database: Database,
                         compiler: ExpressionCompiler,
                         env: BindingEnv) -> Source:
    value_fn = compiler.compile(plan.expression)
    ref = plan.ref

    def run() -> Iterator[Row]:
        for element in _iterate_set(value_fn(EMPTY_ROW), plan):
            yield {ref: element}

    return run


def _filter(plan: Filter, database: Database,
            compiler: ExpressionCompiler,
            env: BindingEnv) -> Source:
    predicate = compiler.compile_predicate(plan.condition)
    source = _build(plan.input, database, compiler, env)

    def run() -> Iterator[Row]:
        for row in source():
            if predicate(row):
                yield row

    return run


def _set_probe_filter(plan: SetProbeFilter, database: Database,
                      compiler: ExpressionCompiler,
                      env: BindingEnv) -> Source:
    value_fn = compiler.compile(plan.set_expression)
    source = _build(plan.input, database, compiler, env)
    ref = plan.ref

    def run() -> Iterator[Row]:
        # The probe set depends on database state (and possibly parameters):
        # build it per execution, exactly like the one-shot engines.
        members = {make_hashable(v)
                   for v in _iterate_set(value_fn(EMPTY_ROW), plan)}
        for row in source():
            if make_hashable(row.get(ref)) in members:
                yield row

    return run


def _map_eval(plan: MapEval, database: Database,
              compiler: ExpressionCompiler,
              env: BindingEnv) -> Source:
    expression = compiler.compile(plan.expression)
    source = _build(plan.input, database, compiler, env)
    ref = plan.ref

    def run() -> Iterator[Row]:
        for row in source():
            yield {**row, ref: expression(row)}

    return run


def _flatten_eval(plan: FlattenEval, database: Database,
                  compiler: ExpressionCompiler,
                  env: BindingEnv) -> Source:
    expression = compiler.compile(plan.expression)
    source = _build(plan.input, database, compiler, env)
    ref = plan.ref

    def run() -> Iterator[Row]:
        for row in source():
            for element in _iterate_set(expression(row), plan, allow_none=True):
                yield {**row, ref: element}

    return run


def _project(plan: ProjectOp, database: Database,
             compiler: ExpressionCompiler,
             env: BindingEnv) -> Source:
    kept = plan.kept
    source = _build(plan.input, database, compiler, env)

    def run() -> Iterator[Row]:
        seen: set[Any] = set()
        for row in source():
            key = tuple(make_hashable(row.get(ref)) for ref in kept)
            if key not in seen:
                seen.add(key)
                yield {ref: row.get(ref) for ref in kept}

    return run


def _nested_loop_join(plan: NestedLoopJoin, database: Database,
                      compiler: ExpressionCompiler,
                      env: BindingEnv) -> Source:
    predicate = compiler.compile_predicate(plan.condition)
    left_source = _build(plan.left, database, compiler, env)
    right_source = _build(plan.right, database, compiler, env)

    def run() -> Iterator[Row]:
        right_rows = list(right_source())
        for left_row in left_source():
            for right_row in right_rows:
                combined = {**left_row, **right_row}
                if predicate(combined):
                    yield combined

    return run


def _hash_join(plan: HashJoin, database: Database,
               compiler: ExpressionCompiler,
               env: BindingEnv) -> Source:
    left_key = compiler.compile(plan.left_key)
    right_key = compiler.compile(plan.right_key)
    left_source = _build(plan.left, database, compiler, env)
    right_source = _build(plan.right, database, compiler, env)

    def run() -> Iterator[Row]:
        table: dict[Any, list[Row]] = defaultdict(list)
        for right_row in right_source():
            table[make_hashable(right_key(right_row))].append(right_row)
        for left_row in left_source():
            matches = table.get(make_hashable(left_key(left_row)))
            if matches:
                for right_row in matches:
                    yield {**left_row, **right_row}

    return run


def _index_nested_loop_join(plan: IndexNestedLoopJoin, database: Database,
                            compiler: ExpressionCompiler,
                            env: BindingEnv) -> Source:
    left_key = compiler.compile(plan.left_key)
    left_source = _build(plan.left, database, compiler, env)
    ref = plan.ref

    def run() -> Iterator[Row]:
        # The index handle is resolved per execution (DDL between runs is
        # guarded by the plan cache's index version, but stay defensive).
        index = _require_index(plan, database)
        statistics = database.statistics
        for left_row in left_source():
            statistics.record_index_lookup()
            for oid in sorted(index.lookup(left_key(left_row))):
                yield {**left_row, ref: oid}

    return run


def _natural_merge_join(plan: NaturalMergeJoin, database: Database,
                        compiler: ExpressionCompiler,
                        env: BindingEnv) -> Source:
    common = plan.common_refs()
    left_source = _build(plan.left, database, compiler, env)
    right_source = _build(plan.right, database, compiler, env)

    def run() -> Iterator[Row]:
        right_rows = list(right_source())
        if not common:
            for left_row in left_source():
                for right_row in right_rows:
                    yield {**left_row, **right_row}
            return
        table: dict[Any, list[Row]] = defaultdict(list)
        for right_row in right_rows:
            key = tuple(make_hashable(right_row.get(ref)) for ref in common)
            table[key].append(right_row)
        for left_row in left_source():
            key = tuple(make_hashable(left_row.get(ref)) for ref in common)
            matches = table.get(key)
            if matches:
                for right_row in matches:
                    yield {**left_row, **right_row}

    return run


def _union(plan: UnionOp, database: Database,
           compiler: ExpressionCompiler,
           env: BindingEnv) -> Source:
    left_source = _build(plan.left, database, compiler, env)
    right_source = _build(plan.right, database, compiler, env)

    def run() -> Iterator[Row]:
        seen: set[Any] = set()
        for source in (left_source, right_source):
            for row in source():
                key = make_hashable(row)
                if key not in seen:
                    seen.add(key)
                    yield row

    return run


def _diff(plan: DiffOp, database: Database,
          compiler: ExpressionCompiler,
          env: BindingEnv) -> Source:
    left_source = _build(plan.left, database, compiler, env)
    right_source = _build(plan.right, database, compiler, env)

    def run() -> Iterator[Row]:
        right_keys = {make_hashable(row) for row in right_source()}
        seen: set[Any] = set()
        for row in left_source():
            key = make_hashable(row)
            if key in seen:
                continue
            seen.add(key)
            if key not in right_keys:
                yield row

    return run


# ----------------------------------------------------------------------
# parallel operators: the operator bodies are shared with the compiled
# executor (repro.physical.parallel); the prepared engine additionally
# captures the run thread's bindings and re-pushes them inside every
# worker, so compiled Parameter closures resolve correctly off-thread
# ----------------------------------------------------------------------
def _bound_worker(env: BindingEnv
                  ) -> Callable[[Callable[[list], list]], Callable[[list], list]]:
    """A worker wrapper propagating the submitting thread's bindings and
    snapshot pin, so every morsel observes the same snapshot (and resolves
    the same parameters) as the coordinating statement."""
    bindings = env.current()
    pin = current_pin()

    def wrap(work: Callable[[list], list]) -> Callable[[list], list]:
        def bound(morsel: list) -> list:
            previous = env.push(bindings)
            try:
                if pin is not None:
                    with pin.activate():
                        return work(morsel)
                return work(morsel)
            finally:
                env.restore(previous)

        return bound

    return wrap


def _parallel_scan(plan: ParallelScan, database: Database,
                   compiler: ExpressionCompiler,
                   env: BindingEnv) -> Source:
    predicate = (compiler.compile_predicate(plan.condition)
                 if plan.condition is not None else None)
    ref = plan.ref
    class_name = plan.class_name
    degree = plan.degree

    def run() -> Iterator[Row]:
        partitions = database.extension_partitions(class_name)
        yield from run_filter_morsels(partitions, predicate, ref, degree,
                                      wrap=_bound_worker(env))

    return run


def _parallel_index_eq_scan(plan: ParallelIndexEqScan, database: Database,
                            compiler: ExpressionCompiler,
                            env: BindingEnv) -> Source:
    ref = plan.ref
    degree = plan.degree
    if isinstance(plan.key, Expression):
        key_fn = compiler.compile(plan.key)
    else:
        constant_key = plan.key
        key_fn = lambda row: constant_key  # noqa: E731 - tiny constant closure
    predicate = (compiler.compile_predicate(plan.condition)
                 if plan.condition is not None else None)

    def run() -> Iterator[Row]:
        index = _require_index(plan, database)
        key = key_fn(EMPTY_ROW)
        database.statistics.record_index_lookup()
        yield from run_filter_morsels([sorted(index.lookup(key))], predicate,
                                      ref, degree, wrap=_bound_worker(env))

    return run


def _parallel_index_range_scan(plan: ParallelIndexRangeScan,
                               database: Database,
                               compiler: ExpressionCompiler,
                               env: BindingEnv) -> Source:
    ref = plan.ref
    degree = plan.degree
    predicate = (compiler.compile_predicate(plan.condition)
                 if plan.condition is not None else None)

    def run() -> Iterator[Row]:
        index = _require_index(plan, database)
        if index.kind != "sorted":
            raise ExecutionError(
                f"{plan.describe()} requires a sorted index, found "
                f"{index.kind!r}")
        database.statistics.record_index_lookup()
        oids = index.range(plan.low, plan.high,
                           include_low=plan.include_low,
                           include_high=plan.include_high)
        yield from run_filter_morsels([sorted(oids)], predicate, ref, degree,
                                      wrap=_bound_worker(env))

    return run


def _parallel_map(plan: ParallelMap, database: Database,
                  compiler: ExpressionCompiler,
                  env: BindingEnv) -> Source:
    expression = compiler.compile(plan.expression)
    source = _build(plan.input, database, compiler, env)
    ref = plan.ref
    degree = plan.degree

    def run() -> Iterator[Row]:
        rows = list(source())
        yield from run_map_morsels(rows, expression, ref, degree,
                                   wrap=_bound_worker(env))

    return run


def _parallel_hash_join(plan: ParallelHashJoin, database: Database,
                        compiler: ExpressionCompiler,
                        env: BindingEnv) -> Source:
    left_key = compiler.compile(plan.left_key)
    right_key = compiler.compile(plan.right_key)
    left_source = _build(plan.left, database, compiler, env)
    right_source = _build(plan.right, database, compiler, env)
    degree = plan.degree

    def run() -> Iterator[Row]:
        wrap = _bound_worker(env)
        right_rows = list(right_source())
        right_keys = run_key_morsels(right_rows, right_key, degree, wrap=wrap)
        left_rows = list(left_source())
        left_keys = run_key_morsels(left_rows, left_key, degree, wrap=wrap)
        yield from merge_hash_join(left_rows, left_keys,
                                   right_rows, right_keys)

    return run


_BUILDERS = {
    ClassScan: _class_scan,
    IndexEqScan: _index_eq_scan,
    IndexRangeScan: _index_range_scan,
    ExpressionSetScan: _expression_set_scan,
    Filter: _filter,
    SetProbeFilter: _set_probe_filter,
    MapEval: _map_eval,
    FlattenEval: _flatten_eval,
    ProjectOp: _project,
    NestedLoopJoin: _nested_loop_join,
    IndexNestedLoopJoin: _index_nested_loop_join,
    HashJoin: _hash_join,
    NaturalMergeJoin: _natural_merge_join,
    UnionOp: _union,
    DiffOp: _diff,
    ParallelScan: _parallel_scan,
    ParallelIndexEqScan: _parallel_index_eq_scan,
    ParallelIndexRangeScan: _parallel_index_range_scan,
    ParallelMap: _parallel_map,
    ParallelHashJoin: _parallel_hash_join,
}
