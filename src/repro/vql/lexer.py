"""Tokenizer for VQL query text.

The lexer recognises the subset of VQL exercised by the paper: keywords
(ACCESS, FROM, WHERE, IN, IS-IN, IS-SUBSET, AND, OR, NOT, TRUE, FALSE,
INTERSECTION, UNION, DIFFERENCE), identifiers, string and numeric literals,
the method-call arrow (``->`` or the typographic ``→``), path dots, brackets,
the comparison/arithmetic operators, bind-parameter markers
(``?`` / ``?3`` positional, ``:name`` named — the ``:`` doubles as the tuple
constructor separator, the parser disambiguates by context), and the plain
``=`` used by ``UPDATE ... SET`` assignments.  The DDL/DML/utility
statement words (CREATE, INSERT, SET, ANALYZE, EXPLAIN, ...) are
deliberately *not* keywords — the statement parser matches them
case-insensitively from identifier tokens so they stay usable as ordinary
identifiers inside queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import VQLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "ACCESS", "FROM", "WHERE", "IN", "AND", "OR", "NOT", "TRUE", "FALSE",
    "INTERSECTION", "UNION", "DIFFERENCE", "IS",
}

#: multi-character operators, longest first so prefixes do not shadow them
_MULTI_CHAR = ["==", "!=", "<=", ">=", "->"]
_SINGLE_CHAR = list("()[]{}.,:<>+-*/?=")


@dataclass(frozen=True)
class Token:
    """One lexical token with its position for error reporting."""

    kind: str          # KEYWORD, IDENT, STRING, NUMBER, OP, EOF
    text: str
    position: int
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "OP" and self.text == op

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, raising :class:`VQLSyntaxError` on illegal input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    position = 0
    line = 1
    column = 1
    length = len(text)

    def make(kind: str, token_text: str) -> Token:
        return Token(kind, token_text, position, line, column)

    while position < length:
        char = text[position]

        if char in " \t\r":
            position += 1
            column += 1
            continue
        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue
        # comments: /* ... */ (VML style) and -- to end of line
        if text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end < 0:
                raise VQLSyntaxError("unterminated comment", position, line,
                                     column, source=text)
            skipped = text[position:end + 2]
            newlines = skipped.count("\n")
            line += newlines
            if newlines:
                # column restarts after the comment's last newline
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            position = end + 2
            continue
        if text.startswith("--", position):
            end = text.find("\n", position)
            position = length if end < 0 else end
            continue

        # the typographic arrow used in the paper
        if char == "→":
            yield make("OP", "->")
            position += 1
            column += 1
            continue

        if char in "'\"":
            end = position + 1
            while end < length and text[end] != char:
                end += 1
            if end >= length:
                raise VQLSyntaxError("unterminated string literal",
                                     position, line, column, source=text)
            literal = text[position + 1:end]
            yield make("STRING", literal)
            column += end + 1 - position
            position = end + 1
            continue

        if char.isdigit():
            end = position
            seen_dot = False
            while end < length and (text[end].isdigit() or
                                    (text[end] == "." and not seen_dot and
                                     end + 1 < length and text[end + 1].isdigit())):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            literal = text[position:end]
            yield make("NUMBER", literal)
            column += end - position
            position = end
            continue

        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            upper = word.upper()
            # IS-IN / IS-SUBSET are hyphenated keywords; join them here so the
            # parser sees a single operator token.
            if upper == "IS" and text[end:end + 1] == "-":
                rest_end = end + 1
                while rest_end < length and (text[rest_end].isalnum() or text[rest_end] == "_"):
                    rest_end += 1
                rest = text[end + 1:rest_end].upper()
                if rest in ("IN", "SUBSET"):
                    yield make("OP", f"IS-{rest}")
                    column += rest_end - position
                    position = rest_end
                    continue
            if upper in KEYWORDS:
                yield make("KEYWORD", upper)
            else:
                yield make("IDENT", word)
            column += end - position
            position = end
            continue

        matched = False
        for op in _MULTI_CHAR:
            if text.startswith(op, position):
                yield make("OP", op)
                position += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue

        if char in _SINGLE_CHAR:
            yield make("OP", char)
            position += 1
            column += 1
            continue

        raise VQLSyntaxError(f"illegal character {char!r}", position, line,
                             column, source=text)

    yield Token("EOF", "", position, line, column)
