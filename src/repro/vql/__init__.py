"""VQL — the declarative statement language front-end.

Exports the parser (:func:`parse_query`, :func:`parse_expression`,
:func:`parse_statement`), the AST (:class:`Query`,
:class:`RangeDeclaration`, the DDL/DML statement nodes) and the analyzer
(:func:`analyze_query`, :class:`AnalyzedQuery`, :func:`analyze_statement`,
:class:`AnalyzedStatement`).
"""

from repro.vql.analyzer import (
    AnalyzedQuery,
    AnalyzedStatement,
    Analyzer,
    analyze_query,
    analyze_statement,
    class_of_type,
    infer_expression_type,
    resolve_class_references,
)
from repro.vql.ast import (
    AnalyzeStatement,
    CreateClassStatement,
    CreateIndexStatement,
    DeleteStatement,
    DropIndexStatement,
    ExplainStatement,
    InsertStatement,
    PropertySpec,
    Query,
    RangeDeclaration,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.vql.bindings import bind_query, resolve_bindings
from repro.vql.lexer import Token, tokenize
from repro.vql.parser import Parser, parse_expression, parse_query, parse_statement

__all__ = [
    "bind_query",
    "resolve_bindings",
    "AnalyzedQuery",
    "AnalyzedStatement",
    "Analyzer",
    "analyze_query",
    "analyze_statement",
    "class_of_type",
    "infer_expression_type",
    "resolve_class_references",
    "Query",
    "RangeDeclaration",
    "Statement",
    "SelectStatement",
    "PropertySpec",
    "CreateClassStatement",
    "CreateIndexStatement",
    "DropIndexStatement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "AnalyzeStatement",
    "ExplainStatement",
    "Token",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_query",
    "parse_statement",
]
