"""VQL — the declarative query language front-end.

Exports the parser (:func:`parse_query`, :func:`parse_expression`), the AST
(:class:`Query`, :class:`RangeDeclaration`) and the analyzer
(:func:`analyze_query`, :class:`AnalyzedQuery`).
"""

from repro.vql.analyzer import (
    AnalyzedQuery,
    Analyzer,
    analyze_query,
    class_of_type,
    infer_expression_type,
    resolve_class_references,
)
from repro.vql.ast import Query, RangeDeclaration
from repro.vql.bindings import bind_query, resolve_bindings
from repro.vql.lexer import Token, tokenize
from repro.vql.parser import Parser, parse_expression, parse_query

__all__ = [
    "bind_query",
    "resolve_bindings",
    "AnalyzedQuery",
    "Analyzer",
    "analyze_query",
    "class_of_type",
    "infer_expression_type",
    "resolve_class_references",
    "Query",
    "RangeDeclaration",
    "Token",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_query",
]
