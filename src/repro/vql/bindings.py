"""Resolution of user-supplied bind-parameter values.

A query carries its parameter keys in first-occurrence order
(:attr:`repro.vql.analyzer.AnalyzedQuery.parameters`).  Callers supply
values either positionally (a sequence — value *i* binds parameter ``?i+1``)
or by name (a mapping — named parameters bind by identifier, positional
parameters by their decimal key).  :func:`resolve_bindings` turns either form
into the canonical ``key -> value`` mapping and rejects incomplete or
surplus bindings up front, so execution never fails halfway through a plan
on an unbound parameter.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence, Union

from repro.algebra.expressions import bind_parameters
from repro.errors import BindingError
from repro.vql.ast import Query, RangeDeclaration

__all__ = ["ParameterValues", "resolve_bindings", "bind_query"]

#: accepted shapes for user-supplied parameter values
ParameterValues = Union[Sequence[Any], Mapping[str, Any], None]


def resolve_bindings(parameter_keys: Sequence[str],
                     values: ParameterValues) -> dict[str, Any]:
    """Match *values* against *parameter_keys* and return ``key -> value``.

    Raises :class:`BindingError` when a parameter stays unbound, a named
    value matches no parameter, or more positional values are supplied than
    there are positions.
    """
    keys = list(parameter_keys)
    if values is None:
        if keys:
            raise BindingError(
                f"query has {len(keys)} bind parameter(s) "
                f"({', '.join(_display(k) for k in keys)}) but no values "
                "were supplied")
        return {}

    if isinstance(values, Mapping):
        mapping = dict(values)
        unknown = [name for name in mapping if name not in keys]
        if unknown:
            raise BindingError(
                f"value(s) supplied for unknown parameter(s) "
                f"{', '.join(sorted(unknown))}")
        missing = [k for k in keys if k not in mapping]
        if missing:
            raise BindingError(
                f"missing value(s) for parameter(s) "
                f"{', '.join(_display(k) for k in missing)}")
        return mapping

    if isinstance(values, (str, bytes)):
        raise BindingError(
            "positional parameter values must be a sequence of values, "
            "not a single string")

    supplied = list(values)
    positions = sorted(int(k) for k in keys if k.isdigit())
    named = [k for k in keys if not k.isdigit()]
    if named:
        raise BindingError(
            f"named parameter(s) {', '.join(_display(k) for k in named)} "
            "cannot be bound positionally — supply a mapping")
    if positions and positions[-1] > len(supplied):
        missing = [f"?{p}" for p in positions if p > len(supplied)]
        raise BindingError(
            f"missing value(s) for parameter(s) {', '.join(missing)}")
    if len(supplied) > (positions[-1] if positions else 0):
        raise BindingError(
            f"{len(supplied)} positional value(s) supplied but the query "
            f"has only {len(positions)} positional parameter(s)")
    return {str(position): supplied[position - 1] for position in positions}


def bind_query(query: Query, bindings: Mapping[str, Any]) -> Query:
    """Substitute *bindings* into every clause of *query* (parameters become
    :class:`~repro.algebra.expressions.Const` literals)."""
    access = bind_parameters(query.access, bindings)
    ranges = tuple(
        RangeDeclaration(decl.variable, bind_parameters(decl.source, bindings))
        for decl in query.ranges)
    where = None if query.where is None else bind_parameters(query.where, bindings)
    return Query(access=access, ranges=ranges, where=where)


def _display(key: str) -> str:
    return f"?{key}" if key.isdigit() else f":{key}"
