"""VQL abstract syntax tree.

A VQL query has the shape (Section 2.2 of the paper)::

    ACCESS expr(x1,...,xn)
    FROM x1 IN S1, ..., xn IN Sn
    WHERE cond(x1,...,xn)

Range sources ``Si`` are either class names or expressions over previously
declared range variables (dependent ranges such as
``p IN d->paragraphs()``).  Expression nodes are shared with the query
algebra (:mod:`repro.algebra.expressions`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.algebra.expressions import (
    ClassExtent,
    Expression,
    free_vars,
)

__all__ = ["RangeDeclaration", "Query"]


@dataclass(frozen=True)
class RangeDeclaration:
    """One ``x IN source`` entry of the FROM clause."""

    variable: str
    source: Expression

    def is_class_range(self) -> bool:
        """True when the source is a plain class extension."""
        return isinstance(self.source, ClassExtent)

    def depends_on(self) -> set[str]:
        """Names of range variables this declaration depends on."""
        if self.is_class_range():
            return set()
        return free_vars(self.source)

    def __str__(self) -> str:
        return f"{self.variable} IN {self.source}"


@dataclass(frozen=True)
class Query:
    """A complete VQL query."""

    access: Expression
    ranges: tuple[RangeDeclaration, ...]
    where: Optional[Expression] = None

    @property
    def range_variables(self) -> tuple[str, ...]:
        return tuple(decl.variable for decl in self.ranges)

    def range_for(self, variable: str) -> RangeDeclaration:
        for decl in self.ranges:
            if decl.variable == variable:
                return decl
        raise KeyError(variable)

    def __str__(self) -> str:
        text = f"ACCESS {self.access}\nFROM " + ", ".join(str(r) for r in self.ranges)
        if self.where is not None:
            text += f"\nWHERE {self.where}"
        return text
