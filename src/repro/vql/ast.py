"""VQL abstract syntax tree.

A VQL query has the shape (Section 2.2 of the paper)::

    ACCESS expr(x1,...,xn)
    FROM x1 IN S1, ..., xn IN Sn
    WHERE cond(x1,...,xn)

Range sources ``Si`` are either class names or expressions over previously
declared range variables (dependent ranges such as
``p IN d->paragraphs()``).  Expression nodes are shared with the query
algebra (:mod:`repro.algebra.expressions`).

Beyond queries the module defines the **statement** nodes of the unified
statement API: DDL (``CREATE CLASS``, ``CREATE/DROP INDEX``) and DML
(``INSERT``, ``UPDATE``, ``DELETE``) share the expression grammar with
queries, so DML values and WHERE clauses may carry bind parameters and the
router can plan mutation predicates through the full optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.algebra.expressions import (
    ClassExtent,
    Expression,
    free_vars,
)

__all__ = [
    "RangeDeclaration",
    "Query",
    "Statement",
    "SelectStatement",
    "PropertySpec",
    "CreateClassStatement",
    "CreateIndexStatement",
    "DropIndexStatement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "AnalyzeStatement",
    "ExplainStatement",
    "BeginStatement",
    "CommitStatement",
    "RollbackStatement",
    "DEFAULT_DML_ALIAS",
]

#: range variable used by UPDATE/DELETE when the statement declares no alias
DEFAULT_DML_ALIAS = "this"


@dataclass(frozen=True)
class RangeDeclaration:
    """One ``x IN source`` entry of the FROM clause."""

    variable: str
    source: Expression

    def is_class_range(self) -> bool:
        """True when the source is a plain class extension."""
        return isinstance(self.source, ClassExtent)

    def depends_on(self) -> set[str]:
        """Names of range variables this declaration depends on."""
        if self.is_class_range():
            return set()
        return free_vars(self.source)

    def __str__(self) -> str:
        return f"{self.variable} IN {self.source}"


@dataclass(frozen=True)
class Query:
    """A complete VQL query."""

    access: Expression
    ranges: tuple[RangeDeclaration, ...]
    where: Optional[Expression] = None

    @property
    def range_variables(self) -> tuple[str, ...]:
        return tuple(decl.variable for decl in self.ranges)

    def range_for(self, variable: str) -> RangeDeclaration:
        for decl in self.ranges:
            if decl.variable == variable:
                return decl
        raise KeyError(variable)

    def __str__(self) -> str:
        text = f"ACCESS {self.access}\nFROM " + ", ".join(str(r) for r in self.ranges)
        if self.where is not None:
            text += f"\nWHERE {self.where}"
        return text


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Statement:
    """Base class of every parseable statement (queries included)."""


@dataclass(frozen=True)
class SelectStatement(Statement):
    """An ``ACCESS ... FROM ... WHERE ...`` query as a statement."""

    query: Query

    def __str__(self) -> str:
        return str(self.query)


@dataclass(frozen=True)
class PropertySpec:
    """One ``name: TYPE`` entry of a ``CREATE CLASS`` property list.

    ``type_name`` is either a primitive type name (STRING, INT, REAL, BOOL,
    ANY) or a class name; ``is_set`` marks the ``{TYPE}`` set constructor.
    Resolution against the schema happens in the statement analyzer.
    """

    name: str
    type_name: str
    is_set: bool = False

    def __str__(self) -> str:
        rendered = "{" + self.type_name + "}" if self.is_set else self.type_name
        return f"{self.name}: {rendered}"


@dataclass(frozen=True)
class CreateClassStatement(Statement):
    """``CREATE CLASS Name [ISA Super] (prop: TYPE, ...)``."""

    class_name: str
    superclass: Optional[str] = None
    properties: tuple[PropertySpec, ...] = ()

    def __str__(self) -> str:
        text = f"CREATE CLASS {self.class_name}"
        if self.superclass is not None:
            text += f" ISA {self.superclass}"
        if self.properties:
            text += " (" + ", ".join(str(p) for p in self.properties) + ")"
        return text


@dataclass(frozen=True)
class CreateIndexStatement(Statement):
    """``CREATE [HASH|SORTED|TEXT] INDEX ON Class(prop)`` (default HASH)."""

    kind: str  # "hash" | "sorted" | "text"
    class_name: str
    prop: str

    def __str__(self) -> str:
        return (f"CREATE {self.kind.upper()} INDEX "
                f"ON {self.class_name}({self.prop})")


@dataclass(frozen=True)
class DropIndexStatement(Statement):
    """``DROP [TEXT] INDEX ON Class(prop)``."""

    kind: str  # "index" (hash or sorted) | "text"
    class_name: str
    prop: str

    def __str__(self) -> str:
        prefix = "DROP TEXT INDEX" if self.kind == "text" else "DROP INDEX"
        return f"{prefix} ON {self.class_name}({self.prop})"


@dataclass(frozen=True)
class InsertStatement(Statement):
    """``INSERT INTO Class (p1, ..., pn) VALUES (e1, ..., en)``."""

    class_name: str
    assignments: tuple[tuple[str, Expression], ...]

    def __str__(self) -> str:
        names = ", ".join(name for name, _ in self.assignments)
        values = ", ".join(str(expr) for _, expr in self.assignments)
        return f"INSERT INTO {self.class_name} ({names}) VALUES ({values})"


@dataclass(frozen=True)
class UpdateStatement(Statement):
    """``UPDATE Class [alias] SET prop = expr, ... [WHERE cond]``.

    SET expressions and the WHERE condition may reference *alias* (the
    object being updated); the router plans the WHERE clause as a query so
    it can use index access paths.
    """

    class_name: str
    alias: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None

    def __str__(self) -> str:
        sets = ", ".join(f"{prop} = {expr}" for prop, expr in self.assignments)
        text = f"UPDATE {self.class_name} {self.alias} SET {sets}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


@dataclass(frozen=True)
class DeleteStatement(Statement):
    """``DELETE FROM Class [alias] [WHERE cond]``."""

    class_name: str
    alias: str
    where: Optional[Expression] = None

    def __str__(self) -> str:
        text = f"DELETE FROM {self.class_name} {self.alias}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


@dataclass(frozen=True)
class AnalyzeStatement(Statement):
    """``ANALYZE [Class]`` — refresh the optimizer-statistics catalog.

    Without a class name, statistics are collected for every class of the
    schema.  The statement bumps the database's ``stats`` version, evicting
    every cached plan so the next execution re-optimizes against the fresh
    histograms and calibrated method costs.
    """

    class_name: Optional[str] = None

    def __str__(self) -> str:
        return ("ANALYZE" if self.class_name is None
                else f"ANALYZE {self.class_name}")


@dataclass(frozen=True)
class ExplainStatement(Statement):
    """``EXPLAIN [ANALYZE] <statement>`` — describe (and optionally run)
    the target statement's plan.

    Plain ``EXPLAIN`` renders the chosen plan without executing it; with
    ``ANALYZE`` the plan is executed under per-operator instrumentation and
    the report shows estimated next to actual cardinalities.  For
    ``UPDATE``/``DELETE`` targets only the derived WHERE-query is planned
    (and, under ``ANALYZE``, executed) — the mutation itself never applies.
    """

    target: Statement
    analyze: bool = False

    def __str__(self) -> str:
        prefix = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{prefix} {self.target}"


@dataclass(frozen=True)
class BeginStatement(Statement):
    """``BEGIN [TRANSACTION | WORK]`` — open an explicit transaction.

    Every statement until the matching ``COMMIT``/``ROLLBACK`` reads the
    snapshot taken at ``BEGIN``; mutations are buffered in the transaction's
    write set and validated first-writer-wins at commit.
    """

    def __str__(self) -> str:
        return "BEGIN"


@dataclass(frozen=True)
class CommitStatement(Statement):
    """``COMMIT [TRANSACTION | WORK]`` — validate and atomically apply the
    open transaction, or raise :class:`~repro.errors.TransactionConflictError`
    (rolling the transaction back) when validation fails."""

    def __str__(self) -> str:
        return "COMMIT"


@dataclass(frozen=True)
class RollbackStatement(Statement):
    """``ROLLBACK [TRANSACTION | WORK]`` — discard the open transaction.

    Nothing was applied early, so rolling back undoes nothing: the buffered
    write set is dropped and the BEGIN snapshot is released.
    """

    def __str__(self) -> str:
        return "ROLLBACK"
