"""Recursive-descent parser for VQL.

Produces the raw AST; class-name resolution (distinguishing range variables
from class objects) is left to the analyzer because it requires the schema.

Besides full ``ACCESS ... FROM ... WHERE ...`` queries the module also parses
standalone expressions (``parse_expression``), which is how schema designers
write down the semantic knowledge of Section 4.2
(e.g. ``"p->document()" ≡ "p.section.document"``).
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import (
    BinaryOp,
    Const,
    Expression,
    MethodCall,
    Parameter,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
)
from repro.errors import VQLSyntaxError
from repro.vql.ast import (
    DEFAULT_DML_ALIAS,
    AnalyzeStatement,
    BeginStatement,
    CommitStatement,
    CreateClassStatement,
    CreateIndexStatement,
    DeleteStatement,
    DropIndexStatement,
    ExplainStatement,
    InsertStatement,
    PropertySpec,
    Query,
    RangeDeclaration,
    RollbackStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.vql.lexer import Token, tokenize

__all__ = ["parse_query", "parse_expression", "parse_statement", "Parser"]

#: set-valued binary operators allowed in expressions (plan-level operators)
_SET_OPS = {"INTERSECTION": "INTERSECT", "UNION": "UNION", "DIFFERENCE": "DIFF"}

#: soft keywords introducing DDL/DML/utility statements.  They are
#: deliberately NOT lexer keywords: adding them there would steal ordinary
#: identifiers (``update``, ``set``, ``analyze``, ...) from existing
#: queries, so the statement parser recognises them case-insensitively from
#: IDENT tokens instead.
_STATEMENT_WORDS = ("CREATE", "DROP", "INSERT", "UPDATE", "DELETE",
                    "ANALYZE", "EXPLAIN", "BEGIN", "COMMIT", "ROLLBACK")


def parse_query(text: str) -> Query:
    """Parse a complete VQL query."""
    parser = Parser(text)
    query = parser.parse_query()
    parser.expect_eof()
    return query


def parse_statement(text: str) -> Statement:
    """Parse one VQL statement: a query or a DDL/DML statement."""
    parser = Parser(text)
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


def parse_expression(text: str) -> Expression:
    """Parse a standalone VQL expression (used for semantic knowledge)."""
    parser = Parser(text)
    expr = parser.parse_expression()
    parser.expect_eof()
    return expr


class Parser:
    """Hand-written recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        # Highest positional bind-parameter number seen so far; a plain ``?``
        # takes the next free position (SQLite's ?NNN numbering discipline).
        self._max_parameter = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.index += 1
        return token

    def check_keyword(self, word: str) -> bool:
        return self.current.is_keyword(word)

    def accept_keyword(self, word: str) -> bool:
        if self.check_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.check_keyword(word):
            raise self._error(f"expected keyword {word}")
        return self.advance()

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise self._error(f"expected {op!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "IDENT":
            raise self._error("expected identifier")
        return self.advance()

    def expect_eof(self) -> None:
        if self.current.kind != "EOF":
            raise self._error("unexpected trailing input")

    # -- soft keywords (IDENT tokens matched case-insensitively) --------
    def check_word(self, word: str) -> bool:
        token = self.current
        return token.kind in ("IDENT", "KEYWORD") and token.text.upper() == word

    def accept_word(self, word: str) -> bool:
        if self.check_word(word):
            self.advance()
            return True
        return False

    def expect_word(self, word: str) -> Token:
        if not self.check_word(word):
            raise self._error(f"expected {word}")
        return self.advance()

    def _error(self, message: str) -> VQLSyntaxError:
        token = self.current
        found = token.text or "<end of input>"
        return VQLSyntaxError(f"{message}, found {found!r}",
                              token.position, token.line, token.column,
                              source=self.text)

    # ------------------------------------------------------------------
    # grammar: query
    # ------------------------------------------------------------------
    def parse_query(self) -> Query:
        self.expect_keyword("ACCESS")
        access = self.parse_expression()
        self.expect_keyword("FROM")
        ranges = [self._parse_range()]
        while self.accept_op(","):
            ranges.append(self._parse_range())
        where: Optional[Expression] = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return Query(access=access, ranges=tuple(ranges), where=where)

    def _parse_range(self) -> RangeDeclaration:
        variable = self.expect_ident().text
        self.expect_keyword("IN")
        source = self.parse_expression()
        return RangeDeclaration(variable=variable, source=source)

    # ------------------------------------------------------------------
    # grammar: statements (DDL / DML / query)
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        token = self.current
        if token.is_keyword("ACCESS"):
            return SelectStatement(self.parse_query())
        if token.kind == "IDENT":
            word = token.text.upper()
            if word == "CREATE":
                return self._parse_create()
            if word == "DROP":
                return self._parse_drop()
            if word == "INSERT":
                return self._parse_insert()
            if word == "UPDATE":
                return self._parse_update()
            if word == "DELETE":
                return self._parse_delete()
            if word == "ANALYZE":
                return self._parse_analyze()
            if word == "EXPLAIN":
                return self._parse_explain()
            if word == "BEGIN":
                return self._parse_transaction_word("BEGIN", BeginStatement)
            if word == "COMMIT":
                return self._parse_transaction_word("COMMIT", CommitStatement)
            if word == "ROLLBACK":
                return self._parse_transaction_word("ROLLBACK",
                                                    RollbackStatement)
        raise self._error(
            "expected a statement (ACCESS, CREATE, DROP, INSERT, UPDATE, "
            "DELETE, ANALYZE, EXPLAIN, BEGIN, COMMIT or ROLLBACK)")

    def _parse_create(self) -> Statement:
        self.expect_word("CREATE")
        if self.check_word("CLASS"):
            return self._parse_create_class()
        kind = "hash"
        for candidate in ("HASH", "SORTED", "TEXT"):
            if self.accept_word(candidate):
                kind = candidate.lower()
                break
        self.expect_word("INDEX")
        class_name, prop = self._parse_index_target()
        return CreateIndexStatement(kind=kind, class_name=class_name, prop=prop)

    def _parse_create_class(self) -> CreateClassStatement:
        self.expect_word("CLASS")
        name = self.expect_ident().text
        superclass: Optional[str] = None
        if self.accept_word("ISA"):
            superclass = self.expect_ident().text
        properties: list[PropertySpec] = []
        if self.accept_op("("):
            if not self.current.is_op(")"):
                properties.append(self._parse_property_spec())
                while self.accept_op(","):
                    properties.append(self._parse_property_spec())
            self.expect_op(")")
        return CreateClassStatement(class_name=name, superclass=superclass,
                                    properties=tuple(properties))

    def _parse_property_spec(self) -> PropertySpec:
        name = self.expect_ident().text
        self.expect_op(":")
        if self.accept_op("{"):
            type_name = self.expect_ident().text
            self.expect_op("}")
            return PropertySpec(name=name, type_name=type_name, is_set=True)
        return PropertySpec(name=name, type_name=self.expect_ident().text)

    def _parse_drop(self) -> DropIndexStatement:
        self.expect_word("DROP")
        kind = "text" if self.accept_word("TEXT") else "index"
        self.expect_word("INDEX")
        class_name, prop = self._parse_index_target()
        return DropIndexStatement(kind=kind, class_name=class_name, prop=prop)

    def _parse_index_target(self) -> tuple[str, str]:
        self.expect_word("ON")
        class_name = self.expect_ident().text
        self.expect_op("(")
        prop = self.expect_ident().text
        self.expect_op(")")
        return class_name, prop

    def _parse_insert(self) -> InsertStatement:
        self.expect_word("INSERT")
        self.expect_word("INTO")
        class_name = self.expect_ident().text
        self.expect_op("(")
        names = [self.expect_ident().text]
        while self.accept_op(","):
            names.append(self.expect_ident().text)
        self.expect_op(")")
        self.expect_word("VALUES")
        self.expect_op("(")
        values = [self.parse_expression()]
        while self.accept_op(","):
            values.append(self.parse_expression())
        self.expect_op(")")
        if len(names) != len(values):
            raise self._error(
                f"INSERT lists {len(names)} propert"
                f"{'y' if len(names) == 1 else 'ies'} but "
                f"{len(values)} value(s)")
        return InsertStatement(class_name=class_name,
                               assignments=tuple(zip(names, values)))

    def _parse_update(self) -> UpdateStatement:
        self.expect_word("UPDATE")
        class_name = self.expect_ident().text
        alias = DEFAULT_DML_ALIAS
        if self.current.kind == "IDENT" and not self.check_word("SET"):
            alias = self.advance().text
        self.expect_word("SET")
        assignments = [self._parse_assignment()]
        while self.accept_op(","):
            assignments.append(self._parse_assignment())
        where: Optional[Expression] = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return UpdateStatement(class_name=class_name, alias=alias,
                               assignments=tuple(assignments), where=where)

    def _parse_assignment(self) -> tuple[str, Expression]:
        prop = self.expect_ident().text
        self.expect_op("=")
        return prop, self.parse_expression()

    def _parse_delete(self) -> DeleteStatement:
        self.expect_word("DELETE")
        self.expect_keyword("FROM")
        class_name = self.expect_ident().text
        alias = DEFAULT_DML_ALIAS
        if self.current.kind == "IDENT":
            alias = self.advance().text
        where: Optional[Expression] = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return DeleteStatement(class_name=class_name, alias=alias, where=where)

    def _parse_analyze(self) -> AnalyzeStatement:
        self.expect_word("ANALYZE")
        class_name: Optional[str] = None
        if self.current.kind == "IDENT":
            class_name = self.advance().text
        return AnalyzeStatement(class_name=class_name)

    def _parse_transaction_word(self, word: str, node_type) -> Statement:
        self.expect_word(word)
        # SQL's optional noise words: ``BEGIN TRANSACTION`` / ``COMMIT WORK``.
        if not self.accept_word("TRANSACTION"):
            self.accept_word("WORK")
        return node_type()

    def _parse_explain(self) -> ExplainStatement:
        self.expect_word("EXPLAIN")
        analyze = False
        # ``EXPLAIN ANALYZE <stmt>`` vs ``EXPLAIN ANALYZE [Class]``: the word
        # after ANALYZE decides — a statement opener means the ANALYZE was
        # the profiling modifier, anything else makes it the target.
        if self.check_word("ANALYZE"):
            follower = self.tokens[self.index + 1]
            opens_statement = follower.is_keyword("ACCESS") or (
                follower.kind == "IDENT"
                and follower.text.upper() in _STATEMENT_WORDS)
            if opens_statement or follower.kind == "EOF":
                if follower.kind == "EOF":
                    # ``EXPLAIN ANALYZE`` alone explains the ANALYZE statement
                    self.advance()
                    return ExplainStatement(target=AnalyzeStatement())
                self.advance()
                analyze = True
        target = self.parse_statement()
        if isinstance(target, ExplainStatement):
            raise self._error("EXPLAIN cannot be nested")
        return ExplainStatement(target=target, analyze=analyze)

    # ------------------------------------------------------------------
    # grammar: expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.check_keyword("OR"):
            self.advance()
            right = self._parse_and()
            left = BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.check_keyword("AND"):
            self.advance()
            right = self._parse_not()
            left = BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> Expression:
        if self.check_keyword("NOT"):
            self.advance()
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_set_op()
        for op in ("==", "!=", "<=", ">=", "<", ">", "IS-IN", "IS-SUBSET"):
            if self.current.is_op(op):
                self.advance()
                right = self._parse_set_op()
                return BinaryOp(op, left, right)
        return left

    def _parse_set_op(self) -> Expression:
        left = self._parse_additive()
        while self.current.kind == "KEYWORD" and self.current.text in _SET_OPS:
            op = _SET_OPS[self.advance().text]
            right = self._parse_additive()
            left = BinaryOp(op, left, right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self.current.is_op("+") or self.current.is_op("-"):
            op = self.advance().text
            right = self._parse_multiplicative()
            left = BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self.current.is_op("*") or self.current.is_op("/"):
            op = self.advance().text
            right = self._parse_unary()
            left = BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> Expression:
        if self.current.is_op("-"):
            self.advance()
            operand = self._parse_unary()
            # Fold negative numeric literals so that "-1" is the constant -1
            # (keeps printing/parsing round-trips structural).
            if isinstance(operand, Const) and isinstance(operand.value, (int, float)) \
                    and not isinstance(operand.value, bool):
                return Const(-operand.value)
            return UnaryOp("-", operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        expr = self._parse_primary()
        while True:
            if self.current.is_op("."):
                self.advance()
                prop = self.expect_ident().text
                expr = PropertyAccess(expr, prop)
            elif self.current.is_op("->"):
                self.advance()
                method = self.expect_ident().text
                self.expect_op("(")
                args: list[Expression] = []
                if not self.current.is_op(")"):
                    args.append(self.parse_expression())
                    while self.accept_op(","):
                        args.append(self.parse_expression())
                self.expect_op(")")
                expr = MethodCall(expr, method, tuple(args))
            else:
                return expr

    def _parse_primary(self) -> Expression:
        token = self.current
        if token.kind == "STRING":
            self.advance()
            return Const(token.text)
        if token.kind == "NUMBER":
            self.advance()
            if "." in token.text:
                return Const(float(token.text))
            return Const(int(token.text))
        if token.is_keyword("TRUE"):
            self.advance()
            return Const(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Const(False)
        if token.kind == "IDENT":
            self.advance()
            return Var(token.text)
        if token.is_op("?"):
            return self._parse_positional_parameter()
        if token.is_op(":"):
            return self._parse_named_parameter()
        if token.is_op("("):
            self.advance()
            inner = self.parse_expression()
            self.expect_op(")")
            return inner
        if token.is_op("["):
            return self._parse_tuple_constructor()
        if token.is_op("{"):
            return self._parse_set_constructor()
        raise self._error("expected expression")

    def _parse_positional_parameter(self) -> Expression:
        marker = self.advance()  # the '?'
        follower = self.current
        # ``?3`` — the number must be glued to the marker, so that ``x == ?``
        # followed by unrelated input still reports a sensible error.
        if (follower.kind == "NUMBER" and follower.position == marker.position + 1
                and "." not in follower.text):
            self.advance()
            position = int(follower.text)
            if position <= 0:
                raise self._error("parameter positions start at 1")
            self._max_parameter = max(self._max_parameter, position)
            return Parameter(str(position))
        self._max_parameter += 1
        return Parameter(str(self._max_parameter))

    def _parse_named_parameter(self) -> Expression:
        marker = self.advance()  # the ':'
        follower = self.current
        if follower.kind != "IDENT" or follower.position != marker.position + 1:
            raise self._error("expected a parameter name after ':'")
        self.advance()
        return Parameter(follower.text)

    def _parse_tuple_constructor(self) -> Expression:
        self.expect_op("[")
        fields: list[tuple[str, Expression]] = []
        if not self.current.is_op("]"):
            fields.append(self._parse_tuple_field())
            while self.accept_op(","):
                fields.append(self._parse_tuple_field())
        self.expect_op("]")
        return TupleConstructor(tuple(fields))

    def _parse_tuple_field(self) -> tuple[str, Expression]:
        name = self.expect_ident().text
        self.expect_op(":")
        return name, self.parse_expression()

    def _parse_set_constructor(self) -> Expression:
        self.expect_op("{")
        elements: list[Expression] = []
        if not self.current.is_op("}"):
            elements.append(self.parse_expression())
            while self.accept_op(","):
                elements.append(self.parse_expression())
        self.expect_op("}")
        return SetConstructor(tuple(elements))
