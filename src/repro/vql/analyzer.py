"""Semantic analysis of parsed VQL queries.

The analyzer resolves identifiers against the schema and type-checks the
query:

* a range source that is a bare identifier naming a class becomes a
  :class:`~repro.algebra.expressions.ClassExtent`;
* a method call whose receiver is a bare class name becomes a
  :class:`~repro.algebra.expressions.ClassMethodCall` (class/OWNTYPE method);
* every property access and method call is checked against the schema and
  the static type of every range variable is inferred, including dependent
  ranges (``p IN d->paragraphs()``).

The result is an :class:`AnalyzedQuery` carrying the rewritten query and the
typing environment, which the algebra translator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    Parameter,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
    parameters_used,
)
from repro.datamodel.schema import PropertyDef, Schema
from repro.datamodel.types import (
    ANY,
    BOOL,
    INT,
    REAL,
    STRING,
    ObjectType,
    SetType,
    TupleType,
    VMLType,
    infer_type,
)
from repro.errors import MethodResolutionError, SchemaError, VQLAnalysisError
from repro.vql.ast import (
    AnalyzeStatement,
    BeginStatement,
    CommitStatement,
    CreateClassStatement,
    CreateIndexStatement,
    DeleteStatement,
    DropIndexStatement,
    ExplainStatement,
    InsertStatement,
    Query,
    RangeDeclaration,
    RollbackStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)

__all__ = ["AnalyzedQuery", "Analyzer", "analyze_query", "infer_expression_type",
           "resolve_class_references", "class_of_type",
           "AnalyzedStatement", "analyze_statement"]


@dataclass
class AnalyzedQuery:
    """A type-checked query plus its typing environment."""

    query: Query
    variable_types: dict[str, VMLType] = field(default_factory=dict)
    #: bind-parameter keys in first-occurrence order (ACCESS, FROM, WHERE);
    #: positional parameters carry their decimal position as key
    parameters: tuple[str, ...] = ()

    def variable_class(self, variable: str) -> Optional[str]:
        """The class a range variable ranges over, if it is object-valued."""
        return class_of_type(self.variable_types.get(variable, ANY))


def class_of_type(vml_type: VMLType) -> Optional[str]:
    """Extract the class name from an object type or a set of object type."""
    if isinstance(vml_type, ObjectType):
        return vml_type.class_name
    if isinstance(vml_type, SetType) and isinstance(vml_type.element, ObjectType):
        return vml_type.element.class_name
    return None


def analyze_query(query: Query, schema: Schema,
                  parameters: Optional[Mapping[str, VMLType]] = None
                  ) -> AnalyzedQuery:
    """Convenience wrapper around :class:`Analyzer`.

    *parameters* pre-binds free variables (with their types) that are not
    range variables; this is how parametrized queries — such as the query
    side of a query↔method-call equivalence — are analyzed.
    """
    return Analyzer(schema, parameters=parameters).analyze(query)


def resolve_class_references(expr: Expression, schema: Schema,
                             bound_variables: set[str]) -> Expression:
    """Rewrite bare class-name identifiers into class-level nodes.

    ``Var("Document")`` becomes ``ClassExtent("Document")`` and
    ``MethodCall(Var("Document"), m, args)`` becomes
    ``ClassMethodCall("Document", m, args)`` whenever ``Document`` names a
    schema class that is not shadowed by a range variable.
    """
    if isinstance(expr, Var):
        if expr.name not in bound_variables and schema.has_class(expr.name):
            return ClassExtent(expr.name)
        return expr
    if isinstance(expr, MethodCall):
        receiver = resolve_class_references(expr.receiver, schema, bound_variables)
        args = tuple(resolve_class_references(a, schema, bound_variables)
                     for a in expr.args)
        if isinstance(receiver, ClassExtent):
            return ClassMethodCall(receiver.class_name, expr.method, args)
        return MethodCall(receiver, expr.method, args)
    children = expr.children()
    if not children:
        return expr
    new_children = [resolve_class_references(child, schema, bound_variables)
                    for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def infer_expression_type(expr: Expression, env: Mapping[str, VMLType],
                          schema: Schema) -> VMLType:
    """Infer the static VML type of *expr* under the typing environment.

    The inference follows the paper's conventions: property access lifted
    over a set yields the (flattened) union of the member values, so a
    set-typed base with a set-typed property still yields one level of set.
    """
    if isinstance(expr, Const):
        return infer_type(expr.value)
    if isinstance(expr, Parameter):
        # The optimizer treats bind parameters as opaque typed constants; the
        # static type is unknown until a value is bound.
        return ANY
    if isinstance(expr, Var):
        if expr.name not in env:
            raise VQLAnalysisError(f"unbound variable {expr.name!r}")
        return env[expr.name]
    if isinstance(expr, ClassExtent):
        if not schema.has_class(expr.class_name):
            raise VQLAnalysisError(f"unknown class {expr.class_name!r}")
        return SetType(ObjectType(expr.class_name))
    if isinstance(expr, PropertyAccess):
        base_type = infer_expression_type(expr.base, env, schema)
        return _property_result_type(base_type, expr.prop, schema)
    if isinstance(expr, MethodCall):
        return _method_result_type(expr, env, schema)
    if isinstance(expr, ClassMethodCall):
        return _class_method_result_type(expr, env, schema)
    if isinstance(expr, BinaryOp):
        return _binary_result_type(expr, env, schema)
    if isinstance(expr, UnaryOp):
        operand_type = infer_expression_type(expr.operand, env, schema)
        return BOOL if expr.op == "NOT" else operand_type
    if isinstance(expr, TupleConstructor):
        components = tuple(
            (name, infer_expression_type(value, env, schema))
            for name, value in expr.fields)
        return TupleType(components)
    if isinstance(expr, SetConstructor):
        if not expr.elements:
            return SetType(ANY)
        element_types = {infer_expression_type(e, env, schema)
                         for e in expr.elements}
        if len(element_types) == 1:
            return SetType(element_types.pop())
        return SetType(ANY)
    return ANY


def _property_result_type(base_type: VMLType, prop: str,
                          schema: Schema) -> VMLType:
    lifted = False
    target = base_type
    if isinstance(target, SetType):
        lifted = True
        target = target.element
    class_name = target.class_name if isinstance(target, ObjectType) else None
    if class_name is None:
        return ANY
    try:
        prop_def = schema.resolve_property(class_name, prop)
    except SchemaError as exc:
        raise VQLAnalysisError(str(exc)) from exc
    result = prop_def.vml_type
    if lifted:
        # Lifting over a set flattens one level: D.sections is a set of
        # sections even though each document stores a set.
        if isinstance(result, SetType):
            return result
        return SetType(result)
    return result


def _method_result_type(expr: MethodCall, env: Mapping[str, VMLType],
                        schema: Schema) -> VMLType:
    receiver_type = infer_expression_type(expr.receiver, env, schema)
    lifted = isinstance(receiver_type, SetType)
    target = receiver_type.element if lifted else receiver_type
    class_name = target.class_name if isinstance(target, ObjectType) else None
    if class_name is None:
        return ANY
    try:
        method = schema.resolve_instance_method(class_name, expr.method)
    except MethodResolutionError as exc:
        raise VQLAnalysisError(str(exc)) from exc
    if len(expr.args) != method.arity:
        raise VQLAnalysisError(
            f"method {class_name}.{expr.method} expects {method.arity} "
            f"argument(s), got {len(expr.args)}")
    result = method.return_type
    if lifted:
        if isinstance(result, SetType):
            return result
        return SetType(result)
    return result


def _class_method_result_type(expr: ClassMethodCall, env: Mapping[str, VMLType],
                              schema: Schema) -> VMLType:
    if not schema.has_class(expr.class_name):
        raise VQLAnalysisError(f"unknown class {expr.class_name!r}")
    try:
        method = schema.resolve_class_method(expr.class_name, expr.method)
    except MethodResolutionError as exc:
        raise VQLAnalysisError(str(exc)) from exc
    if len(expr.args) != method.arity:
        raise VQLAnalysisError(
            f"class method {expr.class_name}.{expr.method} expects "
            f"{method.arity} argument(s), got {len(expr.args)}")
    return method.return_type


def _binary_result_type(expr: BinaryOp, env: Mapping[str, VMLType],
                        schema: Schema) -> VMLType:
    left = infer_expression_type(expr.left, env, schema)
    right = infer_expression_type(expr.right, env, schema)
    if expr.op in ("AND", "OR") or expr.op in ("==", "!=", "<", "<=", ">", ">=",
                                               "IS-IN", "IS-SUBSET"):
        return BOOL
    if expr.op in ("INTERSECT", "UNION", "DIFF"):
        return left if isinstance(left, SetType) else right
    if expr.op in ("+", "-", "*", "/"):
        if left == REAL or right == REAL or expr.op == "/":
            return REAL
        if left == INT and right == INT:
            return INT
        if left == STRING and expr.op == "+":
            return STRING
        return ANY
    return ANY


class Analyzer:
    """Performs resolution and type checking of one query at a time."""

    def __init__(self, schema: Schema,
                 parameters: Optional[Mapping[str, VMLType]] = None):
        self.schema = schema
        self.parameters = dict(parameters) if parameters else {}

    def analyze(self, query: Query) -> AnalyzedQuery:
        variable_types: dict[str, VMLType] = dict(self.parameters)
        resolved_ranges: list[RangeDeclaration] = []

        for declaration in query.ranges:
            if declaration.variable in variable_types:
                raise VQLAnalysisError(
                    f"range variable {declaration.variable!r} declared twice")
            source = resolve_class_references(
                declaration.source, self.schema, set(variable_types))
            unbound = [name for name in _free_variable_names(source)
                       if name not in variable_types]
            if unbound:
                raise VQLAnalysisError(
                    f"range source for {declaration.variable!r} uses unbound "
                    f"variable(s) {', '.join(sorted(unbound))}")
            source_type = infer_expression_type(source, variable_types, self.schema)
            variable_types[declaration.variable] = self._element_type(
                declaration.variable, source_type)
            resolved_ranges.append(
                RangeDeclaration(declaration.variable, source))

        bound = set(variable_types)
        access = resolve_class_references(query.access, self.schema, bound)
        where = None
        if query.where is not None:
            where = resolve_class_references(query.where, self.schema, bound)

        # Type-check the clauses (raises on unknown members / arity errors).
        infer_expression_type(access, variable_types, self.schema)
        if where is not None:
            where_type = infer_expression_type(where, variable_types, self.schema)
            if where_type not in (BOOL, ANY):
                raise VQLAnalysisError(
                    f"WHERE clause must be boolean, got {where_type}")

        parameter_keys: list[str] = []
        for clause in (access, *(decl.source for decl in resolved_ranges),
                       *([] if where is None else [where])):
            for key in parameters_used(clause):
                if key not in parameter_keys:
                    parameter_keys.append(key)

        analyzed = AnalyzedQuery(
            query=Query(access=access, ranges=tuple(resolved_ranges), where=where),
            variable_types=variable_types,
            parameters=tuple(parameter_keys))
        return analyzed

    @staticmethod
    def _element_type(variable: str, source_type: VMLType) -> VMLType:
        if isinstance(source_type, SetType):
            return source_type.element
        if source_type == ANY:
            return ANY
        raise VQLAnalysisError(
            f"range source for {variable!r} is not set-valued ({source_type})")


def _free_variable_names(expr: Expression) -> set[str]:
    from repro.algebra.expressions import free_vars
    return free_vars(expr)


# ----------------------------------------------------------------------
# statement analysis (DDL / DML / query)
# ----------------------------------------------------------------------
@dataclass
class AnalyzedStatement:
    """A resolved, type-checked statement ready for the router.

    ``kind`` is one of ``select``, ``insert``, ``update``, ``delete``,
    ``create_class``, ``create_index``, ``drop_index``, ``analyze``,
    ``explain``, ``begin``, ``commit``, ``rollback``.  For selects, ``query`` is the analyzed query; for
    UPDATE/DELETE it is the derived *WHERE-query* (``ACCESS alias FROM
    alias IN Class WHERE cond``) which the router plans through the full
    optimizer so mutations pick up index access paths and bind parameters.
    For ``explain``, ``target`` is the analyzed target statement.
    ``parameters`` lists every bind parameter of the whole statement in
    first-occurrence order.  ``cache`` is scratch space for executors
    (compiled value getters, prepared handles); it never affects statement
    semantics.
    """

    kind: str
    statement: Statement
    parameters: tuple[str, ...] = ()
    query: Optional[AnalyzedQuery] = None
    assignments: tuple[tuple[str, Expression], ...] = ()
    property_defs: tuple[PropertyDef, ...] = ()
    target: Optional["AnalyzedStatement"] = None
    cache: dict = field(default_factory=dict, repr=False)

    @property
    def class_name(self) -> Optional[str]:
        return getattr(self.statement, "class_name", None)

    @property
    def alias(self) -> Optional[str]:
        return getattr(self.statement, "alias", None)

    @property
    def is_query(self) -> bool:
        return self.kind == "select"

    @property
    def is_mutation(self) -> bool:
        return self.kind in ("insert", "update", "delete")

    @property
    def is_transaction_control(self) -> bool:
        return self.kind in ("begin", "commit", "rollback")


#: primitive type names accepted in CREATE CLASS property specs
_PRIMITIVE_TYPES: dict[str, VMLType] = {
    "STRING": STRING, "INT": INT, "REAL": REAL, "BOOL": BOOL, "ANY": ANY,
}


def analyze_statement(statement: Statement, schema: Schema) -> AnalyzedStatement:
    """Resolve and type-check *statement* against *schema*."""
    if isinstance(statement, SelectStatement):
        analyzed = analyze_query(statement.query, schema)
        return AnalyzedStatement(kind="select", statement=statement,
                                 parameters=analyzed.parameters,
                                 query=analyzed)
    if isinstance(statement, InsertStatement):
        return _analyze_insert(statement, schema)
    if isinstance(statement, UpdateStatement):
        return _analyze_update(statement, schema)
    if isinstance(statement, DeleteStatement):
        return _analyze_delete(statement, schema)
    if isinstance(statement, CreateClassStatement):
        return _analyze_create_class(statement, schema)
    if isinstance(statement, CreateIndexStatement):
        _check_index_target(statement.class_name, statement.prop, schema)
        return AnalyzedStatement(kind="create_index", statement=statement)
    if isinstance(statement, DropIndexStatement):
        _check_index_target(statement.class_name, statement.prop, schema)
        return AnalyzedStatement(kind="drop_index", statement=statement)
    if isinstance(statement, AnalyzeStatement):
        if statement.class_name is not None:
            _require_class(statement.class_name, schema)
        return AnalyzedStatement(kind="analyze", statement=statement)
    if isinstance(statement, ExplainStatement):
        target = analyze_statement(statement.target, schema)
        return AnalyzedStatement(kind="explain", statement=statement,
                                 parameters=target.parameters, target=target)
    if isinstance(statement, BeginStatement):
        return AnalyzedStatement(kind="begin", statement=statement)
    if isinstance(statement, CommitStatement):
        return AnalyzedStatement(kind="commit", statement=statement)
    if isinstance(statement, RollbackStatement):
        return AnalyzedStatement(kind="rollback", statement=statement)
    raise VQLAnalysisError(f"unsupported statement {statement!r}")


def _require_class(class_name: str, schema: Schema) -> None:
    if not schema.has_class(class_name):
        raise VQLAnalysisError(f"unknown class {class_name!r}")


def _check_index_target(class_name: str, prop: str, schema: Schema) -> None:
    _require_class(class_name, schema)
    if not schema.has_property(class_name, prop):
        raise VQLAnalysisError(
            f"class {class_name!r} has no property {prop!r}")


def _analyze_assignments(assignments, schema: Schema, class_name: str,
                         env: Mapping[str, VMLType], bound: set[str],
                         statement_kind: str):
    """Resolve/type-check ``prop = expr`` pairs shared by INSERT and UPDATE."""
    resolved: list[tuple[str, Expression]] = []
    parameter_keys: list[str] = []
    seen: set[str] = set()
    for prop, expr in assignments:
        if prop in seen:
            raise VQLAnalysisError(
                f"{statement_kind} assigns property {prop!r} twice")
        seen.add(prop)
        try:
            prop_def = schema.resolve_property(class_name, prop)
        except SchemaError as exc:
            raise VQLAnalysisError(str(exc)) from exc
        value = resolve_class_references(expr, schema, bound)
        stray = _free_variable_names(value) - bound
        if stray:
            raise VQLAnalysisError(
                f"{statement_kind} value for {prop!r} uses unbound "
                f"variable(s) {', '.join(sorted(stray))}")
        actual = infer_expression_type(value, env, schema)
        if not _assignable(prop_def.vml_type, actual):
            raise VQLAnalysisError(
                f"value of type {actual} cannot be assigned to "
                f"{class_name}.{prop}: {prop_def.vml_type}")
        for key in parameters_used(value):
            if key not in parameter_keys:
                parameter_keys.append(key)
        resolved.append((prop, value))
    return tuple(resolved), parameter_keys


def _analyze_insert(statement: InsertStatement,
                    schema: Schema) -> AnalyzedStatement:
    _require_class(statement.class_name, schema)
    assignments, parameter_keys = _analyze_assignments(
        statement.assignments, schema, statement.class_name,
        env={}, bound=set(), statement_kind="INSERT")
    return AnalyzedStatement(kind="insert", statement=statement,
                             parameters=tuple(parameter_keys),
                             assignments=assignments)


def _where_query(class_name: str, alias: str, where: Optional[Expression],
                 schema: Schema) -> AnalyzedQuery:
    """Build and analyze the WHERE-query a mutation's predicate plans as."""
    _require_class(class_name, schema)
    if schema.has_class(alias):
        raise VQLAnalysisError(
            f"DML alias {alias!r} shadows a schema class")
    query = Query(access=Var(alias),
                  ranges=(RangeDeclaration(alias, Var(class_name)),),
                  where=where)
    return analyze_query(query, schema)


def _analyze_update(statement: UpdateStatement,
                    schema: Schema) -> AnalyzedStatement:
    analyzed_where = _where_query(statement.class_name, statement.alias,
                                  statement.where, schema)
    assignments, parameter_keys = _analyze_assignments(
        statement.assignments, schema, statement.class_name,
        env={statement.alias: ObjectType(statement.class_name)},
        bound={statement.alias}, statement_kind="UPDATE")
    # textual order: SET expressions precede the WHERE clause
    for key in analyzed_where.parameters:
        if key not in parameter_keys:
            parameter_keys.append(key)
    return AnalyzedStatement(kind="update", statement=statement,
                             parameters=tuple(parameter_keys),
                             query=analyzed_where, assignments=assignments)


def _analyze_delete(statement: DeleteStatement,
                    schema: Schema) -> AnalyzedStatement:
    analyzed_where = _where_query(statement.class_name, statement.alias,
                                  statement.where, schema)
    return AnalyzedStatement(kind="delete", statement=statement,
                             parameters=analyzed_where.parameters,
                             query=analyzed_where)


def _analyze_create_class(statement: CreateClassStatement,
                          schema: Schema) -> AnalyzedStatement:
    if schema.has_class(statement.class_name):
        raise VQLAnalysisError(
            f"class {statement.class_name!r} already exists")
    if statement.superclass is not None and \
            not schema.has_class(statement.superclass):
        raise VQLAnalysisError(
            f"unknown superclass {statement.superclass!r}")
    seen: set[str] = set()
    property_defs: list[PropertyDef] = []
    for spec in statement.properties:
        if spec.name in seen:
            raise VQLAnalysisError(
                f"CREATE CLASS declares property {spec.name!r} twice")
        seen.add(spec.name)
        type_name = spec.type_name
        primitive = _PRIMITIVE_TYPES.get(type_name.upper())
        if primitive is not None:
            vml_type: VMLType = primitive
            target: Optional[str] = None
        elif schema.has_class(type_name) or type_name == statement.class_name:
            vml_type = ObjectType(type_name)
            target = type_name
        else:
            raise VQLAnalysisError(
                f"unknown type {type_name!r} for property {spec.name!r} "
                "(expected STRING, INT, REAL, BOOL, ANY or a class name)")
        if spec.is_set:
            vml_type = SetType(vml_type)
        property_defs.append(
            PropertyDef(spec.name, vml_type, target_class=target))
    return AnalyzedStatement(kind="create_class", statement=statement,
                             property_defs=tuple(property_defs))


def _assignable(expected: VMLType, actual: VMLType) -> bool:
    """Static assignability for DML values.

    ``ANY`` (bind parameters, heterogeneous constructors) is compatible with
    everything; object types are mutually assignable (class conformance of
    OIDs is enforced dynamically by the datamodel); INT widens to REAL; set
    types recurse on their element types.
    """
    if expected == ANY or actual == ANY:
        return True
    if isinstance(expected, SetType) and isinstance(actual, SetType):
        return _assignable(expected.element, actual.element)
    if isinstance(expected, ObjectType) and isinstance(actual, ObjectType):
        return True
    if expected == REAL and actual == INT:
        return True
    return expected == actual
