"""Semantic analysis of parsed VQL queries.

The analyzer resolves identifiers against the schema and type-checks the
query:

* a range source that is a bare identifier naming a class becomes a
  :class:`~repro.algebra.expressions.ClassExtent`;
* a method call whose receiver is a bare class name becomes a
  :class:`~repro.algebra.expressions.ClassMethodCall` (class/OWNTYPE method);
* every property access and method call is checked against the schema and
  the static type of every range variable is inferred, including dependent
  ranges (``p IN d->paragraphs()``).

The result is an :class:`AnalyzedQuery` carrying the rewritten query and the
typing environment, which the algebra translator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    Expression,
    MethodCall,
    Parameter,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
    parameters_used,
)
from repro.datamodel.schema import Schema
from repro.datamodel.types import (
    ANY,
    BOOL,
    INT,
    REAL,
    STRING,
    ObjectType,
    SetType,
    TupleType,
    VMLType,
    infer_type,
)
from repro.errors import MethodResolutionError, SchemaError, VQLAnalysisError
from repro.vql.ast import Query, RangeDeclaration

__all__ = ["AnalyzedQuery", "Analyzer", "analyze_query", "infer_expression_type",
           "resolve_class_references", "class_of_type"]


@dataclass
class AnalyzedQuery:
    """A type-checked query plus its typing environment."""

    query: Query
    variable_types: dict[str, VMLType] = field(default_factory=dict)
    #: bind-parameter keys in first-occurrence order (ACCESS, FROM, WHERE);
    #: positional parameters carry their decimal position as key
    parameters: tuple[str, ...] = ()

    def variable_class(self, variable: str) -> Optional[str]:
        """The class a range variable ranges over, if it is object-valued."""
        return class_of_type(self.variable_types.get(variable, ANY))


def class_of_type(vml_type: VMLType) -> Optional[str]:
    """Extract the class name from an object type or a set of object type."""
    if isinstance(vml_type, ObjectType):
        return vml_type.class_name
    if isinstance(vml_type, SetType) and isinstance(vml_type.element, ObjectType):
        return vml_type.element.class_name
    return None


def analyze_query(query: Query, schema: Schema,
                  parameters: Optional[Mapping[str, VMLType]] = None
                  ) -> AnalyzedQuery:
    """Convenience wrapper around :class:`Analyzer`.

    *parameters* pre-binds free variables (with their types) that are not
    range variables; this is how parametrized queries — such as the query
    side of a query↔method-call equivalence — are analyzed.
    """
    return Analyzer(schema, parameters=parameters).analyze(query)


def resolve_class_references(expr: Expression, schema: Schema,
                             bound_variables: set[str]) -> Expression:
    """Rewrite bare class-name identifiers into class-level nodes.

    ``Var("Document")`` becomes ``ClassExtent("Document")`` and
    ``MethodCall(Var("Document"), m, args)`` becomes
    ``ClassMethodCall("Document", m, args)`` whenever ``Document`` names a
    schema class that is not shadowed by a range variable.
    """
    if isinstance(expr, Var):
        if expr.name not in bound_variables and schema.has_class(expr.name):
            return ClassExtent(expr.name)
        return expr
    if isinstance(expr, MethodCall):
        receiver = resolve_class_references(expr.receiver, schema, bound_variables)
        args = tuple(resolve_class_references(a, schema, bound_variables)
                     for a in expr.args)
        if isinstance(receiver, ClassExtent):
            return ClassMethodCall(receiver.class_name, expr.method, args)
        return MethodCall(receiver, expr.method, args)
    children = expr.children()
    if not children:
        return expr
    new_children = [resolve_class_references(child, schema, bound_variables)
                    for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def infer_expression_type(expr: Expression, env: Mapping[str, VMLType],
                          schema: Schema) -> VMLType:
    """Infer the static VML type of *expr* under the typing environment.

    The inference follows the paper's conventions: property access lifted
    over a set yields the (flattened) union of the member values, so a
    set-typed base with a set-typed property still yields one level of set.
    """
    if isinstance(expr, Const):
        return infer_type(expr.value)
    if isinstance(expr, Parameter):
        # The optimizer treats bind parameters as opaque typed constants; the
        # static type is unknown until a value is bound.
        return ANY
    if isinstance(expr, Var):
        if expr.name not in env:
            raise VQLAnalysisError(f"unbound variable {expr.name!r}")
        return env[expr.name]
    if isinstance(expr, ClassExtent):
        if not schema.has_class(expr.class_name):
            raise VQLAnalysisError(f"unknown class {expr.class_name!r}")
        return SetType(ObjectType(expr.class_name))
    if isinstance(expr, PropertyAccess):
        base_type = infer_expression_type(expr.base, env, schema)
        return _property_result_type(base_type, expr.prop, schema)
    if isinstance(expr, MethodCall):
        return _method_result_type(expr, env, schema)
    if isinstance(expr, ClassMethodCall):
        return _class_method_result_type(expr, env, schema)
    if isinstance(expr, BinaryOp):
        return _binary_result_type(expr, env, schema)
    if isinstance(expr, UnaryOp):
        operand_type = infer_expression_type(expr.operand, env, schema)
        return BOOL if expr.op == "NOT" else operand_type
    if isinstance(expr, TupleConstructor):
        components = tuple(
            (name, infer_expression_type(value, env, schema))
            for name, value in expr.fields)
        return TupleType(components)
    if isinstance(expr, SetConstructor):
        if not expr.elements:
            return SetType(ANY)
        element_types = {infer_expression_type(e, env, schema)
                         for e in expr.elements}
        if len(element_types) == 1:
            return SetType(element_types.pop())
        return SetType(ANY)
    return ANY


def _property_result_type(base_type: VMLType, prop: str,
                          schema: Schema) -> VMLType:
    lifted = False
    target = base_type
    if isinstance(target, SetType):
        lifted = True
        target = target.element
    class_name = target.class_name if isinstance(target, ObjectType) else None
    if class_name is None:
        return ANY
    try:
        prop_def = schema.resolve_property(class_name, prop)
    except SchemaError as exc:
        raise VQLAnalysisError(str(exc)) from exc
    result = prop_def.vml_type
    if lifted:
        # Lifting over a set flattens one level: D.sections is a set of
        # sections even though each document stores a set.
        if isinstance(result, SetType):
            return result
        return SetType(result)
    return result


def _method_result_type(expr: MethodCall, env: Mapping[str, VMLType],
                        schema: Schema) -> VMLType:
    receiver_type = infer_expression_type(expr.receiver, env, schema)
    lifted = isinstance(receiver_type, SetType)
    target = receiver_type.element if lifted else receiver_type
    class_name = target.class_name if isinstance(target, ObjectType) else None
    if class_name is None:
        return ANY
    try:
        method = schema.resolve_instance_method(class_name, expr.method)
    except MethodResolutionError as exc:
        raise VQLAnalysisError(str(exc)) from exc
    if len(expr.args) != method.arity:
        raise VQLAnalysisError(
            f"method {class_name}.{expr.method} expects {method.arity} "
            f"argument(s), got {len(expr.args)}")
    result = method.return_type
    if lifted:
        if isinstance(result, SetType):
            return result
        return SetType(result)
    return result


def _class_method_result_type(expr: ClassMethodCall, env: Mapping[str, VMLType],
                              schema: Schema) -> VMLType:
    if not schema.has_class(expr.class_name):
        raise VQLAnalysisError(f"unknown class {expr.class_name!r}")
    try:
        method = schema.resolve_class_method(expr.class_name, expr.method)
    except MethodResolutionError as exc:
        raise VQLAnalysisError(str(exc)) from exc
    if len(expr.args) != method.arity:
        raise VQLAnalysisError(
            f"class method {expr.class_name}.{expr.method} expects "
            f"{method.arity} argument(s), got {len(expr.args)}")
    return method.return_type


def _binary_result_type(expr: BinaryOp, env: Mapping[str, VMLType],
                        schema: Schema) -> VMLType:
    left = infer_expression_type(expr.left, env, schema)
    right = infer_expression_type(expr.right, env, schema)
    if expr.op in ("AND", "OR") or expr.op in ("==", "!=", "<", "<=", ">", ">=",
                                               "IS-IN", "IS-SUBSET"):
        return BOOL
    if expr.op in ("INTERSECT", "UNION", "DIFF"):
        return left if isinstance(left, SetType) else right
    if expr.op in ("+", "-", "*", "/"):
        if left == REAL or right == REAL or expr.op == "/":
            return REAL
        if left == INT and right == INT:
            return INT
        if left == STRING and expr.op == "+":
            return STRING
        return ANY
    return ANY


class Analyzer:
    """Performs resolution and type checking of one query at a time."""

    def __init__(self, schema: Schema,
                 parameters: Optional[Mapping[str, VMLType]] = None):
        self.schema = schema
        self.parameters = dict(parameters) if parameters else {}

    def analyze(self, query: Query) -> AnalyzedQuery:
        variable_types: dict[str, VMLType] = dict(self.parameters)
        resolved_ranges: list[RangeDeclaration] = []

        for declaration in query.ranges:
            if declaration.variable in variable_types:
                raise VQLAnalysisError(
                    f"range variable {declaration.variable!r} declared twice")
            source = resolve_class_references(
                declaration.source, self.schema, set(variable_types))
            unbound = [name for name in _free_variable_names(source)
                       if name not in variable_types]
            if unbound:
                raise VQLAnalysisError(
                    f"range source for {declaration.variable!r} uses unbound "
                    f"variable(s) {', '.join(sorted(unbound))}")
            source_type = infer_expression_type(source, variable_types, self.schema)
            variable_types[declaration.variable] = self._element_type(
                declaration.variable, source_type)
            resolved_ranges.append(
                RangeDeclaration(declaration.variable, source))

        bound = set(variable_types)
        access = resolve_class_references(query.access, self.schema, bound)
        where = None
        if query.where is not None:
            where = resolve_class_references(query.where, self.schema, bound)

        # Type-check the clauses (raises on unknown members / arity errors).
        infer_expression_type(access, variable_types, self.schema)
        if where is not None:
            where_type = infer_expression_type(where, variable_types, self.schema)
            if where_type not in (BOOL, ANY):
                raise VQLAnalysisError(
                    f"WHERE clause must be boolean, got {where_type}")

        parameter_keys: list[str] = []
        for clause in (access, *(decl.source for decl in resolved_ranges),
                       *([] if where is None else [where])):
            for key in parameters_used(clause):
                if key not in parameter_keys:
                    parameter_keys.append(key)

        analyzed = AnalyzedQuery(
            query=Query(access=access, ranges=tuple(resolved_ranges), where=where),
            variable_types=variable_types,
            parameters=tuple(parameter_keys))
        return analyzed

    @staticmethod
    def _element_type(variable: str, source_type: VMLType) -> VMLType:
        if isinstance(source_type, SetType):
            return source_type.element
        if source_type == ANY:
            return ANY
        raise VQLAnalysisError(
            f"range source for {variable!r} is not set-valued ({source_type})")


def _free_variable_names(expr: Expression) -> set[str]:
    from repro.algebra.expressions import free_vars
    return free_vars(expr)
