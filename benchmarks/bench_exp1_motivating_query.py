"""EXP-1 — The motivating query Q is rewritten to plan PQ (Section 2.3).

The paper's central worked example: the query

    ACCESS p FROM p IN Paragraph
    WHERE p->contains_string('Implementation')
    AND (p->document()).title == 'Query Optimization'

must be rewritten — using only the schema-specific equivalences E1-E5 — into
the plan

    PQ: Paragraph->retrieve_by_string('Implementation')
        INTERSECTION
        (Document->select_by_index('Query Optimization')).sections.paragraphs

This benchmark checks the *shape* of the chosen plan (no class scan, no
per-paragraph contains_string; one retrieve_by_string and one
select_by_index) and times the end-to-end optimize+execute pipeline across
database sizes.  It also verifies that the structural-only optimizer cannot
reach this plan, the paper's "there is no way for the optimizer to derive the
final query plan ... without having schema-specific information" claim.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp1_motivating_query.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys

import pytest

from conftest import SCALING_SIZES, semantic_session, structural_session
from repro.bench import format_table, standalone_main
from repro.physical.plans import ClassScan, ExpressionSetScan, Filter, walk_physical
from repro.workloads import motivating_query

QUERY = motivating_query().text


def _plan_shape(plan) -> dict[str, int]:
    nodes = list(walk_physical(plan))
    return {
        "class_scans": sum(isinstance(n, ClassScan) for n in nodes),
        "filters": sum(isinstance(n, Filter) for n in nodes),
        "expr_set_scans": sum(isinstance(n, ExpressionSetScan) for n in nodes),
    }


@pytest.mark.parametrize("n_documents", SCALING_SIZES)
def test_exp1_semantic_plan_matches_pq(benchmark, n_documents):
    """The semantic optimizer chooses a PQ-shaped plan at every size."""
    session = semantic_session(n_documents)

    def optimize_and_execute():
        return session.execute(QUERY)

    result = benchmark.pedantic(optimize_and_execute, rounds=3, iterations=1)

    shape = _plan_shape(result.physical_plan)
    # PQ evaluates two externally computed sets and intersects them: there is
    # no scan of the Paragraph extension and no per-paragraph filter.
    assert shape["class_scans"] == 0
    assert shape["filters"] == 0
    assert shape["expr_set_scans"] >= 1
    # The external work is one retrieve_by_string and one select_by_index.
    assert result.work["ir_calls"] == 1
    assert result.work["external_method_calls"] <= 2
    assert len(result) >= 1

    rows = [{
        "n_documents": n_documents,
        "result_rows": len(result),
        "external_calls": int(result.work["external_method_calls"]),
        "cost_units": round(result.work["total_cost_units"], 1),
        "plans_explored": result.optimization.statistics.logical_plans_explored,
    }]
    print("\nEXP-1 semantic plan (PQ shape):")
    print(format_table(rows))


@pytest.mark.parametrize("n_documents", [SCALING_SIZES[0]])
def test_exp1_structural_optimizer_cannot_reach_pq(benchmark, n_documents):
    """Without semantic rules the plan still scans Paragraph and calls
    contains_string per paragraph — PQ is unreachable."""
    session = structural_session(n_documents)

    result = benchmark.pedantic(lambda: session.execute(QUERY),
                                rounds=1, iterations=1)

    shape = _plan_shape(result.physical_plan)
    assert shape["class_scans"] >= 1
    # per-paragraph external calls remain
    assert result.work["ir_calls"] > 1
    print("\nEXP-1 structural-only plan shape:", shape)


# ----------------------------------------------------------------------
# standalone CLI (shared harness conventions)
# ----------------------------------------------------------------------
def run_cases(quick: bool = False) -> list[dict]:
    sizes = SCALING_SIZES[:1] if quick else SCALING_SIZES
    cases = []
    for n_documents in sizes:
        session = semantic_session(n_documents)
        session.database.reset_statistics()
        result = session.execute(QUERY)
        shape = _plan_shape(result.physical_plan)
        cases.append({
            "case": f"semantic[{n_documents}]",
            "n_documents": n_documents,
            "rows": len(result),
            "external_calls": int(result.work["external_method_calls"]),
            "cost_units": round(result.work["total_cost_units"], 1),
            "plans_explored":
                result.optimization.statistics.logical_plans_explored,
            **shape,
        })
    structural = structural_session(sizes[0])
    structural.database.reset_statistics()
    result = structural.execute(QUERY)
    cases.append({
        "case": f"structural[{sizes[0]}]",
        "n_documents": sizes[0],
        "rows": len(result),
        "external_calls": int(result.work["external_method_calls"]),
        "cost_units": round(result.work["total_cost_units"], 1),
        "plans_explored":
            result.optimization.statistics.logical_plans_explored,
        **_plan_shape(result.physical_plan),
    })
    return cases


def check(record: dict) -> str | None:
    semantic = [c for c in record["cases"] if c["case"].startswith("semantic")]
    if any(c["class_scans"] != 0 or c["filters"] != 0 for c in semantic):
        return "semantic plan is not PQ-shaped (class scans or filters remain)"
    return None


def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp1-motivating-query", run_cases,
                           description=__doc__.splitlines()[0],
                           check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
