"""EXP-15 — MVCC snapshot reads: reader latency under a concurrent writer.

Before the MVCC work, every query execution took the service's read gate,
so a writer holding the (writer-preferring) write gate stalled the whole
read side for the duration of each DML apply.  Snapshot reads removed the
gate from the query path entirely: readers pin the latest published commit
timestamp and resolve mutated objects through per-object version chains,
so a concurrent writer should cost readers *version-chain walks*, not
*gate waits*.

This experiment measures per-query reader latency (p50/p99) in three
configurations on one shared service:

* **no-writer** — the baseline: readers only;
* **gil-control** — a background thread spins on pure Python arithmetic:
  the cost of GIL sharing and OS preemption alone, with zero database
  writes;
* **autocommit-writer** — a background thread applies single-statement
  UPDATEs (each takes the write gate for its apply phase) while readers
  run;
* **txn-writer** — the background thread batches its updates into
  BEGIN/COMMIT transactions (write gate taken once per commit).

Acceptance: reader p99 under either writer stays within
``MAX_P99_SLOWDOWN``× the *worse* of the no-writer baseline and the
gil-control (plus a small absolute allowance).  Comparing against the
control matters: on a busy box a second runnable thread alone inflates
the tail by several OS scheduler quanta, and that cost is not the write
gate's fault — the experiment isolates blocking attributable to the
database, not to the interpreter.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp15_txn.py [--quick] [--json PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_exp15_txn.py
"""

from __future__ import annotations

import sys
import threading
import time

from conftest import DEFAULT_SIZE, SCALING_SIZES
from repro.bench import format_table, standalone_main
from repro.api.connection import connect
from repro.service import QueryService
from repro.workloads import document_knowledge, generate_document_database
from repro.workloads.documents import QUERY_TERM

#: reader p99 under a concurrent writer may be at most this multiple of
#: the worse of the no-writer and gil-control p99s
MAX_P99_SLOWDOWN = 2.0
#: absolute slack for sub-millisecond quick runs, where one extra OS
#: scheduler quantum dwarfs any multiplicative bound
NOISE_ALLOWANCE_SECONDS = 0.002

READER_QUERY = ("ACCESS p FROM p IN Paragraph "
                "WHERE p->contains_string(:term) AND "
                "(p->document()).title == :title")
WRITER_STATEMENT = ("UPDATE Document d SET author = :author "
                    "WHERE d.title == :title")


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _reader_requests(database, n_requests: int) -> list[dict]:
    titles = sorted({database.value(oid, "title")
                     for oid in database.extension("Document")})
    return [{"term": QUERY_TERM, "title": titles[i % len(titles)]}
            for i in range(n_requests)]


def _measure_readers(service: QueryService, requests: list[dict]
                     ) -> list[float]:
    latencies = []
    for parameters in requests:
        started = time.perf_counter()
        service.execute(READER_QUERY, parameters)
        latencies.append(time.perf_counter() - started)
    return latencies


class _Burner:
    """A background thread spinning on pure Python arithmetic — the
    GIL-sharing control with zero database writes."""

    def __init__(self):
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        counter = 0
        while not self._stop.is_set():
            counter += 1

    def __enter__(self) -> "_Burner":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=30)


class _Writer:
    """A background DML loop: autocommit statements or BEGIN/COMMIT
    batches, counting how many applies actually landed."""

    def __init__(self, database, service, titles, transactional: bool):
        self._connection = connect(database, service=service)
        self._titles = titles
        self._transactional = transactional
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.commits = 0

    def _run(self) -> None:
        round_number = 0
        while not self._stop.is_set():
            round_number += 1
            author = f"writer pass {round_number}"
            if self._transactional:
                self._connection.execute("BEGIN")
                for title in self._titles[:4]:
                    self._connection.execute(
                        WRITER_STATEMENT, {"author": author, "title": title})
                self._connection.execute("COMMIT")
            else:
                for title in self._titles[:4]:
                    self._connection.execute(
                        WRITER_STATEMENT, {"author": author, "title": title})
            self.commits += 1

    def __enter__(self) -> "_Writer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=30)


def run_cases(quick: bool = False) -> list[dict]:
    n_documents = SCALING_SIZES[0] if quick else DEFAULT_SIZE
    n_requests = 80 if quick else 400
    database = generate_document_database(n_documents=n_documents)
    knowledge = document_knowledge(database.schema)
    # disable drift-triggered re-optimization: adaptive replans (~10ms
    # optimizer runs) fire under this write churn even single-threaded,
    # and would drown the gate-blocking signal this experiment isolates
    service = QueryService(database, knowledge=knowledge,
                           reoptimize_fraction=float("inf"))
    requests = _reader_requests(database, n_requests)
    titles = sorted({database.value(oid, "title")
                     for oid in database.extension("Document")})

    # warm the plan caches (reader and writer WHERE plans) outside the
    # timed region: gate behaviour under steady state is the target
    service.execute(READER_QUERY, requests[0])
    connect(database, service=service).execute(
        WRITER_STATEMENT, {"author": "warm-up", "title": titles[0]})

    cases = []
    # a 5ms GIL timeslice dwarfs a ~0.1ms query: shrink it so the p99
    # measures write-gate blocking rather than scheduler preemption
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        for name, transactional in (("no-writer", None),
                                    ("gil-control", None),
                                    ("autocommit-writer", False),
                                    ("txn-writer", True)):
            commits = 0
            if name == "no-writer":
                latencies = _measure_readers(service, requests)
            elif name == "gil-control":
                with _Burner():
                    latencies = _measure_readers(service, requests)
            else:
                with _Writer(database, service, titles,
                             transactional) as writer:
                    latencies = _measure_readers(service, requests)
                commits = writer.commits
                assert commits > 0, f"{name}: the writer never committed"
            cases.append({
                "case": name,
                "n_documents": n_documents,
                "requests": n_requests,
                "writer_rounds": commits,
                "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 4),
                "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 4),
                "total_seconds": round(sum(latencies), 4),
            })
    finally:
        sys.setswitchinterval(previous_interval)
    return cases


def summarize(cases: list[dict]) -> dict:
    by_case = {case["case"]: case for case in cases}
    reference = max(by_case["no-writer"]["p99_ms"],
                    by_case["gil-control"]["p99_ms"])
    summary = {
        "baseline_p99_ms": by_case["no-writer"]["p99_ms"],
        "gil_control_p99_ms": by_case["gil-control"]["p99_ms"],
        "reference_p99_ms": reference,
        "p99_slowdown_target": MAX_P99_SLOWDOWN,
    }
    for name in ("autocommit-writer", "txn-writer"):
        p99 = by_case[name]["p99_ms"]
        summary[f"{name}_p99_ms"] = p99
        summary[f"{name}_p99_slowdown"] = (
            round(p99 / reference, 3) if reference > 0 else 0.0)
    return summary


def check(record: dict) -> str | None:
    reference = record["reference_p99_ms"]
    budget = reference * MAX_P99_SLOWDOWN + NOISE_ALLOWANCE_SECONDS * 1e3
    for name in ("autocommit-writer", "txn-writer"):
        p99 = record[f"{name}_p99_ms"]
        if p99 > budget:
            return (f"reader p99 under {name} is {p99}ms, beyond the "
                    f"{MAX_P99_SLOWDOWN}x+noise budget {budget:.4f}ms over "
                    f"the reference p99 {reference}ms (worse of no-writer "
                    f"and gil-control)")
    return None


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_exp15_readers_not_blocked_by_writers(benchmark):
    """Acceptance: reader p99 under a concurrent writer ≤ 2× (+ noise)
    of the no-writer baseline."""
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    print("\nEXP-15 reader latency under concurrent writers (quick):")
    print(format_table(cases))
    print(f"autocommit-writer p99 slowdown: "
          f"{summary['autocommit-writer_p99_slowdown']}x, "
          f"txn-writer: {summary['txn-writer_p99_slowdown']}x")
    assert check(summary) is None, check(summary)


def test_exp15_writers_made_progress(benchmark):
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for case in cases:
        if case["case"] in ("autocommit-writer", "txn-writer"):
            assert case["writer_rounds"] > 0


# ----------------------------------------------------------------------
# standalone CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    return standalone_main(
        "exp15-txn", run_cases,
        description=__doc__.splitlines()[0],
        summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
